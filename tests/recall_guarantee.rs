//! Integration: Theorem 1 — BFHM achieves 100% recall for any valid
//! input, even under adversarial configurations that maximize Bloom
//! false positives and histogram coarseness.

use rankjoin::core::{bfhm, oracle};
use rankjoin::sketch::blob::BlobCodec;
use rankjoin::sketch::hybrid::AlphaMode;
use rankjoin::tpch::{loader, TpchConfig};
use rankjoin::{
    BfhmConfig, BoundMode, Cluster, CostModel, JoinSide, MapReduceEngine, Mutation, RankJoinQuery,
    ScoreFn, WriteBackPolicy,
};

fn adversarial_cluster(n: u64) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(2, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    // Many distinct join values, clustered scores (every tuple competes).
    for i in 0..n {
        let score = 0.5 + (i % 97) as f64 / 1000.0;
        for (t, key) in [("l", format!("l{i:04}")), ("r", format!("r{i:04}"))] {
            client
                .mutate_row(
                    t,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", (i % 53).to_be_bytes().to_vec()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        10,
        ScoreFn::Sum,
    );
    (cluster, query)
}

fn run_config(config: BfhmConfig, label: &str) {
    let (cluster, query) = adversarial_cluster(120);
    let engine = MapReduceEngine::new(cluster.clone());
    bfhm::build_pair(&engine, &query, "idx", &config).unwrap();
    for k in [1, 5, 10, 40, 200] {
        let q = query.with_k(k);
        let got = bfhm::run(&cluster, &q, "idx", &config, WriteBackPolicy::Off).unwrap();
        let want = oracle::topk(&cluster, &q).unwrap();
        assert_eq!(got.results, want, "{label} k={k}");
    }
}

#[test]
fn tiny_filters_force_collisions_but_recall_holds() {
    // 8-bit filters over 53 distinct join values: virtually every bit
    // position collides. Phase 2 must resolve by real join values.
    run_config(
        BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(8),
            ..Default::default()
        },
        "m=8",
    );
}

#[test]
fn single_bucket_histogram() {
    // One bucket = no score pruning at all; everything funnels through
    // one estimate. Degenerates gracefully to a full reverse-mapped join.
    run_config(
        BfhmConfig {
            num_buckets: 1,
            filter_bits: Some(64),
            ..Default::default()
        },
        "buckets=1",
    );
}

#[test]
fn alpha_off_still_exact() {
    run_config(
        BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(32),
            alpha: AlphaMode::Off,
            ..Default::default()
        },
        "alpha=off",
    );
}

#[test]
fn conservative_bound_mode_still_exact() {
    run_config(
        BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(32),
            bound_mode: BoundMode::Conservative,
            ..Default::default()
        },
        "conservative",
    );
}

#[test]
fn raw_codec_equals_golomb() {
    // Blob wire format must not affect results, only bytes.
    let (cluster, query) = adversarial_cluster(80);
    let engine = MapReduceEngine::new(cluster.clone());
    let golomb = BfhmConfig {
        num_buckets: 10,
        codec: BlobCodec::Golomb,
        ..Default::default()
    };
    let raw = BfhmConfig {
        num_buckets: 10,
        codec: BlobCodec::Raw,
        ..Default::default()
    };
    bfhm::build_pair(&engine, &query, "idx_g", &golomb).unwrap();
    bfhm::build_pair(&engine, &query, "idx_r", &raw).unwrap();
    let got_g = bfhm::run(&cluster, &query, "idx_g", &golomb, WriteBackPolicy::Off).unwrap();
    let got_r = bfhm::run(&cluster, &query, "idx_r", &raw, WriteBackPolicy::Off).unwrap();
    assert_eq!(got_g.results, got_r.results);
    let g_size = cluster.table("idx_g").unwrap().disk_size();
    let r_size = cluster.table("idx_r").unwrap().disk_size();
    assert!(
        g_size < r_size,
        "golomb blobs ({g_size}) should be smaller than raw ({r_size})"
    );
}

#[test]
fn k_exceeding_join_size_returns_everything() {
    let cluster = Cluster::new(2, CostModel::test());
    loader::load_all(&cluster, &TpchConfig::new(0.0002)).unwrap();
    let query = RankJoinQuery::new(
        JoinSide::new(
            loader::PART_TABLE,
            "P",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L",
            (loader::FAMILY, loader::cols::JK_PART),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        1_000_000,
        ScoreFn::Product,
    );
    let engine = MapReduceEngine::new(cluster.clone());
    let config = BfhmConfig::with_buckets(10);
    bfhm::build_pair(&engine, &query, "idx", &config).unwrap();
    let got = bfhm::run(&cluster, &query, "idx", &config, WriteBackPolicy::Off).unwrap();
    let want = oracle::full_join(&cluster, &query).unwrap();
    assert_eq!(got.results.len(), want.len());
    assert_eq!(got.results, want);
}
