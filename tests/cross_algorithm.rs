//! Property test: on randomized datasets, every algorithm returns exactly
//! the oracle's top-k — the repository's strongest end-to-end invariant.

use proptest::prelude::*;

use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, IslConfig, JoinSide, Mutation,
    RankJoinExecutor, RankJoinQuery, ScoreFn,
};

/// A randomized relation: (join value id, score) per tuple.
#[derive(Clone, Debug)]
struct Dataset {
    left: Vec<(u8, f64)>,
    right: Vec<(u8, f64)>,
    k: usize,
    product: bool,
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    // Join values from a small domain (forces fan-out), scores on a
    // 1/1000 grid (exercises ties), relation sizes 0..60.
    let tuple = (0u8..12, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0));
    (
        prop::collection::vec(tuple.clone(), 0..60),
        prop::collection::vec(tuple, 0..60),
        1usize..25,
        any::<bool>(),
    )
        .prop_map(|(left, right, k, product)| Dataset {
            left,
            right,
            k,
            product,
        })
}

fn load(data: &Dataset) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(3, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (rows, table) in [(&data.left, "l"), (&data.right, "r")] {
        for (i, (j, s)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    table,
                    format!("{table}{i:03}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        data.k,
        if data.product {
            ScoreFn::Product
        } else {
            ScoreFn::Sum
        },
    );
    (cluster, query)
}

/// Rank-equivalence (ties at the k-th score are interchangeable): score
/// sequences must match; above-boundary tuples must match exactly;
/// boundary tuples must be genuine results.
fn assert_rank_equivalent(
    algo: &str,
    got: &[rankjoin::JoinTuple],
    want: &[rankjoin::JoinTuple],
    all: &[rankjoin::JoinTuple],
) {
    let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
    let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
    assert_eq!(got_scores, want_scores, "{algo}: score sequences differ");
    let boundary = want.last().map(|t| t.score);
    for (g, w) in got.iter().zip(want) {
        if Some(g.score) != boundary {
            assert_eq!(g, w, "{algo}: above-boundary tuple differs");
        } else {
            assert!(
                all.iter().any(|t| t.score == g.score
                    && t.left_key == g.left_key
                    && t.right_key == g.right_key),
                "{algo}: boundary tuple is not a real join result: {g:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs 6 algorithms incl. 4 index builds
        .. ProptestConfig::default()
    })]

    #[test]
    fn all_algorithms_equal_oracle(data in dataset_strategy()) {
        let (cluster, query) = load(&data);
        let want = oracle::topk(&cluster, &query).unwrap();
        let all = oracle::full_join(&cluster, &query).unwrap();

        let mut ex = RankJoinExecutor::new(&cluster, query.clone());
        ex.isl_config = IslConfig::uniform(7);
        ex.prepare_ijlmr().unwrap();
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            ..Default::default()
        }).unwrap();
        ex.prepare_drjn(DrjnConfig { num_buckets: 10, num_partitions: 32 }).unwrap();

        for algo in Algorithm::ALL {
            let got = ex.execute(algo).unwrap();
            assert_rank_equivalent(algo.name(), &got.results, &want, &all);
        }
    }
}
