//! Shape regression tests: the qualitative orderings of the paper's
//! Figures 7–8 must hold on the simulated metrics, so refactors cannot
//! silently invert who wins.

use rankjoin::core::executor::Algorithm;
use rankjoin::core::oracle;
use rankjoin::tpch::{loader, TpchConfig};
use rankjoin::{
    BfhmConfig, Cluster, CostModel, DrjnConfig, JoinSide, QueryOutcome, RankJoinExecutor,
    RankJoinQuery, ScoreFn,
};

const SF: f64 = 0.001;
const K: usize = 10;

fn q1() -> RankJoinQuery {
    RankJoinQuery::new(
        JoinSide::new(
            loader::PART_TABLE,
            "P",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L",
            (loader::FAMILY, loader::cols::JK_PART),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        K,
        ScoreFn::Product,
    )
}

fn outcomes() -> Vec<QueryOutcome> {
    let cluster = Cluster::with_profile(CostModel::ec2(8));
    loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
    let mut ex = RankJoinExecutor::new(&cluster, q1());
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig::with_buckets(100)).unwrap();
    ex.prepare_drjn(DrjnConfig::with_buckets(100)).unwrap();
    let want = oracle::topk(&cluster, &q1()).unwrap();
    Algorithm::ALL
        .iter()
        .map(|&a| {
            let o = ex.execute(a).unwrap();
            assert_eq!(o.results, want, "{}", a.name());
            o
        })
        .collect()
}

fn metric(outcomes: &[QueryOutcome], algo: &str) -> (f64, u64, u64) {
    let o = outcomes
        .iter()
        .find(|o| o.algorithm == algo)
        .unwrap_or_else(|| panic!("missing {algo}"));
    (
        o.metrics.sim_seconds,
        o.metrics.network_bytes,
        o.metrics.kv_reads,
    )
}

#[test]
fn figure7_shape_holds() {
    let all = outcomes();
    let (t_hive, b_hive, d_hive) = metric(&all, "HIVE");
    let (t_pig, b_pig, d_pig) = metric(&all, "PIG");
    let (t_ijlmr, b_ijlmr, d_ijlmr) = metric(&all, "IJLMR");
    let (t_isl, _b_isl, d_isl) = metric(&all, "ISL");
    let (t_bfhm, b_bfhm, d_bfhm) = metric(&all, "BFHM");
    let (t_drjn, _b_drjn, d_drjn) = metric(&all, "DRJN");

    // --- Query time (Fig. 7a): coordinator algorithms beat MapReduce by
    // at least an order of magnitude; DRJN is the worst overall.
    assert!(t_bfhm < t_isl, "BFHM ({t_bfhm}) should lead ISL ({t_isl})");
    assert!(t_isl * 5.0 < t_ijlmr, "ISL must be ≫ faster than IJLMR");
    assert!(t_ijlmr < t_hive, "IJLMR (1 job) beats HIVE (2 jobs)");
    assert!(t_drjn > t_ijlmr, "DRJN trails the indexed MR approach");
    assert!(t_pig > t_ijlmr, "PIG (3 jobs) slower than IJLMR");

    // --- Bandwidth (Fig. 7b): BFHM ships KBs while Hive ships MBs; early
    // projection keeps PIG well under HIVE.
    assert!(b_bfhm * 100 < b_hive, "BFHM ≪ HIVE bandwidth");
    assert!(b_pig < b_hive, "early projection pays off");
    assert!(b_ijlmr < b_pig, "IJLMR ships only top-k lists");

    // --- Dollar cost (Fig. 7c): BFHM < ISL < IJLMR < HIVE ≤ DRJN.
    assert!(d_bfhm < d_isl);
    assert!(d_isl < d_ijlmr);
    assert!(d_ijlmr < d_hive);
    assert!(d_drjn >= d_hive, "DRJN rescans at least once");
    assert_eq!(d_pig, d_hive, "both scan the same base cells once");
}

#[test]
fn bfhm_dollar_cost_grows_sublinearly_in_data() {
    // The "surgical" property: doubling the data should barely change
    // BFHM's read units at fixed k (it reads buckets + top reverse rows),
    // while IJLMR's grows proportionally.
    let run = |sf: f64| {
        let cluster = Cluster::with_profile(CostModel::ec2(8));
        loader::load_all(&cluster, &TpchConfig::new(sf)).unwrap();
        let mut ex = RankJoinExecutor::new(&cluster, q1());
        ex.prepare_ijlmr().unwrap();
        ex.prepare_bfhm(BfhmConfig::with_buckets(100)).unwrap();
        (
            ex.execute(Algorithm::Bfhm).unwrap().metrics.kv_reads,
            ex.execute(Algorithm::Ijlmr).unwrap().metrics.kv_reads,
        )
    };
    let (bfhm_small, ijlmr_small) = run(0.001);
    let (bfhm_big, ijlmr_big) = run(0.002);
    assert!(
        ijlmr_big as f64 > ijlmr_small as f64 * 1.8,
        "IJLMR cost tracks data size ({ijlmr_small} → {ijlmr_big})"
    );
    assert!(
        (bfhm_big as f64) < bfhm_small as f64 * 1.8,
        "BFHM cost should not track data size ({bfhm_small} → {bfhm_big})"
    );
}
