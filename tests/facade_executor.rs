//! Facade coverage: every [`Algorithm`] variant is executable through
//! [`RankJoinExecutor`] re-exported at the crate root, and agrees exactly
//! with the oracle on a tiny fixed two-table fixture — the fast,
//! deterministic companion to the `cross_algorithm` property suite.

use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, IslConfig, JoinSide, Mutation,
    RankJoinExecutor, RankJoinQuery, ScoreFn,
};

/// Two relations with distinct scores (no ties, so equality is exact):
/// join values fan out 1:2 on "x" and 2:1 on "y" (4 join tuples), and
/// "z" never joins.
const LEFT: &[(&str, u8, f64)] = &[
    ("l0", b'x', 0.90),
    ("l1", b'y', 0.80),
    ("l2", b'y', 0.35),
    ("l3", b'z', 0.99),
];
const RIGHT: &[(&str, u8, f64)] = &[("r0", b'x', 0.70), ("r1", b'x', 0.20), ("r2", b'y', 0.60)];

fn fixture(k: usize, score_fn: ScoreFn) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(2, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (table, rows) in [("l", LEFT), ("r", RIGHT)] {
        for (key, jv, score) in rows {
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*jv]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        k,
        score_fn,
    );
    (cluster, query)
}

fn prepared_executor(cluster: &Cluster, query: RankJoinQuery) -> RankJoinExecutor {
    let mut ex = RankJoinExecutor::new(cluster, query);
    ex.isl_config = IslConfig::uniform(3);
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 8,
        ..Default::default()
    })
    .unwrap();
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 8,
        num_partitions: 4,
    })
    .unwrap();
    ex
}

#[test]
fn every_algorithm_variant_executes_and_matches_oracle() {
    for score_fn in [ScoreFn::Sum, ScoreFn::Product] {
        for k in [1, 3, 10] {
            let (cluster, query) = fixture(k, score_fn);
            let want = oracle::topk(&cluster, &query).unwrap();
            assert_eq!(want.len(), k.min(4), "fixture has 4 join tuples");
            let ex = prepared_executor(&cluster, query);
            for algo in Algorithm::ALL {
                let got = ex.execute(algo).unwrap();
                assert_eq!(
                    got.results,
                    want,
                    "{} disagrees with oracle (k={k}, {score_fn:?})",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn executor_reports_metrics_for_every_algorithm() {
    let (cluster, query) = fixture(3, ScoreFn::Sum);
    let ex = prepared_executor(&cluster, query);
    for algo in Algorithm::ALL {
        let outcome = ex.execute(algo).unwrap();
        assert!(
            outcome.metrics.sim_seconds > 0.0,
            "{} reported no simulated time",
            algo.name()
        );
        assert!(
            outcome.metrics.kv_reads > 0,
            "{} reported no KV reads",
            algo.name()
        );
    }
}
