//! Shared fixture for the root integration tests: the paper's Fig. 1
//! running example (relations R1/R2, 11 tuples each, join values a–d).

use rankjoin::{Cluster, JoinSide, Mutation, RankJoinQuery, ScoreFn};

type Rows = Vec<(&'static str, &'static [u8], f64)>;

fn fig1() -> (Rows, Rows) {
    (
        vec![
            ("r1_01", b"d", 0.82),
            ("r1_02", b"c", 0.93),
            ("r1_03", b"c", 0.67),
            ("r1_04", b"d", 0.82),
            ("r1_05", b"a", 0.73),
            ("r1_06", b"c", 0.79),
            ("r1_07", b"b", 0.82),
            ("r1_08", b"b", 0.70),
            ("r1_09", b"d", 0.68),
            ("r1_10", b"a", 1.00),
            ("r1_11", b"b", 0.64),
        ],
        vec![
            ("r2_01", b"a", 0.51),
            ("r2_02", b"b", 0.91),
            ("r2_03", b"c", 0.64),
            ("r2_04", b"d", 0.53),
            ("r2_05", b"d", 0.41),
            ("r2_06", b"d", 0.50),
            ("r2_07", b"a", 0.35),
            ("r2_08", b"a", 0.38),
            ("r2_09", b"a", 0.37),
            ("r2_10", b"c", 0.31),
            ("r2_11", b"b", 0.92),
        ],
    )
}

/// Creates tables `r1`/`r2` on `cluster`, loads the Fig. 1 tuples, and
/// returns the rank-join query over them.
pub fn load_fig1(cluster: &Cluster, score_fn: ScoreFn, k: usize) -> RankJoinQuery {
    cluster.create_table("r1", &["d"]).unwrap();
    cluster.create_table("r2", &["d"]).unwrap();
    let client = cluster.client();
    let (r1, r2) = fig1();
    for (rows, table) in [(&r1, "r1"), (&r2, "r2")] {
        for &(key, join, score) in rows.iter() {
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", join.to_vec()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    RankJoinQuery::new(
        JoinSide::new("r1", "R1", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r2", "R2", ("d", b"jk"), ("d", b"score")),
        k,
        score_fn,
    )
}
