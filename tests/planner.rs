//! Planner test suite: `Algorithm::Auto` correctness under arbitrary
//! preparation subsets and datasets, plus the bugfix-sweep regressions —
//! NaN scores, `k = 0`, and score ties — across all algorithms.

use proptest::prelude::*;

use rankjoin::core::error::RankJoinError;
use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, IslConfig, JoinSide, MaintainedSide,
    Mutation, Objective, RankJoinExecutor, RankJoinQuery, ScoreFn,
};

/// A randomized workload: two relations, a `k`, a score function, and a
/// subset of indices to prepare.
#[derive(Clone, Debug)]
struct Scenario {
    left: Vec<(u8, f64)>,
    right: Vec<(u8, f64)>,
    k: usize,
    product: bool,
    /// Which of (ijlmr, isl, bfhm, drjn) to prepare.
    prepared: [bool; 4],
    objective_dollars: bool,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let tuple = (0u8..10, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0));
    (
        prop::collection::vec(tuple.clone(), 0..40),
        prop::collection::vec(tuple, 0..40),
        1usize..20,
        any::<bool>(),
        [any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()],
        any::<bool>(),
    )
        .prop_map(
            |(left, right, k, product, prepared, objective_dollars)| Scenario {
                left,
                right,
                k,
                product,
                prepared,
                objective_dollars,
            },
        )
}

fn load(s: &Scenario) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(3, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (rows, table) in [(&s.left, "l"), (&s.right, "r")] {
        for (i, (j, score)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    table,
                    format!("{table}{i:03}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        s.k,
        if s.product {
            ScoreFn::Product
        } else {
            ScoreFn::Sum
        },
    );
    (cluster, query)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// `Auto` returns the oracle top-k and never errors, whatever subset
    /// of indices happens to be prepared (including none: the baselines
    /// are always available), under both objectives.
    #[test]
    fn auto_is_oracle_exact_for_any_preparation(s in scenario_strategy()) {
        let (cluster, query) = load(&s);
        let mut ex = RankJoinExecutor::new(&cluster, query.clone());
        ex.isl_config = IslConfig::uniform(7);
        ex.objective = if s.objective_dollars { Objective::Dollars } else { Objective::Time };
        if s.prepared[0] { ex.prepare_ijlmr().unwrap(); }
        if s.prepared[1] { ex.prepare_isl().unwrap(); }
        if s.prepared[2] {
            ex.prepare_bfhm(BfhmConfig { num_buckets: 10, ..Default::default() }).unwrap();
        }
        if s.prepared[3] {
            ex.prepare_drjn(DrjnConfig { num_buckets: 10, num_partitions: 32 }).unwrap();
        }

        let want = oracle::topk(&cluster, &query).unwrap();
        let all = oracle::full_join(&cluster, &query).unwrap();
        let got = ex.execute(Algorithm::Auto).unwrap();
        // Rank-equivalent to the oracle: identical score sequence, exact
        // tuples above the k-th score, genuine tie-siblings at it.
        assert_rank_equivalent("AUTO", &got.results, &want, &all);

        // The plan ranks only prepared algorithms plus the two baselines.
        let plan = ex.plan().unwrap();
        let expected = 2 + s.prepared.iter().filter(|p| **p).count();
        prop_assert_eq!(plan.ranked.len(), expected);
        let best = plan.best().unwrap();
        let available = |a: Algorithm| match a {
            Algorithm::Hive | Algorithm::Pig => true,
            Algorithm::Ijlmr => s.prepared[0],
            Algorithm::Isl => s.prepared[1],
            Algorithm::Bfhm => s.prepared[2],
            Algorithm::Drjn => s.prepared[3],
            Algorithm::Auto => false,
        };
        prop_assert!(available(best), "chose unprepared {:?}", best);
    }
}

/// Rank-equivalence under score ties (the cross-algorithm contract):
/// identical score sequences, exact matches strictly above the k-th score,
/// and every boundary tuple must be a genuine join result.
fn assert_rank_equivalent(
    algo: &str,
    got: &[rankjoin::JoinTuple],
    want: &[rankjoin::JoinTuple],
    all: &[rankjoin::JoinTuple],
) {
    let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
    let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
    assert_eq!(got_scores, want_scores, "{algo}: score sequences differ");
    let boundary = want.last().map(|t| t.score);
    for (g, w) in got.iter().zip(want) {
        if Some(g.score) != boundary {
            assert_eq!(g, w, "{algo}: above-boundary tuple differs");
        } else {
            assert!(
                all.iter().any(|t| t.score == g.score
                    && t.left_key == g.left_key
                    && t.right_key == g.right_key),
                "{algo}: boundary tuple is not a real join result: {g:?}"
            );
        }
    }
}

fn tie_fixture() -> (Cluster, RankJoinQuery) {
    // Every tuple scores 0.5, so every join result ties at 1.0 (sum):
    // the rank order must come entirely from the key tie-break.
    let cluster = Cluster::new(2, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (table, n) in [("l", 6), ("r", 5)] {
        for i in 0..n {
            client
                .mutate_row(
                    table,
                    format!("{table}{i}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![b'x']),
                        Mutation::put("d", b"score", 0.5f64.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        7,
        ScoreFn::Sum,
    );
    (cluster, query)
}

/// A ties-free fixture (distinct scores everywhere) for tests that want
/// exact result equality.
fn distinct_fixture() -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(2, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (table, n, base) in [("l", 6u32, 0.05f64), ("r", 5, 0.4)] {
        for i in 0..n {
            let jv = if i % 2 == 0 { b'x' } else { b'y' };
            let score = base + f64::from(i) / 100.0;
            client
                .mutate_row(
                    table,
                    format!("{table}{i}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![jv]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        7,
        ScoreFn::Sum,
    );
    (cluster, query)
}

fn fully_prepared(cluster: &Cluster, query: &RankJoinQuery) -> RankJoinExecutor {
    let mut ex = RankJoinExecutor::new(cluster, query.clone());
    ex.isl_config = IslConfig::uniform(4);
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 8,
        ..Default::default()
    })
    .unwrap();
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 8,
        num_partitions: 16,
    })
    .unwrap();
    ex
}

/// All-ties regression: 30 identical-score join tuples; all six
/// algorithms plus Auto return a rank-equivalent top-7 (deterministic
/// score sequence; every boundary tuple a genuine result) without any
/// comparator panic.
#[test]
fn score_ties_are_deterministic_across_all_algorithms() {
    let (cluster, query) = tie_fixture();
    let ex = fully_prepared(&cluster, &query);
    let want = oracle::topk(&cluster, &query).unwrap();
    let all = oracle::full_join(&cluster, &query).unwrap();
    assert_eq!(want.len(), 7);
    assert_eq!(all.len(), 30);
    assert!(want.iter().all(|t| (t.score - 1.0).abs() < 1e-12));
    for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
        let got = ex.execute(algo).unwrap();
        assert_rank_equivalent(algo.name(), &got.results, &want, &all);
    }
}

/// `k = 0` regression: empty, zero-cost result from every algorithm —
/// through the executor and through the direct module entry points.
#[test]
fn k_zero_is_empty_and_free_everywhere() {
    let (cluster, query) = tie_fixture();
    let ex = fully_prepared(&cluster, &query);
    for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
        let got = ex.execute_with_k(algo, 0).unwrap();
        assert!(got.results.is_empty(), "{}", algo.name());
        assert_eq!(got.metrics.kv_reads, 0, "{}", algo.name());
        assert_eq!(got.metrics.rpc_calls, 0, "{}", algo.name());
        assert_eq!(got.metrics.sim_seconds, 0.0, "{}", algo.name());
    }
    // Direct module calls honour the same contract.
    let q0 = query.with_k(0);
    let engine = ex.engine();
    assert!(rankjoin::core::hive::run(engine, &q0)
        .unwrap()
        .results
        .is_empty());
    assert!(rankjoin::core::pig::run(engine, &q0)
        .unwrap()
        .results
        .is_empty());
    let isl_table = rankjoin::core::isl::index_table_name(&query);
    assert!(
        rankjoin::core::isl::run(&cluster, &q0, &isl_table, IslConfig::default())
            .unwrap()
            .results
            .is_empty()
    );
}

/// NaN regression: a NaN score planted directly in the base table (below
/// the maintained write path) must be ignored — not panic — by every
/// algorithm, and the maintained write path rejects it with a typed
/// error before it can land at all.
#[test]
fn nan_scores_never_panic_and_are_rejected_at_ingest() {
    let (cluster, query) = distinct_fixture();
    let client = cluster.client();
    // Plant a NaN score straight into the base table (simulating a
    // corrupt or hostile writer bypassing MaintainedSide).
    client
        .mutate_row(
            "l",
            b"l_nan",
            vec![
                Mutation::put("d", b"jk", vec![b'x']),
                Mutation::put("d", b"score", f64::NAN.to_be_bytes().to_vec()),
            ],
        )
        .unwrap();
    let ex = fully_prepared(&cluster, &query);
    let want = oracle::topk(&cluster, &query).unwrap();
    for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
        let got = ex.execute(algo).unwrap();
        assert_eq!(got.results, want, "{}", algo.name());
        assert!(
            got.results.iter().all(|t| t.left_key != b"l_nan".to_vec()),
            "{}: NaN tuple must not join",
            algo.name()
        );
    }
    // The typed ingest rejection.
    let side = MaintainedSide::new(&cluster, query.left.clone());
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(matches!(
            side.insert(b"l_bad", b"x", bad, vec![]).unwrap_err(),
            RankJoinError::NonFiniteScore(_)
        ));
    }
}

/// Re-preparation regression: rebuilding every index through the same
/// executor must replace (not duplicate) the stale index, and Auto keeps
/// answering correctly before and after.
#[test]
fn auto_survives_re_preparation() {
    let (cluster, query) = distinct_fixture();
    let mut ex = fully_prepared(&cluster, &query);
    let want = oracle::topk(&cluster, &query).unwrap();
    assert_eq!(ex.execute(Algorithm::Auto).unwrap().results, want);
    // Rebuild everything in place (e.g. after a bulk load).
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 8,
        ..Default::default()
    })
    .unwrap();
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 8,
        num_partitions: 16,
    })
    .unwrap();
    assert_eq!(ex.execute(Algorithm::Auto).unwrap().results, want);
    for algo in Algorithm::ALL {
        assert_eq!(ex.execute(algo).unwrap().results, want, "{}", algo.name());
    }
}

/// The plan explains itself and respects the dollar objective's ranking.
#[test]
fn explain_is_rendered_and_objectives_differ() {
    let (cluster, query) = tie_fixture();
    let mut ex = fully_prepared(&cluster, &query);
    let time_plan = ex.plan().unwrap();
    let rendered = time_plan.explain();
    assert!(rendered.contains("objective=time"));
    assert!(rendered.contains("=>"));
    for algo in Algorithm::ALL {
        assert!(rendered.contains(algo.name()), "{} missing", algo.name());
    }
    ex.objective = Objective::Dollars;
    let dollar_plan = ex.plan().unwrap();
    let best = dollar_plan.ranked.first().unwrap();
    for e in &dollar_plan.ranked {
        assert!(best.dollars <= e.dollars + 1e-15);
    }
}
