//! Cursor test suite: the pull-based execution contract
//! (`rj_core::cursor`).
//!
//! * Proptest: an *arbitrary* interleaving of `next_batch` pulls,
//!   pause/resume round-trips, and resumes on a **different executor
//!   fork** is rank-equivalent to the one-shot run of the same algorithm
//!   on arbitrary data — and charges the cluster ledger *identical* total
//!   `kv_reads` (split points never re-read the consumed prefix, never
//!   skip a read). Checked for ISL, BFHM, DRJN, and `Auto`.
//! * Acceptance: a maintained write between pause and resume bumps the
//!   shared statistics version, and the resume is refused with the typed
//!   [`RankJoinError::StaleCursor`] instead of silently mixing epochs;
//!   the same paused state re-targeted to a deeper `k` replays its
//!   consumed prefix for free.

use proptest::prelude::*;

use rankjoin::core::error::RankJoinError;
use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, IslConfig, JoinSide, MaintainedSide,
    Mutation, RankJoinExecutor, RankJoinQuery, ScoreFn, StopPolicy,
};

/// Loads two relations and returns the top-k sum query over them.
fn load_pair(left: &[(u8, f64)], right: &[(u8, f64)], k: usize) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(3, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (rows, table) in [(left, "l"), (right, "r")] {
        for (i, (j, score)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    table,
                    format!("{table}{i:04}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        k,
        ScoreFn::Sum,
    );
    (cluster, query)
}

/// All indexed algorithms prepared, statistics primed (so no fork pays
/// an asymmetric collection pass).
fn prepared(cluster: &Cluster, query: &RankJoinQuery, batch: usize) -> RankJoinExecutor {
    let mut ex = RankJoinExecutor::new(cluster, query.clone());
    ex.isl_config = IslConfig::uniform(batch);
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 10,
        ..Default::default()
    })
    .unwrap();
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 10,
        num_partitions: 16,
    })
    .unwrap();
    let _ = ex.plan().unwrap();
    ex
}

/// Rank-equivalence under score ties (the repo's cross-algorithm
/// contract): identical score sequences, exact matches strictly above
/// the boundary score, genuine join tuples at it.
fn assert_rank_equivalent(
    label: &str,
    got: &[rankjoin::JoinTuple],
    want: &[rankjoin::JoinTuple],
    all: &[rankjoin::JoinTuple],
) {
    let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
    let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
    assert_eq!(got_scores, want_scores, "{label}: score sequences differ");
    let boundary = want.last().map(|t| t.score);
    for (g, w) in got.iter().zip(want) {
        if Some(g.score) != boundary {
            assert_eq!(g, w, "{label}: above-boundary tuple differs");
        } else {
            assert!(
                all.iter().any(|t| t.score == g.score
                    && t.left_key == g.left_key
                    && t.right_key == g.right_key),
                "{label}: boundary tuple is not a real join result: {g:?}"
            );
        }
    }
}

/// One step of an interleaved cursor schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Pull up to this many more ranks.
    Pull(usize),
    /// Pause into a serializable state and resume on the same executor.
    Reopen,
    /// Pause and resume on a *different* executor fork (the state is
    /// plain owned data — it outlives the executor that minted it).
    Refork,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..5).prop_map(|v| match v {
        0..=2 => Op::Pull(v + 1),
        3 => Op::Reopen,
        _ => Op::Refork,
    })
}

#[derive(Clone, Debug)]
struct Scenario {
    left: Vec<(u8, f64)>,
    right: Vec<(u8, f64)>,
    k: usize,
    batch: usize,
    ops: Vec<Op>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let tuple = (0u8..6, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0));
    (
        prop::collection::vec(tuple.clone(), 1..25),
        prop::collection::vec(tuple, 1..25),
        1usize..10,
        1usize..5,
        prop::collection::vec(op_strategy(), 1..10),
    )
        .prop_map(|(left, right, k, batch, ops)| Scenario {
            left,
            right,
            k,
            batch,
            ops,
        })
}

/// Drives one cursor through the schedule on two executor forks, then
/// drains it; returns the emitted prefix. Pulls land on whichever fork's
/// ledger the cursor is currently resumed on.
fn run_schedule(
    ex_a: &RankJoinExecutor,
    ex_b: &RankJoinExecutor,
    algorithm: Algorithm,
    k: usize,
    ops: &[Op],
) -> Vec<rankjoin::JoinTuple> {
    let policy = StopPolicy::never();
    let mut on_a = true;
    let mut cursor = ex_a.open_cursor(algorithm, k).unwrap();
    let mut results = Vec::new();
    let mut done = false;
    for op in ops {
        if done || results.len() >= k {
            break;
        }
        match op {
            Op::Pull(n) => {
                let batch = cursor
                    .next_batch((*n).min(k - results.len()), &policy)
                    .unwrap();
                results.extend(batch.results);
                done = batch.done;
            }
            Op::Reopen => {
                let state = cursor.pause();
                let ex = if on_a { ex_a } else { ex_b };
                cursor = ex.resume_cursor(state).unwrap();
            }
            Op::Refork => {
                let state = cursor.pause();
                on_a = !on_a;
                let ex = if on_a { ex_a } else { ex_b };
                cursor = ex.resume_cursor(state).unwrap();
            }
        }
    }
    while !done && results.len() < k {
        let batch = cursor.next_batch(k - results.len(), &policy).unwrap();
        results.extend(batch.results);
        done = batch.done;
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// The PR's core invariant, on arbitrary data and arbitrary split
    /// schedules: splitting an execution across `next_batch` pulls,
    /// pause/resume round-trips, and executor-fork hops changes neither
    /// the answer (rank-equivalent to the one-shot run and the oracle)
    /// nor the metered cost (identical total `kv_reads` on the cluster
    /// ledgers).
    #[test]
    fn interleaved_schedules_match_one_shot_in_results_and_reads(s in scenario()) {
        let (cluster, query) = load_pair(&s.left, &s.right, s.k);
        let proto = prepared(&cluster, &query, s.batch);
        let want = oracle::topk(&cluster, &query).unwrap();
        let all = oracle::full_join(&cluster, &query).unwrap();

        for algorithm in [Algorithm::Isl, Algorithm::Bfhm, Algorithm::Drjn, Algorithm::Auto] {
            // One-shot reference on its own metrics fork.
            let fork_ref = cluster.fork_metrics();
            let ex_ref = proto.fork_onto(&fork_ref).unwrap();
            let before = fork_ref.metrics().snapshot();
            let oneshot = ex_ref.execute_with_k(algorithm, s.k).unwrap();
            let ref_reads = fork_ref.metrics().snapshot().delta_since(&before).kv_reads;
            assert_rank_equivalent(
                &format!("{algorithm:?} one-shot"), &oneshot.results, &want, &all,
            );

            // The same query through the scheduled cursor, hopping
            // between two further forks.
            let fork_a = cluster.fork_metrics();
            let fork_b = cluster.fork_metrics();
            let ex_a = proto.fork_onto(&fork_a).unwrap();
            let ex_b = proto.fork_onto(&fork_b).unwrap();
            let before_a = fork_a.metrics().snapshot();
            let before_b = fork_b.metrics().snapshot();
            let paged = run_schedule(&ex_a, &ex_b, algorithm, s.k, &s.ops);
            let paged_reads = fork_a.metrics().snapshot().delta_since(&before_a).kv_reads
                + fork_b.metrics().snapshot().delta_since(&before_b).kv_reads;

            assert_rank_equivalent(
                &format!("{algorithm:?} scheduled"), &paged, &want, &all,
            );
            prop_assert_eq!(
                paged_reads, ref_reads,
                "{:?}: scheduled run must charge exactly the one-shot reads", algorithm
            );
        }
    }
}

#[test]
fn maintained_write_invalidates_paused_cursor_with_typed_error() {
    let rows: Vec<(u8, f64)> = (0..30u32)
        .map(|i| ((i % 5) as u8, f64::from(i) / 31.0))
        .collect();
    let (cluster, query) = load_pair(&rows, &rows, 10);
    let ex = prepared(&cluster, &query, 3);
    let mut cursor = ex.open_cursor(Algorithm::Isl, 10).unwrap();
    let batch = cursor.next_batch(3, &StopPolicy::never()).unwrap();
    assert_eq!(batch.results.len(), 3, "3 ranks certified before the pause");
    let state = cursor.pause();
    assert!(
        state.pinned_version().is_some(),
        "executor cursors pin the version"
    );

    // A §6 maintained write lands between pause and resume…
    let side = MaintainedSide::new(&cluster, query.left.clone())
        .with_isl(&rankjoin::core::isl::index_table_name(&query))
        .with_stats(ex.stats_handle());
    side.insert(b"fresh", &[2], 0.97, vec![]).unwrap();

    // …so the parked scan positions describe a dead epoch: typed refusal.
    match ex.resume_cursor(state.clone()) {
        Err(RankJoinError::StaleCursor { expected, found }) => {
            assert!(
                found > expected,
                "version moved forward: {expected} -> {found}"
            );
        }
        Ok(_) => panic!("stale cursor must not resume"),
        Err(e) => panic!("expected StaleCursor, got {e}"),
    }
    // The retargeting resume enforces the same contract.
    assert!(matches!(
        ex.resume_cursor_retargeted(state, 20),
        Err(RankJoinError::StaleCursor { .. })
    ));
}

#[test]
fn retargeted_resume_replays_the_consumed_prefix_for_free() {
    let rows: Vec<(u8, f64)> = (0..40u32)
        .map(|i| ((i % 4) as u8, f64::from(i * 7 % 41) / 41.0))
        .collect();
    let (cluster, query) = load_pair(&rows, &rows, 4);
    let proto = prepared(&cluster, &query, 3);
    let want = oracle::topk(&cluster, &query.with_k(12)).unwrap();
    let all = oracle::full_join(&cluster, &query).unwrap();

    // Cold k=12 reference cost.
    let fork_cold = cluster.fork_metrics();
    let ex_cold = proto.fork_onto(&fork_cold).unwrap();
    let before = fork_cold.metrics().snapshot();
    ex_cold.execute_with_k(Algorithm::Isl, 12).unwrap();
    let cold_reads = fork_cold.metrics().snapshot().delta_since(&before).kv_reads;

    // A completed k=4 cursor donates its state; the k=12 retarget pays
    // only the reads beyond the donor's consumed prefix.
    let fork = cluster.fork_metrics();
    let ex = proto.fork_onto(&fork).unwrap();
    let mut cursor = ex.open_cursor(Algorithm::Isl, 4).unwrap();
    cursor.next_batch(4, &StopPolicy::never()).unwrap();
    let state = cursor.pause();
    assert!(state.supports_retarget());

    let warm_before = fork.metrics().snapshot();
    let mut warm = ex.resume_cursor_retargeted(state, 12).unwrap();
    let mut results = Vec::new();
    loop {
        let batch = warm
            .next_batch(12 - results.len(), &StopPolicy::never())
            .unwrap();
        results.extend(batch.results);
        if batch.done || results.len() >= 12 {
            break;
        }
    }
    let warm_reads = fork.metrics().snapshot().delta_since(&warm_before).kv_reads;
    assert_rank_equivalent("retargeted k=12", &results, &want, &all);
    assert!(
        warm_reads < cold_reads,
        "warm retarget read {warm_reads} kv entries, cold k=12 read {cold_reads}"
    );
}
