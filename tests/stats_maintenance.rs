//! Integration: incremental statistics maintenance under the §6 write
//! path (the stale-planner-statistics bugfix).
//!
//! The contract under test: registering an executor's shared statistics
//! handle on a [`MaintainedSide`] keeps the planner's [`TableStats`]
//! exact in place under any interleaving of maintained inserts and
//! deletes (modulo bucket-granular `max_score` after deletes); below the
//! declared staleness bound planning never re-runs the full statistics
//! pass (asserted via the store's admin-read accounting); above it the
//! executor transparently re-collects; and in both regimes
//! `Algorithm::Auto` re-plans to match a fresh-statistics oracle instead
//! of serving the pre-mutation plan forever.

use proptest::prelude::*;

use rankjoin::core::error::RankJoinError;
use rankjoin::core::planner::{self, Objective};
use rankjoin::core::{ijlmr, isl, oracle};
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, JoinSide, MaintainedSide, Mutation, Plan,
    RankJoinExecutor, RankJoinQuery, ScoreFn, StatsSource,
};

/// Loads `left`/`right` `(join, score)` tuples into a fresh cluster.
fn load(left: &[(u8, f64)], right: &[(u8, f64)], k: usize) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(3, CostModel::test());
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (rows, table) in [(left, "l"), (right, "r")] {
        for (i, (j, score)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    table,
                    format!("{table}{i:03}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        k,
        ScoreFn::Sum,
    );
    (cluster, query)
}

/// Prepares the three maintainable indices (ISL, IJLMR, BFHM — DRJN has
/// no §6 write path, so a maintained workload must not offer it to the
/// planner) and returns the executor.
fn prepared_executor(cluster: &Cluster, query: &RankJoinQuery) -> RankJoinExecutor {
    let mut ex = RankJoinExecutor::new(cluster, query.clone());
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 10,
        ..Default::default()
    })
    .unwrap();
    ex
}

/// Builds the §6 write interceptor for one side, fanning out to all three
/// indices and the executor's statistics handle.
fn maintained_side(
    cluster: &Cluster,
    query: &RankJoinQuery,
    side: &JoinSide,
    ex: &RankJoinExecutor,
) -> MaintainedSide {
    MaintainedSide::new(cluster, side.clone())
        .with_isl(&isl::index_table_name(query))
        .with_ijlmr(&ijlmr::index_table_name(query))
        .with_bfhm(
            rankjoin::core::bfhm::maintenance::BfhmMaintainer::attach(
                cluster,
                &rankjoin::core::bfhm::index_table_name(query),
                &side.label,
            )
            .unwrap(),
        )
        .with_stats(ex.stats_handle())
}

/// One randomized maintained mutation.
#[derive(Clone, Debug)]
enum Op {
    Insert { side: bool, join: u8, score: f64 },
    Delete { side: bool, pick: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        any::<bool>(),
        0u8..10,
        0u32..=1000,
        0usize..64,
    )
        .prop_map(|(is_insert, side, join, s, pick)| {
            if is_insert {
                Op::Insert {
                    side,
                    join,
                    score: f64::from(s) / 1000.0,
                }
            } else {
                Op::Delete { side, pick }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// After an arbitrary interleaving of maintained inserts/deletes, the
    /// incrementally-maintained [`TableStats`] agree with a fresh
    /// `collect_stats` pass — exactly for tuple counts, histograms,
    /// distinct join values, and the expected join cardinality; within
    /// one histogram bucket for `max_score` (the documented conservative
    /// clamp after deletes) — and `Auto` stays oracle-equivalent
    /// throughout.
    #[test]
    fn maintained_stats_agree_with_fresh_collection(
        left in prop::collection::vec((0u8..10, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0)), 3..25),
        right in prop::collection::vec((0u8..10, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0)), 3..25),
        ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let (cluster, query) = load(&left, &right, 5);
        let ex = prepared_executor(&cluster, &query);
        // Prime the handle: the snapshot must exist *before* the ops so
        // every delta is merged in place rather than collected later.
        let _ = ex.plan().unwrap();

        let sides = [
            maintained_side(&cluster, &query, &query.left, &ex),
            maintained_side(&cluster, &query, &query.right, &ex),
        ];
        let mut live: [Vec<Vec<u8>>; 2] = [
            (0..left.len()).map(|i| format!("l{i:03}").into_bytes()).collect(),
            (0..right.len()).map(|i| format!("r{i:03}").into_bytes()).collect(),
        ];
        for (n, op) in ops.iter().enumerate() {
            match op {
                Op::Insert { side, join, score } => {
                    let i = usize::from(*side);
                    let key = format!("n{n:03}").into_bytes();
                    sides[i].insert(&key, &[*join], *score, vec![]).unwrap();
                    live[i].push(key);
                }
                Op::Delete { side, pick } => {
                    let i = usize::from(*side);
                    if live[i].is_empty() {
                        continue;
                    }
                    let key = live[i].remove(pick % live[i].len());
                    match sides[i].delete(&key) {
                        Ok(_) => {}
                        Err(RankJoinError::MissingRow) => {}
                        Err(e) => panic!("maintained delete failed: {e}"),
                    }
                }
            }
        }

        let fresh = planner::collect_stats(&cluster.fork_metrics(), &query).unwrap();
        let maintained = ex.stats_handle().maintained_stats().expect("primed snapshot");
        for (m, f, name) in [
            (&maintained.left, &fresh.left, "left"),
            (&maintained.right, &fresh.right, "right"),
        ] {
            prop_assert_eq!(m.tuples, f.tuples, "{} tuples", name);
            prop_assert_eq!(&m.hist, &f.hist, "{} histogram", name);
            prop_assert_eq!(m.distinct_joins, f.distinct_joins, "{} distinct", name);
            prop_assert!((m.avg_entry_bytes - f.avg_entry_bytes).abs() < 1e-6,
                "{} avg bytes {} vs {}", name, m.avg_entry_bytes, f.avg_entry_bytes);
            // max_score: never below the truth, at most one bucket above.
            prop_assert!(m.max_score >= f.max_score - 1e-12,
                "{} max {} below truth {}", name, m.max_score, f.max_score);
            prop_assert!(m.max_score <= f.max_score + 0.01 + 1e-12,
                "{} max {} above bucket bound of {}", name, m.max_score, f.max_score);
        }
        prop_assert_eq!(maintained.join_pairs, fresh.join_pairs, "join cardinality");

        // Auto answers from fresh plans: rank-equivalent to the oracle.
        let want = oracle::topk(&cluster, &query).unwrap();
        let got = ex.execute(Algorithm::Auto).unwrap();
        let got_scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
        prop_assert_eq!(got_scores, want_scores, "AUTO diverged from the oracle");
    }
}

/// Per-algorithm estimate equality between two plans (the planner is
/// deterministic given identical statistics, so maintained-exact
/// statistics must reproduce the fresh-stats oracle's numbers; tolerance
/// covers float-summation order and byte-rounding differences only).
fn assert_plans_match(got: &Plan, want: &Plan, context: &str) {
    assert_eq!(
        got.ranked.len(),
        want.ranked.len(),
        "{context}: candidate sets"
    );
    assert_eq!(
        got.best().unwrap(),
        want.best().unwrap(),
        "{context}: chosen algorithm"
    );
    for w in &want.ranked {
        let g = got.estimate(w.algorithm).expect("same candidates");
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-9);
        assert!(
            close(g.seconds, w.seconds),
            "{context}: {} seconds {} vs oracle {}",
            w.algorithm.name(),
            g.seconds,
            w.seconds
        );
        assert!(
            close(g.kv_reads, w.kv_reads),
            "{context}: {} reads {} vs oracle {}",
            w.algorithm.name(),
            g.kv_reads,
            w.kv_reads
        );
    }
}

/// A fresh-statistics oracle plan, collected on a forked ledger so its
/// admin reads never blur the executor-side accounting.
fn fresh_oracle_plan(cluster: &Cluster, query: &RankJoinQuery, ex: &RankJoinExecutor) -> Plan {
    let stats = planner::collect_stats(&cluster.fork_metrics(), query).unwrap();
    planner::plan(
        &stats,
        query,
        query.k,
        cluster.cost_model(),
        Objective::Time,
        &ex.candidates(),
        rankjoin::ExecutionMode::Serial,
    )
}

/// The PR's acceptance regression. On the pre-fix executor the statistics
/// snapshot and plan cache were only invalidated by `prepare_*` /
/// `attach_*`, so after these maintained writes `plan()` kept returning
/// the original pre-mutation plan (stale tuple counts, histograms, and
/// join cardinality) indefinitely — this test pins down both the
/// re-planning and the "no full statistics pass below the bound"
/// contract, the latter via admin-path read accounting.
#[test]
fn auto_replans_to_the_fresh_stats_oracle_with_bounded_recollection() {
    // 40 tuples per side, distinct-ish scores over a few join values.
    let rows = |base: f64| -> Vec<(u8, f64)> {
        (0..40u32)
            .map(|i| ((i % 5) as u8, (base + f64::from(i) * 0.017) % 1.0))
            .collect()
    };
    let (cluster, query) = load(&rows(0.11), &rows(0.43), 10);
    let mut ex = prepared_executor(&cluster, &query);
    ex.staleness_bound = 0.2;
    let sides = [
        maintained_side(&cluster, &query, &query.left, &ex),
        maintained_side(&cluster, &query, &query.right, &ex),
    ];

    let p0 = ex.plan().unwrap();
    assert_eq!(p0.stats_source, StatsSource::Exact);
    assert_eq!(ex.stats_handle().collections(), 1);
    assert_plans_match(&p0, &fresh_oracle_plan(&cluster, &query, &ex), "initial");

    // ── Below the bound: 4 of 40 left tuples mutate (10% < 20%). ──
    let admin_before = cluster.metrics().snapshot().admin_kv_reads;
    for i in 0..4u32 {
        sides[0]
            .insert(
                format!("lb{i}").as_bytes(),
                &[2],
                0.9 + f64::from(i) * 0.02,
                vec![],
            )
            .unwrap();
    }
    let p1 = ex.plan().unwrap();
    assert!(
        matches!(p1.stats_source, StatsSource::Maintained { staleness } if staleness > 0.0),
        "below the bound the plan must come from maintained stats, got {:?}",
        p1.stats_source
    );
    // The stale-plan bug: the pre-mutation plan must NOT be served again.
    assert!(
        !std::sync::Arc::ptr_eq(&p0, &p1),
        "maintained writes must invalidate the cached plan"
    );
    // Re-planned to exactly what fresh statistics would predict...
    assert_plans_match(
        &p1,
        &fresh_oracle_plan(&cluster, &query, &ex),
        "below bound",
    );
    // ...without a single full statistics pass on the executor's path.
    assert_eq!(
        cluster.metrics().snapshot().admin_kv_reads,
        admin_before,
        "below the staleness bound the planner must not re-run collect_stats"
    );
    assert_eq!(ex.stats_handle().collections(), 1);
    // Explain names the path taken.
    assert!(p1.explain().contains("maintained"));

    // ── Cross the bound: 10 more left mutations (14/44 ≈ 32% > 20%). ──
    for i in 0..6u32 {
        sides[0]
            .insert(
                format!("lc{i}").as_bytes(),
                &[1],
                0.2 + f64::from(i) * 0.05,
                vec![],
            )
            .unwrap();
    }
    for i in 0..4u32 {
        sides[0].delete(format!("lb{i}").as_bytes()).unwrap();
    }
    assert!(ex.stats_handle().staleness() > 0.2);
    let p2 = ex.plan().unwrap();
    assert!(
        matches!(p2.stats_source, StatsSource::Recollected { staleness } if staleness > 0.2),
        "above the bound the executor must transparently re-collect, got {:?}",
        p2.stats_source
    );
    assert!(
        cluster.metrics().snapshot().admin_kv_reads > admin_before,
        "the re-collection must be visible on the admin-read ledger"
    );
    assert_eq!(ex.stats_handle().collections(), 2);
    assert_plans_match(
        &p2,
        &fresh_oracle_plan(&cluster, &query, &ex),
        "above bound",
    );
    assert!(p2.explain().contains("recollected"));

    // And through it all, Auto answers correctly.
    let want = oracle::topk(&cluster, &query).unwrap();
    assert_eq!(ex.execute(Algorithm::Auto).unwrap().results, want);
}

/// The fork-sharing satellite: executors on `fork_metrics` clones share
/// one statistics snapshot (one collection total) and maintained writes
/// invalidate every sharer's cached plans coherently.
#[test]
fn forked_executors_share_statistics_and_invalidate_coherently() {
    let rows: Vec<(u8, f64)> = (0..20u32)
        .map(|i| ((i % 4) as u8, f64::from(i) / 20.0))
        .collect();
    let (cluster, query) = load(&rows, &rows, 5);
    let owner = prepared_executor(&cluster, &query);
    let _ = owner.plan().unwrap();
    assert_eq!(owner.stats_handle().collections(), 1);

    // A fork (the throughput-harness shape): attaches indices and the
    // owner's statistics handle instead of re-collecting.
    let fork = cluster.fork_metrics();
    let mut worker = RankJoinExecutor::new(&fork, query.clone());
    worker.attach_isl(&isl::index_table_name(&query)).unwrap();
    worker
        .attach_ijlmr(&ijlmr::index_table_name(&query))
        .unwrap();
    worker.attach_stats(owner.stats_handle()).unwrap();
    let admin_before = fork.metrics().snapshot().admin_kv_reads;
    let w1 = worker.plan().unwrap();
    assert_eq!(
        owner.stats_handle().collections(),
        1,
        "no re-collection on the fork"
    );
    assert_eq!(fork.metrics().snapshot().admin_kv_reads, admin_before);

    // A maintained write through the owner's handle invalidates the
    // fork's cached plan too — and the fork re-plans from the updated
    // in-place statistics, still without a full pass.
    let side = maintained_side(&cluster, &query, &query.left, &owner);
    side.insert(b"shared0", &[1], 0.97, vec![]).unwrap();
    let w2 = worker.plan().unwrap();
    assert!(
        !std::sync::Arc::ptr_eq(&w1, &w2),
        "maintained write must invalidate the fork's plan"
    );
    assert!(matches!(w2.stats_source, StatsSource::Maintained { .. }));
    assert_eq!(owner.stats_handle().collections(), 1);
    assert_eq!(fork.metrics().snapshot().admin_kv_reads, admin_before);

    // Both executors answer from the updated world.
    let want = oracle::topk(&cluster, &query).unwrap();
    assert_eq!(owner.execute(Algorithm::Auto).unwrap().results, want);
    assert_eq!(worker.execute(Algorithm::Auto).unwrap().results, want);
}
