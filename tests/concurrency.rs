//! Concurrency guarantees of the parallel execution subsystem:
//!
//! * many threads running queries against one shared cluster all get the
//!   oracle answer (the serving scenario of the throughput harness);
//! * `Parallel` and `Serial` execution modes are equivalent on random
//!   inputs — identical `TopK` *and* identical counted metrics (KV read
//!   units / dollars, network bytes, RPCs), with parallel wall-clock never
//!   above serial and never above total node-seconds.

use proptest::prelude::*;

use rankjoin::core::{bfhm, isl, oracle};
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, ExecutionMode, IslConfig, JoinSide,
    Mutation, RankJoinExecutor, RankJoinQuery, ScoreFn, WriteBackPolicy,
};

mod common;

fn fig1_cluster() -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(4, CostModel::ec2(4));
    let query = common::load_fig1(&cluster, ScoreFn::Sum, 3);
    (cluster, query)
}

/// Eight threads fire the same query concurrently at one shared cluster —
/// half through ISL, half through BFHM, alternating serial and parallel
/// modes — and every single one must get the oracle answer.
#[test]
fn eight_threads_share_a_cluster_and_agree_with_the_oracle() {
    let (cluster, query) = fig1_cluster();
    let mut ex = RankJoinExecutor::new(&cluster, query.clone());
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 10,
        filter_bits: Some(1 << 14),
        ..Default::default()
    })
    .unwrap();
    let want = oracle::topk(&cluster, &query).unwrap();

    let isl_table = isl::index_table_name(&query);
    let bfhm_table = bfhm::index_table_name(&query);
    std::thread::scope(|scope| {
        for thread_id in 0..8 {
            let (cluster, query, want) = (&cluster, &query, &want);
            let (isl_table, bfhm_table) = (&isl_table, &bfhm_table);
            scope.spawn(move || {
                // Each thread forks its own ledger, as harness clients do.
                let fork = cluster.fork_metrics();
                let mode = if thread_id % 2 == 0 {
                    ExecutionMode::Serial
                } else {
                    ExecutionMode::Parallel { workers: 4 }
                };
                for round in 0..4 {
                    let got = if (thread_id / 2 + round) % 2 == 0 {
                        isl::run_with_mode(&fork, query, isl_table, IslConfig::uniform(4), mode)
                    } else {
                        bfhm::run_with_mode(
                            &fork,
                            query,
                            bfhm_table,
                            &BfhmConfig {
                                num_buckets: 10,
                                filter_bits: Some(1 << 14),
                                ..Default::default()
                            },
                            WriteBackPolicy::Off,
                            mode,
                        )
                    }
                    .unwrap_or_else(|e| panic!("thread {thread_id} round {round}: {e}"));
                    assert_eq!(
                        &got.results, want,
                        "thread {thread_id} round {round} diverged from the oracle"
                    );
                    assert!(
                        got.metrics.sim_seconds <= got.metrics.node_seconds + 1e-9,
                        "thread {thread_id}: wall exceeded node-seconds"
                    );
                }
            });
        }
    });
}

/// Concurrent DRJN queries must not collide on their pull-phase temp
/// tables (they are named from a process-global sequence).
#[test]
fn concurrent_drjn_queries_do_not_collide() {
    let (cluster, query) = fig1_cluster();
    let mut ex = RankJoinExecutor::new(&cluster, query.clone());
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 10,
        num_partitions: 64,
    })
    .unwrap();
    let want = oracle::topk(&cluster, &query).unwrap();
    std::thread::scope(|scope| {
        for thread_id in 0..4 {
            let (cluster, query, want) = (&cluster, &query, &want);
            scope.spawn(move || {
                let fork = cluster.fork_metrics();
                let engine = rankjoin::MapReduceEngine::new(fork);
                let got = rankjoin::core::drjn::run(
                    &engine,
                    query,
                    &rankjoin::core::drjn::index_table_name(query),
                    &DrjnConfig {
                        num_buckets: 10,
                        num_partitions: 64,
                    },
                )
                .unwrap_or_else(|e| panic!("thread {thread_id}: {e}"));
                assert_eq!(&got.results, want, "thread {thread_id}");
            });
        }
    });
}

/// A randomized relation pair plus query parameters.
#[derive(Clone, Debug)]
struct Dataset {
    left: Vec<(u8, f64)>,
    right: Vec<(u8, f64)>,
    k: usize,
    product: bool,
    workers: usize,
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    let tuple = (0u8..12, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0));
    (
        prop::collection::vec(tuple.clone(), 0..60),
        prop::collection::vec(tuple, 0..60),
        1usize..25,
        any::<bool>(),
        2usize..6,
    )
        .prop_map(|(left, right, k, product, workers)| Dataset {
            left,
            right,
            k,
            product,
            workers,
        })
}

fn load(data: &Dataset) -> (Cluster, RankJoinQuery) {
    // Pre-split both base tables across the row-key range actually used
    // (l000..l059 / r000..r059), so every read path that touches base
    // tables — oracle scans, index-build MR jobs, DRJN pulls — sees a
    // multi-region layout.
    let cluster = Cluster::new(3, CostModel::test());
    for table in ["l", "r"] {
        let splits: Vec<Vec<u8>> = (1..4usize)
            .map(|i| format!("{table}{:03}", i * 15).into_bytes())
            .collect();
        cluster
            .create_table_with_splits(table, &["d"], &splits)
            .unwrap();
    }
    let client = cluster.client();
    for (rows, table) in [(&data.left, "l"), (&data.right, "r")] {
        for (i, (j, s)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    table,
                    format!("{table}{i:03}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", s.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        data.k,
        if data.product {
            ScoreFn::Product
        } else {
            ScoreFn::Sum
        },
    );
    (cluster, query)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs 6 algorithms + Auto x 2 modes incl. 4 index builds
        .. ProptestConfig::default()
    })]

    /// The satellite invariant: for every algorithm, `Parallel` returns the
    /// identical `TopK` with identical total bandwidth and dollar metrics
    /// as `Serial`, and wall-clock obeys `parallel <= serial` and
    /// `wall <= total node-seconds`.
    #[test]
    fn parallel_and_serial_modes_are_equivalent(data in dataset_strategy()) {
        let (cluster, query) = load(&data);
        let mut ex = RankJoinExecutor::new(&cluster, query.clone());
        ex.isl_config = IslConfig::uniform(7);
        ex.prepare_ijlmr().unwrap();
        ex.prepare_isl().unwrap();
        ex.prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            ..Default::default()
        }).unwrap();
        ex.prepare_drjn(DrjnConfig { num_buckets: 10, num_partitions: 32 }).unwrap();

        for algo in Algorithm::ALL {
            ex.execution_mode = ExecutionMode::Serial;
            let serial = ex.execute(algo).unwrap();
            ex.execution_mode = ExecutionMode::Parallel { workers: data.workers };
            let parallel = ex.execute(algo).unwrap();
            let name = algo.name();
            prop_assert_eq!(&parallel.results, &serial.results, "{}: TopK differs", name);
            prop_assert_eq!(
                parallel.metrics.kv_reads, serial.metrics.kv_reads,
                "{}: KV read units (dollars) differ", name
            );
            prop_assert_eq!(
                parallel.metrics.network_bytes, serial.metrics.network_bytes,
                "{}: network bytes differ", name
            );
            prop_assert_eq!(
                parallel.metrics.rpc_calls, serial.metrics.rpc_calls,
                "{}: RPC counts differ", name
            );
            prop_assert!(
                parallel.metrics.sim_seconds <= serial.metrics.sim_seconds + 1e-9,
                "{}: parallel wall {} above serial {}",
                name, parallel.metrics.sim_seconds, serial.metrics.sim_seconds
            );
            for outcome in [&serial, &parallel] {
                prop_assert!(
                    outcome.metrics.sim_seconds <= outcome.metrics.node_seconds + 1e-9,
                    "{}: wall {} above node-seconds {}",
                    name, outcome.metrics.sim_seconds, outcome.metrics.node_seconds
                );
            }
        }

        // Auto on the work-stealing pool: the mode-aware planner may pick a
        // *different* algorithm per mode (parallelism shifts the predicted
        // cheapest), so only the answer and the wall-clock invariants are
        // asserted — not the per-algorithm read/byte counts.
        ex.execution_mode = ExecutionMode::Serial;
        let auto_serial = ex.execute(Algorithm::Auto).unwrap();
        ex.execution_mode = ExecutionMode::Parallel { workers: data.workers };
        let auto_parallel = ex.execute(Algorithm::Auto).unwrap();
        prop_assert_eq!(&auto_parallel.results, &auto_serial.results, "AUTO: TopK differs");
        for outcome in [&auto_serial, &auto_parallel] {
            prop_assert!(
                outcome.metrics.sim_seconds <= outcome.metrics.node_seconds + 1e-9,
                "AUTO: wall {} above node-seconds {}",
                outcome.metrics.sim_seconds, outcome.metrics.node_seconds
            );
        }

        // The ISL full-enumeration fast path (k beyond any join size) must
        // also be read-for-read identical.
        let enum_query = query.with_k(usize::MAX / 2);
        let table = rankjoin::core::isl::index_table_name(&query);
        let fork = cluster.fork_metrics();
        let serial = isl::run_with_mode(
            &fork, &enum_query, &table, IslConfig::uniform(7), ExecutionMode::Serial,
        ).unwrap();
        let parallel = isl::run_with_mode(
            &fork, &enum_query, &table, IslConfig::uniform(7),
            ExecutionMode::Parallel { workers: data.workers },
        ).unwrap();
        prop_assert_eq!(&parallel.results, &serial.results, "ISL enumeration: TopK differs");
        prop_assert_eq!(parallel.metrics.kv_reads, serial.metrics.kv_reads,
            "ISL enumeration: KV reads differ");
        prop_assert_eq!(parallel.metrics.network_bytes, serial.metrics.network_bytes,
            "ISL enumeration: network bytes differ");
        prop_assert_eq!(parallel.metrics.rpc_calls, serial.metrics.rpc_calls,
            "ISL enumeration: RPC counts differ");
    }
}
