//! Multi-way rank-join integration suite (`rj_core::multiway`).
//!
//! * Proptest: 3-way **path** and **star** specs over arbitrary data are
//!   rank-equivalent to the exhaustive N-ary oracle under every access
//!   plan — the planner's own choice, forced all-descend, and a forced
//!   materialization — and an *arbitrary* interleaving of `next_batch`
//!   pulls, pause/resume round-trips, and resumes on a different
//!   executor fork charges exactly the one-shot run's `kv_reads`.
//! * Proptest: the **binary compatibility pin** — a two-side
//!   [`rankjoin::JoinSpec`] through [`rankjoin::SpecExecutor`] is
//!   byte-for-byte the binary ISL execution: identical results,
//!   identical metered `kv_reads`/`rpc_calls`/bytes.

use proptest::prelude::*;

use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, Cluster, CostModel, JoinSide, JoinSpec, JoinTuple, Mutation, RankJoinExecutor,
    ScoreFn, SideAccess, SpecExecutor, StopPolicy,
};

type SideRows = Vec<(u8, f64)>;

#[derive(Clone, Copy, Debug)]
enum Shape {
    Path,
    Star,
}

/// Loads one table per side (join value + score per row) and builds the
/// path or star spec over them.
fn load_spec(sides: &[SideRows], shape: Shape, k: usize) -> (Cluster, JoinSpec) {
    let cluster = Cluster::new(3, CostModel::test());
    let names = ["t0", "t1", "t2", "t3"];
    let labels = ["S0", "S1", "S2", "S3"];
    let client = cluster.client();
    let mut spec_sides = Vec::with_capacity(sides.len());
    for (i, rows) in sides.iter().enumerate() {
        cluster.create_table(names[i], &["d"]).unwrap();
        for (r, (j, score)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    names[i],
                    format!("{}_{r:04}", names[i]).as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        spec_sides.push(JoinSide::new(
            names[i],
            labels[i],
            ("d", b"jk"),
            ("d", b"score"),
        ));
    }
    let spec = match shape {
        Shape::Path => JoinSpec::path(spec_sides, k, ScoreFn::Sum).unwrap(),
        Shape::Star => JoinSpec::star(spec_sides, k, ScoreFn::Sum).unwrap(),
    };
    (cluster, spec)
}

/// Rank-equivalence under score ties (the repo's cross-algorithm
/// contract), over N-ary tuples: identical score sequences, exact
/// matches strictly above the boundary score, genuine join tuples at it.
fn assert_rank_equivalent(label: &str, got: &[JoinTuple], want: &[JoinTuple], all: &[JoinTuple]) {
    let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
    let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
    assert_eq!(got_scores, want_scores, "{label}: score sequences differ");
    let boundary = want.last().map(|t| t.score);
    for (g, w) in got.iter().zip(want) {
        if Some(g.score) != boundary {
            assert_eq!(g, w, "{label}: above-boundary tuple differs");
        } else {
            assert!(
                all.iter().any(|t| t == g),
                "{label}: boundary tuple is not a real join result: {g:?}"
            );
        }
    }
}

/// One step of an interleaved cursor schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Pull up to this many more ranks.
    Pull(usize),
    /// Pause into a serializable state and resume on the same executor.
    Reopen,
    /// Pause and resume on a *different* executor fork.
    Refork,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..5).prop_map(|v| match v {
        0..=2 => Op::Pull(v + 1),
        3 => Op::Reopen,
        _ => Op::Refork,
    })
}

#[derive(Clone, Debug)]
struct Scenario {
    sides: Vec<SideRows>,
    k: usize,
    ops: Vec<Op>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let tuple = (0u8..5, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0));
    (
        prop::collection::vec(prop::collection::vec(tuple, 1..14), 3..=3),
        1usize..8,
        prop::collection::vec(op_strategy(), 1..10),
    )
        .prop_map(|(sides, k, ops)| Scenario { sides, k, ops })
}

/// Drives one cursor through the schedule across two executor forks,
/// then drains it; returns the emitted prefix.
fn run_schedule(ex_a: &SpecExecutor, ex_b: &SpecExecutor, k: usize, ops: &[Op]) -> Vec<JoinTuple> {
    let policy = StopPolicy::never();
    let mut on_a = true;
    let mut cursor = ex_a.open_cursor(k).unwrap();
    let mut results = Vec::new();
    let mut done = false;
    for op in ops {
        if done || results.len() >= k {
            break;
        }
        match op {
            Op::Pull(n) => {
                let batch = cursor
                    .next_batch((*n).min(k - results.len()), &policy)
                    .unwrap();
                results.extend(batch.results);
                done = batch.done;
            }
            Op::Reopen => {
                let state = cursor.pause();
                let ex = if on_a { ex_a } else { ex_b };
                cursor = ex.resume_cursor(state).unwrap();
            }
            Op::Refork => {
                let state = cursor.pause();
                on_a = !on_a;
                let ex = if on_a { ex_a } else { ex_b };
                cursor = ex.resume_cursor(state).unwrap();
            }
        }
    }
    while !done && results.len() < k {
        let batch = cursor
            .next_batch(k - results.len(), &StopPolicy::never())
            .unwrap();
        results.extend(batch.results);
        done = batch.done;
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// 3-way path and star specs on arbitrary data: every access plan
    /// (planner's choice, forced all-descend, forced materialization)
    /// is rank-equivalent to the exhaustive oracle, and an arbitrary
    /// pull/pause/resume/refork schedule charges exactly the one-shot
    /// run's `kv_reads`.
    #[test]
    fn three_way_specs_match_oracle_across_plans_and_schedules(s in scenario()) {
        for shape in [Shape::Path, Shape::Star] {
            let (cluster, spec) = load_spec(&s.sides, shape, s.k);
            let mut proto = SpecExecutor::new(&cluster, spec.clone());
            prop_assert!(!proto.is_binary());
            proto.prepare().unwrap();
            // Prime the statistics snapshot so no fork pays an
            // asymmetric collection pass.
            proto.plan_access(s.k).unwrap();

            let want = oracle::topk_spec(&cluster, &spec).unwrap();
            let all = oracle::full_join_spec(&cluster, &spec).unwrap();

            let n = spec.n();
            let mut materialize_one = vec![SideAccess::Descend; n];
            materialize_one[1] = SideAccess::Materialize;
            let overrides: [Option<Vec<SideAccess>>; 3] = [
                None,
                Some(vec![SideAccess::Descend; n]),
                Some(materialize_one),
            ];
            for access in overrides {
                let fork = cluster.fork_metrics();
                let mut ex = proto.fork_onto(&fork).unwrap();
                ex.access_override = access.clone();
                let out = ex.execute_with_k(s.k).unwrap();
                assert_rank_equivalent(
                    &format!("{shape:?} {access:?}"), &out.results, &want, &all,
                );
            }

            // One-shot reference on its own metrics fork.
            let fork_ref = cluster.fork_metrics();
            let ex_ref = proto.fork_onto(&fork_ref).unwrap();
            let before = fork_ref.metrics().snapshot();
            ex_ref.execute_with_k(s.k).unwrap();
            let ref_reads = fork_ref.metrics().snapshot().delta_since(&before).kv_reads;

            // The same query through the scheduled cursor, hopping
            // between two further forks.
            let fork_a = cluster.fork_metrics();
            let fork_b = cluster.fork_metrics();
            let ex_a = proto.fork_onto(&fork_a).unwrap();
            let ex_b = proto.fork_onto(&fork_b).unwrap();
            let before_a = fork_a.metrics().snapshot();
            let before_b = fork_b.metrics().snapshot();
            let paged = run_schedule(&ex_a, &ex_b, s.k, &s.ops);
            let paged_reads = fork_a.metrics().snapshot().delta_since(&before_a).kv_reads
                + fork_b.metrics().snapshot().delta_since(&before_b).kv_reads;

            assert_rank_equivalent(&format!("{shape:?} scheduled"), &paged, &want, &all);
            prop_assert_eq!(
                paged_reads, ref_reads,
                "{:?}: scheduled run must charge exactly the one-shot reads", shape
            );
        }
    }

    /// The binary compatibility pin: a two-side spec through
    /// `SpecExecutor` produces identical results AND an identical full
    /// metrics delta (kv_reads, rpc_calls, bytes, time) to the binary
    /// ISL executor on the same data.
    #[test]
    fn two_side_spec_is_byte_for_byte_the_binary_execution(
        left in prop::collection::vec((0u8..6, 0u32..=1000), 1..20),
        right in prop::collection::vec((0u8..6, 0u32..=1000), 1..20),
        k in 1usize..8,
    ) {
        let sides: Vec<SideRows> = [&left, &right]
            .iter()
            .map(|rows| {
                rows.iter()
                    .map(|(j, s)| (*j, f64::from(*s) / 1000.0))
                    .collect()
            })
            .collect();

        let (c1, spec1) = load_spec(&sides, Shape::Path, k);
        let q = spec1.as_binary().expect("two-side path spec maps to binary");
        let mut binary = RankJoinExecutor::new(&c1, q.clone());
        binary.prepare_isl().unwrap();
        let before1 = c1.metrics().snapshot();
        let direct = binary.execute_with_k(Algorithm::Isl, k).unwrap();
        let charge1 = c1.metrics().snapshot().delta_since(&before1);

        let (c2, spec2) = load_spec(&sides, Shape::Path, k);
        let mut spec_exec = SpecExecutor::new(&c2, spec2);
        prop_assert!(spec_exec.is_binary());
        spec_exec.prepare().unwrap();
        let before2 = c2.metrics().snapshot();
        let via_spec = spec_exec.execute_with_k(k).unwrap();
        let charge2 = c2.metrics().snapshot().delta_since(&before2);

        prop_assert_eq!(direct.results, via_spec.results);
        prop_assert_eq!(direct.algorithm, via_spec.algorithm);
        prop_assert_eq!(
            charge1, charge2,
            "the spec path must charge byte-for-byte the binary metrics"
        );
    }
}
