//! Integration: Q1/Q2 on generated TPC-H data, every algorithm vs the
//! oracle, across k values and both testbed profiles.

use rankjoin::core::oracle;
use rankjoin::tpch::{loader, TpchConfig};
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, JoinSide, RankJoinExecutor,
    RankJoinQuery, ScoreFn,
};

fn q1(k: usize) -> RankJoinQuery {
    RankJoinQuery::new(
        JoinSide::new(
            loader::PART_TABLE,
            "P",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L",
            (loader::FAMILY, loader::cols::JK_PART),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        k,
        ScoreFn::Product,
    )
}

fn q2(k: usize) -> RankJoinQuery {
    RankJoinQuery::new(
        JoinSide::new(
            loader::ORDERS_TABLE,
            "O",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L2",
            (loader::FAMILY, loader::cols::JK_ORDER),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        k,
        ScoreFn::Sum,
    )
}

fn check_all(cluster: &Cluster, query: RankJoinQuery, ks: &[usize]) {
    let mut ex = RankJoinExecutor::new(cluster, query.clone());
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig::with_buckets(50)).unwrap();
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 50,
        num_partitions: 128,
    })
    .unwrap();
    for &k in ks {
        let want = oracle::topk(cluster, &query.with_k(k)).unwrap();
        for algo in Algorithm::ALL {
            let got = ex.execute_with_k(algo, k).unwrap();
            assert_eq!(got.results, want, "{} k={k}", algo.name());
        }
    }
}

#[test]
fn q1_all_algorithms_all_k() {
    let cluster = Cluster::new(3, CostModel::test());
    loader::load_all(&cluster, &TpchConfig::new(0.0006)).unwrap();
    check_all(&cluster, q1(1), &[1, 5, 25, 100]);
}

#[test]
fn q2_all_algorithms_all_k() {
    let cluster = Cluster::new(3, CostModel::test());
    loader::load_all(&cluster, &TpchConfig::new(0.0006)).unwrap();
    check_all(&cluster, q2(1), &[1, 5, 25, 100]);
}

#[test]
fn q2_digs_deeper_than_q1() {
    // The paper's score-distribution claim (§7.1): Q2 has fewer
    // high-ranking tuples, so ISL consumes more tuples at equal k.
    let cluster = Cluster::new(3, CostModel::test());
    loader::load_all(&cluster, &TpchConfig::new(0.001)).unwrap();

    let mut ex1 = RankJoinExecutor::new(&cluster, q1(20));
    ex1.prepare_isl().unwrap();
    let mut ex2 = RankJoinExecutor::new(&cluster, q2(20));
    ex2.prepare_isl().unwrap();

    let t1 = ex1
        .execute(Algorithm::Isl)
        .unwrap()
        .extra("tuples_consumed")
        .unwrap();
    let t2 = ex2
        .execute(Algorithm::Isl)
        .unwrap()
        .extra("tuples_consumed")
        .unwrap();
    assert!(
        t2 > t1,
        "Q2 should consume more tuples than Q1 (got {t2} vs {t1})"
    );
}

#[test]
fn both_profiles_agree_on_results() {
    // Cost profiles change metrics, never answers.
    let mut results = Vec::new();
    for cost in [CostModel::ec2(4), CostModel::lab()] {
        let cluster = Cluster::with_profile(cost);
        loader::load_all(&cluster, &TpchConfig::new(0.0004)).unwrap();
        let mut ex = RankJoinExecutor::new(&cluster, q1(10));
        ex.prepare_bfhm(BfhmConfig::with_buckets(20)).unwrap();
        results.push(ex.execute(Algorithm::Bfhm).unwrap().results);
    }
    assert_eq!(results[0], results[1]);
}

#[test]
fn fk_join_cardinality_invariant() {
    // Every lineitem joins exactly one order: full-join size == lineitems.
    let cluster = Cluster::new(2, CostModel::test());
    let stats = loader::load_all(&cluster, &TpchConfig::new(0.0004)).unwrap();
    let all = oracle::full_join(&cluster, &q2(1)).unwrap();
    assert_eq!(all.len() as u64, stats.lineitems);
}
