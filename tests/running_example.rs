//! Integration: the paper's running example (Fig. 1–6) through the
//! public API, across every algorithm, k value, and scoring function.

use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, RankJoinExecutor, RankJoinQuery, ScoreFn,
};

mod common;

fn load(score_fn: ScoreFn, k: usize) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(3, CostModel::test());
    let query = common::load_fig1(&cluster, score_fn, k);
    (cluster, query)
}

fn prepared_executor(cluster: &Cluster, query: RankJoinQuery) -> RankJoinExecutor {
    let mut ex = RankJoinExecutor::new(cluster, query);
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig {
        num_buckets: 10,
        ..Default::default()
    })
    .unwrap();
    ex.prepare_drjn(DrjnConfig {
        num_buckets: 10,
        num_partitions: 64,
    })
    .unwrap();
    ex
}

#[test]
fn paper_top3_is_the_three_b_joins() {
    let (cluster, query) = load(ScoreFn::Sum, 3);
    let ex = prepared_executor(&cluster, query);
    for algo in Algorithm::ALL {
        let outcome = ex.execute(algo).unwrap();
        let scores: Vec<f64> = outcome.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62], "{}", algo.name());
        assert!(outcome
            .results
            .iter()
            .all(|t| t.join_value == b"b".to_vec()));
    }
}

#[test]
fn all_algorithms_match_oracle_across_k() {
    let (cluster, query) = load(ScoreFn::Sum, 3);
    let ex = prepared_executor(&cluster, query.clone());
    for k in [1, 2, 4, 9, 20, 38, 100] {
        let want = oracle::topk(&cluster, &query.with_k(k)).unwrap();
        for algo in Algorithm::ALL {
            let got = ex.execute_with_k(algo, k).unwrap();
            assert_eq!(got.results, want, "{} k={k}", algo.name());
        }
    }
}

#[test]
fn weighted_sum_scoring_also_agrees() {
    // A third monotone aggregate (beyond the paper's sum/product),
    // exercising the generic threshold machinery end to end.
    let (cluster, query) = load(ScoreFn::WeightedSum { wl: 2.0, wr: 0.5 }, 4);
    let ex = prepared_executor(&cluster, query.clone());
    let want = oracle::topk(&cluster, &query).unwrap();
    for algo in Algorithm::ALL {
        assert_eq!(ex.execute(algo).unwrap().results, want, "{}", algo.name());
    }
    // Left-heavy weights: r1_10 (a, 1.00) must anchor the top result.
    assert_eq!(want[0].left_key, b"r1_10".to_vec());
}

#[test]
fn asymmetric_isl_batches_agree() {
    let (cluster, query) = load(ScoreFn::Sum, 5);
    let mut ex = RankJoinExecutor::new(&cluster, query.clone());
    ex.prepare_isl().unwrap();
    let want = oracle::topk(&cluster, &query).unwrap();
    for (bl, br) in [(1usize, 16usize), (16, 1), (3, 7)] {
        ex.isl_config = rankjoin::IslConfig {
            batch_left: bl,
            batch_right: br,
        };
        let got = ex.execute(Algorithm::Isl).unwrap();
        assert_eq!(got.results, want, "batches ({bl},{br})");
    }
}

#[test]
fn product_scoring_also_agrees() {
    let (cluster, query) = load(ScoreFn::Product, 5);
    let ex = prepared_executor(&cluster, query.clone());
    let want = oracle::topk(&cluster, &query).unwrap();
    assert!((want[0].score - 0.82 * 0.92).abs() < 1e-12, "b-join tops");
    for algo in Algorithm::ALL {
        assert_eq!(ex.execute(algo).unwrap().results, want, "{}", algo.name());
    }
}

#[test]
fn full_join_has_38_results() {
    // 2×4 (a) + 3×2 (b) + 3×2 (c) + 3×3 (d) = 8+6+6+9 = 29... computed by
    // the oracle; sanity-check the running example's join size invariant.
    let (cluster, query) = load(ScoreFn::Sum, 100);
    let all = oracle::full_join(&cluster, &query).unwrap();
    // a: 2 left × 4 right = 8; b: 3×2 = 6; c: 3×2 = 6; d: 3×3 = 9.
    assert_eq!(all.len(), 8 + 6 + 6 + 9);
    let ex = prepared_executor(&cluster, query);
    for algo in Algorithm::ALL {
        assert_eq!(
            ex.execute(algo).unwrap().results.len(),
            29,
            "{}",
            algo.name()
        );
    }
}

#[test]
fn metrics_shape_matches_paper_ordering() {
    // Dollar cost (KV reads): BFHM must be the cheapest of the indexed
    // algorithms, and MapReduce approaches the most expensive (§7.2).
    let (cluster, query) = load(ScoreFn::Sum, 3);
    let ex = prepared_executor(&cluster, query);
    let reads = |algo: Algorithm| ex.execute(algo).unwrap().metrics.kv_reads;
    let bfhm = reads(Algorithm::Bfhm);
    let isl = reads(Algorithm::Isl);
    let ijlmr = reads(Algorithm::Ijlmr);
    let hive = reads(Algorithm::Hive);
    let drjn = reads(Algorithm::Drjn);
    assert!(bfhm <= isl, "BFHM ({bfhm}) <= ISL ({isl})");
    assert!(isl <= ijlmr, "ISL ({isl}) <= IJLMR ({ijlmr})");
    assert!(ijlmr <= hive, "IJLMR ({ijlmr}) <= HIVE ({hive})");
    assert!(drjn >= ijlmr, "DRJN ({drjn}) rescans everything");
}
