//! Integration: §6 online updates — TPC-H refresh sets applied through
//! the intercepted write path, verified across every algorithm and every
//! BFHM write-back policy.

use rankjoin::core::bfhm::maintenance::{compact_if_pending, BfhmMaintainer};
use rankjoin::core::{bfhm, ijlmr, isl, oracle};
use rankjoin::sketch::blob::BlobCodec;
use rankjoin::tpch::{generate_update_set, loader, TpchConfig};
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, JoinSide, MaintainedSide, RankJoinExecutor,
    RankJoinQuery, ScoreFn, WriteBackPolicy,
};

const SF: f64 = 0.0006;

fn q2(k: usize) -> RankJoinQuery {
    RankJoinQuery::new(
        JoinSide::new(
            loader::ORDERS_TABLE,
            "O",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L2",
            (loader::FAMILY, loader::cols::JK_ORDER),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        k,
        ScoreFn::Sum,
    )
}

struct Setup {
    cluster: Cluster,
    ex: RankJoinExecutor,
    orders: MaintainedSide,
    lineitems: MaintainedSide,
}

fn setup() -> Setup {
    let cluster = Cluster::new(3, CostModel::test());
    loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
    let query = q2(15);
    let mut ex = RankJoinExecutor::new(&cluster, query.clone());
    ex.prepare_ijlmr().unwrap();
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(BfhmConfig::with_buckets(20)).unwrap();

    let bfhm_table = bfhm::index_table_name(&query);
    let orders = MaintainedSide::new(&cluster, query.left.clone())
        .with_isl(&isl::index_table_name(&query))
        .with_ijlmr(&ijlmr::index_table_name(&query))
        .with_bfhm(BfhmMaintainer::attach(&cluster, &bfhm_table, "O").unwrap());
    let lineitems = MaintainedSide::new(&cluster, query.right.clone())
        .with_isl(&isl::index_table_name(&query))
        .with_ijlmr(&ijlmr::index_table_name(&query))
        .with_bfhm(BfhmMaintainer::attach(&cluster, &bfhm_table, "L2").unwrap());
    Setup {
        cluster,
        ex,
        orders,
        lineitems,
    }
}

fn apply_refresh_sets(s: &Setup, sets: u64) -> usize {
    let cfg = TpchConfig::new(SF);
    let mut n = 0;
    for set_idx in 0..sets {
        let set = generate_update_set(&cfg, set_idx);
        n += rj_bench::apply_update_set(&s.orders, &s.lineitems, &set).expect("apply refresh set");
    }
    n
}

#[test]
fn refresh_sets_keep_every_index_consistent() {
    let s = setup();
    let before = oracle::topk(&s.cluster, &q2(15)).unwrap();
    let n = apply_refresh_sets(&s, 2);
    assert!(n > 0);
    // Refresh sets are score-agnostic, so nothing guarantees they touch
    // the current top-k; also delete the reigning top-1 order through the
    // intercepted path so the staleness check below cannot pass vacuously.
    // MissingRow is fine (a refresh set already removed it — the top-k
    // changed either way); any other failure is a real maintenance bug.
    if let Err(e) = s.orders.delete(&before[0].left_key) {
        assert!(
            matches!(e, rankjoin::core::error::RankJoinError::MissingRow),
            "top-1 delete failed: {e}"
        );
    }
    let after = oracle::topk(&s.cluster, &q2(15)).unwrap();
    assert_ne!(before, after, "updates should change the top-k");
    for algo in [Algorithm::Ijlmr, Algorithm::Isl, Algorithm::Bfhm] {
        let got = s.ex.execute(algo).unwrap();
        assert_eq!(got.results, after, "{} stale after updates", algo.name());
    }
}

#[test]
fn every_write_back_policy_returns_the_truth() {
    let query = q2(15);
    for policy in [
        WriteBackPolicy::Off,
        WriteBackPolicy::Lazy,
        WriteBackPolicy::Eager,
    ] {
        let mut s = setup();
        apply_refresh_sets(&s, 1);
        let want = oracle::topk(&s.cluster, &query).unwrap();
        s.ex.write_back = policy;
        let got = s.ex.execute(Algorithm::Bfhm).unwrap();
        assert_eq!(got.results, want, "{policy:?}");
        // And again (Eager/Lazy will have compacted — answers identical).
        let got2 = s.ex.execute(Algorithm::Bfhm).unwrap();
        assert_eq!(got2.results, want, "{policy:?} second run");
    }
}

#[test]
fn offline_compaction_preserves_answers_and_purges_records() {
    let s = setup();
    apply_refresh_sets(&s, 1);
    let want = oracle::topk(&s.cluster, &q2(15)).unwrap();
    let table = bfhm::index_table_name(&q2(15));
    let compacted_o = compact_if_pending(&s.cluster, &table, "O", BlobCodec::Golomb, 1).unwrap();
    let compacted_l = compact_if_pending(&s.cluster, &table, "L2", BlobCodec::Golomb, 1).unwrap();
    assert!(
        compacted_o + compacted_l > 0,
        "refresh left pending records"
    );
    let got = s.ex.execute(Algorithm::Bfhm).unwrap();
    assert_eq!(got.results, want);
    // Idempotent.
    assert_eq!(
        compact_if_pending(&s.cluster, &table, "O", BlobCodec::Golomb, 1).unwrap(),
        0
    );
}

#[test]
fn eager_write_back_overhead_is_bounded() {
    // The §7.2 claim: < 10% query-time overhead under an update-heavy
    // workload with eager write-back. Our simulated check is looser (the
    // constant factors differ) but asserts the same order: an updated
    // index must not cost multiples of a clean query.
    let clean = setup();
    let clean_time = clean
        .ex
        .execute(Algorithm::Bfhm)
        .unwrap()
        .metrics
        .sim_seconds;

    let mut dirty = setup();
    apply_refresh_sets(&dirty, 1);
    dirty.ex.write_back = WriteBackPolicy::Eager;
    let outcome = dirty.ex.execute(Algorithm::Bfhm).unwrap();
    let want = oracle::topk(&dirty.cluster, &q2(15)).unwrap();
    assert_eq!(outcome.results, want);
    // The updated top-k may legitimately need a few more fetches; bound
    // the overhead at 2x to catch regressions to rebuild-per-query.
    assert!(
        outcome.metrics.sim_seconds < clean_time * 2.0 + 0.05,
        "eager overhead too high: {} vs clean {}",
        outcome.metrics.sim_seconds,
        clean_time
    );
}
