//! Adaptive-execution test suite: the mid-query abort-and-switch contract
//! (`rj_core::adaptive`).
//!
//! * Proptest: an `Auto`-dispatched ISL forced to abort-and-switch at an
//!   arbitrary batch point returns a top-k rank-equivalent to the oracle
//!   and to running the switched-to algorithm alone, on arbitrary data.
//! * Acceptance: a planted descent lie triggers exactly one switch that
//!   beats riding the lie out, with the read accounting pinned (no full
//!   statistics pass, admin reads flat — PR 4's no-recollect contract
//!   extended to the mid-query path); `replan_divergence = ∞` never
//!   switches and is metric-identical to plain ISL.
//! * Regression: the re-plan path reads *live* region counts, not the
//!   snapshot's (auto-splits emit no stats delta).

use proptest::prelude::*;

use rankjoin::core::oracle;
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, IslConfig, JoinSide, Mutation, RankJoinExecutor,
    RankJoinQuery, ScoreFn, StatsSource,
};

/// Loads two relations and returns the top-k sum query over them.
fn load_pair(
    left: &[(u8, f64)],
    right: &[(u8, f64)],
    k: usize,
    cost: CostModel,
) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(3, cost);
    cluster.create_table("l", &["d"]).unwrap();
    cluster.create_table("r", &["d"]).unwrap();
    let client = cluster.client();
    for (rows, table) in [(left, "l"), (right, "r")] {
        for (i, (j, score)) in rows.iter().enumerate() {
            client
                .mutate_row(
                    table,
                    format!("{table}{i:04}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", vec![*j]),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        k,
        ScoreFn::Sum,
    );
    (cluster, query)
}

/// Rank-equivalence under score ties (the repo's cross-algorithm
/// contract): identical score sequences, exact matches strictly above the
/// k-th score, genuine join tuples at it.
fn assert_rank_equivalent(
    label: &str,
    got: &[rankjoin::JoinTuple],
    want: &[rankjoin::JoinTuple],
    all: &[rankjoin::JoinTuple],
) {
    let got_scores: Vec<f64> = got.iter().map(|t| t.score).collect();
    let want_scores: Vec<f64> = want.iter().map(|t| t.score).collect();
    assert_eq!(got_scores, want_scores, "{label}: score sequences differ");
    let boundary = want.last().map(|t| t.score);
    for (g, w) in got.iter().zip(want) {
        if Some(g.score) != boundary {
            assert_eq!(g, w, "{label}: above-boundary tuple differs");
        } else {
            assert!(
                all.iter().any(|t| t.score == g.score
                    && t.left_key == g.left_key
                    && t.right_key == g.right_key),
                "{label}: boundary tuple is not a real join result: {g:?}"
            );
        }
    }
}

/// The algorithm behind an "ISL→X" adaptive outcome name.
fn switch_target(name: &str) -> Algorithm {
    match name {
        "ISL→HIVE" => Algorithm::Hive,
        "ISL→PIG" => Algorithm::Pig,
        "ISL→IJLMR" => Algorithm::Ijlmr,
        "ISL→BFHM" => Algorithm::Bfhm,
        "ISL→DRJN" => Algorithm::Drjn,
        other => panic!("not a switched outcome: {other}"),
    }
}

#[derive(Clone, Debug)]
struct SwitchScenario {
    left: Vec<(u8, f64)>,
    right: Vec<(u8, f64)>,
    k: usize,
    batch: usize,
    force_after: u64,
    with_bfhm: bool,
}

fn switch_scenario() -> impl Strategy<Value = SwitchScenario> {
    let tuple = (0u8..6, 0u32..=1000).prop_map(|(j, s)| (j, f64::from(s) / 1000.0));
    (
        prop::collection::vec(tuple.clone(), 1..30),
        prop::collection::vec(tuple, 1..30),
        1usize..12,
        1usize..6,
        1u64..8,
        any::<bool>(),
    )
        .prop_map(
            |(left, right, k, batch, force_after, with_bfhm)| SwitchScenario {
                left,
                right,
                k,
                batch,
                force_after,
                with_bfhm,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Abort-and-switch is result-transparent at *any* switch point: the
    /// fault-injection hook forces the abort after an arbitrary batch,
    /// and the merged outcome must be rank-equivalent to the oracle —
    /// and, when a switch happened, to running the switched-to algorithm
    /// alone (its own rank-equivalence is asserted on the same data).
    #[test]
    fn forced_switch_is_oracle_equivalent_at_any_point(s in switch_scenario()) {
        // EC2 constants: the MR-job startup guarantees Auto prefers a
        // coordinator algorithm at this scale, so the ISL-adaptive path
        // actually engages whenever ISL wins the plan.
        let (cluster, query) = load_pair(&s.left, &s.right, s.k, CostModel::ec2(8));
        let mut ex = RankJoinExecutor::new(&cluster, query.clone());
        ex.isl_config = IslConfig::uniform(s.batch);
        ex.prepare_isl().unwrap();
        if s.with_bfhm {
            ex.prepare_bfhm(BfhmConfig { num_buckets: 10, ..Default::default() }).unwrap();
        }
        ex.adaptive_force_switch_after = Some(s.force_after);

        let want = oracle::topk(&cluster, &query).unwrap();
        let all = oracle::full_join(&cluster, &query).unwrap();
        let got = ex.execute(Algorithm::Auto).unwrap();
        assert_rank_equivalent("adaptive AUTO", &got.results, &want, &all);

        if got.extra("adaptive_switched") == Some(1.0) {
            let target = switch_target(got.algorithm);
            prop_assert!(target != Algorithm::Isl, "switch must change algorithms");
            // All prefix reads are charged to the one outcome.
            let wasted = got.extra("adaptive_wasted_kv_reads").unwrap_or(0.0);
            prop_assert!(got.metrics.kv_reads as f64 >= wasted);
            // The correction landed on the shared handle: the next plan
            // reports the mid-query statistics source.
            prop_assert!(ex.stats_handle().midquery_corrected());
            prop_assert!(matches!(
                ex.plan().unwrap().stats_source,
                StatsSource::MidQuery { .. }
            ));
            // Identical (up to genuine score ties) to the switched-to
            // algorithm running alone.
            let alone = ex.execute_with_k(target, s.k).unwrap();
            assert_rank_equivalent("switched-to alone", &alone.results, &want, &all);
            let got_scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
            let alone_scores: Vec<f64> = alone.results.iter().map(|t| t.score).collect();
            prop_assert_eq!(got_scores, alone_scores);
        }
    }
}

/// The planted-lie workload of the bench experiment (real scores in
/// `(0, 0.5]`, join matches only among the bottom-quarter tuples — ISL
/// must exhaust both lists — plus a skewed-refresh-set lie claiming a
/// dense population of high-scoring joining tuples). Loader and lie are
/// *shared* with `rj_bench::adaptive` so this acceptance test pins
/// regressions on exactly the workload CI measures.
fn lied_executor(rows: usize) -> (Cluster, RankJoinQuery, RankJoinExecutor) {
    let (cluster, query) = rj_bench::adaptive::load_workload(rows, true);
    let mut ex = RankJoinExecutor::new(&cluster, query.clone());
    ex.isl_config = IslConfig::uniform(rj_bench::adaptive::ISL_BATCH);
    ex.prepare_isl().unwrap();
    ex.prepare_bfhm(rj_bench::adaptive::bfhm_config()).unwrap();
    // Prime the statistics so the lie lands on a maintained snapshot,
    // then bend ~6% of each side's histogram — under the staleness
    // bound, so planning trusts it.
    let _ = ex.plan().unwrap();
    rj_bench::adaptive::plant_lie(&ex, &query, (rows / 16).max(8));
    (cluster, query, ex)
}

/// The PR's acceptance regression: the planted descent lie triggers
/// exactly one switch, with the statistics corrected in place — no full
/// statistics pass (collections flat, admin reads flat: the no-recollect
/// contract of PR 4, extended to the mid-query path) — and the switched
/// execution beats never-switch ISL on measured turnaround and reads.
#[test]
fn planted_lie_triggers_exactly_one_switch_with_reads_pinned() {
    let (cluster, query, ex) = lied_executor(1200);
    let plan = ex.plan().unwrap();
    assert_eq!(
        plan.best(),
        Some(Algorithm::Isl),
        "precondition: the lie must sell ISL:\n{}",
        plan.explain()
    );
    assert_eq!(ex.stats_handle().collections(), 1);

    let admin_before = cluster.metrics().snapshot().admin_kv_reads;
    let got = ex.execute(Algorithm::Auto).unwrap();
    let admin_after = cluster.metrics().snapshot().admin_kv_reads;

    // Exactly one switch, honestly accounted.
    assert_eq!(got.extra("adaptive_switched"), Some(1.0));
    assert_eq!(got.algorithm, "ISL→BFHM");
    assert_eq!(got.results, oracle::topk(&cluster, &query).unwrap());
    let wasted = got.extra("adaptive_wasted_kv_reads").unwrap();
    assert!(wasted > 0.0, "the aborted prefix cost something");
    assert!(got.metrics.kv_reads as f64 > wasted);

    // The mid-query correction is a delta, not a re-collection: no full
    // statistics pass ran (collections flat) and the admin-read ledger
    // never moved.
    assert_eq!(ex.stats_handle().collections(), 1, "no recollect");
    assert_eq!(admin_after, admin_before, "admin reads pinned");
    assert!(ex.stats_handle().midquery_corrected());

    // Running the same lie without switching (the counterfactual): a
    // fresh lied executor with an infinite bound rides ISL to the end.
    let (cluster2, query2, mut never) = lied_executor(1200);
    never.replan_divergence = f64::INFINITY;
    let rode = never.execute(Algorithm::Auto).unwrap();
    assert_eq!(rode.extra("adaptive_switched"), Some(0.0));
    assert_eq!(rode.algorithm, "ISL");
    assert_eq!(rode.results, oracle::topk(&cluster2, &query2).unwrap());
    assert!(!never.stats_handle().midquery_corrected());
    // ... and the switch pays on both axes at this workload.
    assert!(
        got.metrics.sim_seconds < rode.metrics.sim_seconds,
        "adaptive {:.3}s must beat never-switch {:.3}s",
        got.metrics.sim_seconds,
        rode.metrics.sim_seconds
    );
    assert!(got.metrics.kv_reads < rode.metrics.kv_reads);

    // The ∞-bound Auto run is metric-identical to plain ISL: observation
    // is pure bookkeeping over tuples already fetched.
    let plain = never.execute_with_k(Algorithm::Isl, 10).unwrap();
    assert_eq!(rode.metrics.kv_reads, plain.metrics.kv_reads);
    assert_eq!(rode.metrics.rpc_calls, plain.metrics.rpc_calls);
    assert_eq!(rode.metrics.network_bytes, plain.metrics.network_bytes);
    assert!((rode.metrics.sim_seconds - plain.metrics.sim_seconds).abs() < 1e-9);
}

/// A NaN divergence bound must read as "adaptivity off", never as
/// "switch every query".
#[test]
fn nan_divergence_bound_disables_switching() {
    let (cluster, query, mut ex) = lied_executor(400);
    ex.replan_divergence = f64::NAN;
    let got = ex.execute(Algorithm::Auto).unwrap();
    assert_eq!(got.extra("adaptive_switched"), Some(0.0));
    assert_eq!(got.results, oracle::topk(&cluster, &query).unwrap());
}

/// Region counts drift under auto-splits with no stats delta describing
/// them; the planning path every re-plan goes through must read the live
/// counts, not the snapshot's (ROADMAP learning (c) from PR 4).
#[test]
fn replanning_reads_live_region_counts_after_auto_splits() {
    let (cluster, query) = load_pair(
        &[(1, 0.9), (2, 0.8), (3, 0.7)],
        &[(1, 0.6), (2, 0.5), (3, 0.4)],
        2,
        CostModel::ec2(8),
    );
    let ex = RankJoinExecutor::new(&cluster, query.clone());
    let handle = ex.stats_handle();
    let first = handle
        .stats_for_planning(&cluster, 0.1)
        .unwrap()
        .stats
        .left_regions;

    // Trigger auto-splits on the left base table with raw writes (which
    // emit no delta and never advance the staleness clock).
    let table = cluster.table("l").unwrap();
    table.set_split_threshold(8);
    let client = cluster.client();
    for i in 0..64 {
        client
            .mutate_row(
                "l",
                format!("zz{i:04}").as_bytes(),
                vec![
                    Mutation::put("d", b"jk", vec![1]),
                    Mutation::put("d", b"score", 0.1f64.to_be_bytes().to_vec()),
                ],
            )
            .unwrap();
    }
    let live = cluster.table("l").unwrap().region_infos().len();
    assert!(live > first, "precondition: the writes must split regions");

    // The maintained snapshot was never told about any of this, yet the
    // planning entry point reports the live region count — and stays on
    // the maintained path (no re-collection).
    let planned = handle.stats_for_planning(&cluster, 0.1).unwrap();
    assert_eq!(planned.stats.left_regions, live);
    assert_eq!(handle.collections(), 1);
}
