//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of the `parking_lot` API the workspace uses — `Mutex` and
//! `RwLock` whose lock methods return guards directly (no poisoning) —
//! implemented over `std::sync`. Poisoned std locks are recovered
//! transparently, matching parking_lot's semantics of never poisoning.

use std::sync;

/// A mutual exclusion primitive; `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock; `read`/`write` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
