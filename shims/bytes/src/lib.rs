//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply-cloneable (`Arc`-backed)
//! byte buffer covering the subset of the real crate's API that this
//! workspace uses.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Creates a buffer borrowing a `'static` slice (copied here; the
    /// real crate avoids the copy, which callers cannot observe).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Self::copy_from_slice(&v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), b"xy".to_vec());
    }
}
