//! Numeric helpers, kept for module-path compatibility with the real
//! crate (`proptest::num`). Range strategies live on the range types
//! themselves — see [`crate::strategy`].
