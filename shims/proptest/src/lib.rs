//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest's API this workspace uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), [`strategy::Strategy`]
//! with `prop_map`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`] / [`collection::btree_set`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its case index and RNG seed
//!   (re-runnable via `PROPTEST_SEED`), not a minimized input;
//! * generation is deterministic per (test name, case index) so failures
//!   reproduce across runs without any persistence file;
//! * `PROPTEST_CASES` overrides the case count, as in the real crate.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module alias (`prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    // Internal expansion: per-test runner loop.
    (@expand [$cfg:expr]
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                for case in 0..cases {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case);
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = result {
                        panic!(
                            "proptest case {}/{} failed (seed {:#018x}): {}",
                            case + 1, cases, seed, err
                        );
                    }
                }
            }
        )*
    };
    // Entry with a config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand [$cfg] $($rest)*);
    };
    // Entry without one.
    ($($rest:tt)*) => {
        $crate::proptest!(@expand [$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    // The no-message arm must not route the stringified condition through
    // format! — conditions containing braces (closures, `matches!`) would
    // otherwise be misread as format captures.
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
