//! The [`Strategy`] trait and combinators: ranges, tuples, `prop_map`,
//! and constants.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type behind a box.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Generates `value.clone()` every time (the real crate's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}
