//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: uniform in [-1e9, 1e9]. The real crate
        // samples the full bit pattern; tests here only need "some f64".
        (rng.next_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
