//! Runner plumbing: config, RNG, case seeding, and failure type.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honoured; the other fields exist so struct-update
/// syntax against the real crate's field names keeps compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection sampling is not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// Cases to run: `PROPTEST_CASES` from the environment wins.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// A test-case failure raised by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the RNG seed for one test case.
///
/// Deterministic in (test name, case index) so failures reproduce; a
/// `PROPTEST_SEED` environment variable replays one exact case.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    if let Ok(v) = std::env::var("PROPTEST_SEED") {
        let v = v.trim().trim_start_matches("0x");
        if let Ok(seed) = u64::from_str_radix(v, 16) {
            return seed;
        }
    }
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The generator driving strategies: SplitMix64.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly-distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform `usize` drawn from a size range `[lo, hi)`.
    pub fn size_in(&mut self, lo: usize, hi_exclusive: usize) -> usize {
        assert!(lo < hi_exclusive, "empty size range {lo}..{hi_exclusive}");
        lo + self.below((hi_exclusive - lo) as u64) as usize
    }
}
