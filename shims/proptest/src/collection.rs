//! Collection strategies: `vec`, `btree_set`, and the size-range glue.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.size_in(self.lo, self.hi_exclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicates collapse, so the set can come up short of the drawn
        // size; that matches the real crate's behaviour closely enough.
        let n = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n.saturating_mul(16) + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates a `BTreeSet` of `element` values targeting a `size`-drawn
/// cardinality.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
