//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of criterion's API the workspace's benches use — enough for
//! `cargo bench --no-run` to link and for `cargo bench` to produce honest
//! (if statistically unsophisticated) wall-clock numbers: a short warm-up,
//! a fixed measurement window, and a mean-per-iteration report.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; runs and times the payload.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
}

const WARMUP_ITERS: u64 = 2;
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 10_000;

impl Bencher {
    /// Times `routine`, running it repeatedly for a short window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && (iters == 0 || start.elapsed() < MEASURE_WINDOW) {
            black_box(routine());
            iters += 1;
        }
        self.mean = start.elapsed() / iters.max(1) as u32;
        self.iters = iters;
    }
}

fn run_one(id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench {:<48} {:>12.3?}/iter ({} iters)",
        id, b.mean, b.iters
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes its own sample window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim sizes its own sample window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into()), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; exists for API parity).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` at the top level.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().to_string(), f);
        self
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
