//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! Implements exactly what the workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::random` and `Rng::random_range` over the common primitive types,
//! with `rngs::StdRng` backed by xoshiro256++ seeded via SplitMix64. The
//! generator is deterministic by construction — a design goal of the whole
//! simulator — but its stream differs from the real crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the user-facing trait.
pub trait Rng {
    /// Returns the next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly-distributed value of type `T`.
    ///
    /// Integers cover their full range; `f64`/`f32` are uniform in `[0, 1)`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: f64 = a.random();
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(1u32..=7);
            assert!((1..=7).contains(&n));
            let m = a.random_range(5i64..10);
            assert!((5..10).contains(&m));
        }
    }
}
