//! The paper's second motivating scenario (§1): full-text search over
//! posting lists.
//!
//! "Imagine a collection of posting lists over a large text corpus ...
//! each list entry consisting of (at least) the document identifier and
//! the document's relevance score with regard to the keyword. ... finding
//! the most relevant documents for two (or more) keywords consists of a
//! rank-join over the corresponding posting lists, where the document ID
//! is the join attribute."
//!
//! We synthesize posting lists for the keywords "rust" and "database"
//! over 5 000 documents (each keyword matches a subset), then ask for the
//! 10 documents most relevant to *both* keywords under a product scoring
//! function, with online updates arriving between queries.
//!
//! Run with: `cargo run --release --example full_text`

use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, JoinSide, MaintainedSide, Mutation,
    RankJoinExecutor, RankJoinQuery, ScoreFn,
};

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn relevance(seed: u64, doc: u64) -> Option<f64> {
    let h = mix(seed.wrapping_mul(31).wrapping_add(doc));
    // ~40% of documents contain the keyword; tf-idf-ish score in (0, 1].
    if h % 10 < 4 {
        Some(0.05 + 0.95 * ((h >> 8) % 10_000) as f64 / 10_000.0)
    } else {
        None
    }
}

fn main() {
    const DOCS: u64 = 5_000;
    let cluster = Cluster::new(5, CostModel::lab());
    cluster.create_table("postings_rust", &["p"]).unwrap();
    cluster.create_table("postings_database", &["p"]).unwrap();
    let client = cluster.client();

    println!("indexing {DOCS} documents into two posting lists...");
    let mut both = 0u64;
    for doc in 0..DOCS {
        let rust_rel = relevance(1, doc);
        let db_rel = relevance(2, doc);
        if rust_rel.is_some() && db_rel.is_some() {
            both += 1;
        }
        for (table, rel) in [("postings_rust", rust_rel), ("postings_database", db_rel)] {
            if let Some(score) = rel {
                client
                    .mutate_row(
                        table,
                        &doc.to_be_bytes(),
                        vec![
                            Mutation::put("p", b"doc", doc.to_be_bytes().to_vec()),
                            Mutation::put("p", b"rel", score.to_be_bytes().to_vec()),
                        ],
                    )
                    .unwrap();
            }
        }
    }
    println!("  {both} documents contain both keywords");

    // Top-10 documents by combined (product) relevance.
    let query = RankJoinQuery::new(
        JoinSide::new("postings_rust", "RUST", ("p", b"doc"), ("p", b"rel")),
        JoinSide::new("postings_database", "DB", ("p", b"doc"), ("p", b"rel")),
        10,
        ScoreFn::Product,
    );

    let mut executor = RankJoinExecutor::new(&cluster, query.clone());
    executor.prepare_isl().unwrap();
    executor
        .prepare_bfhm(BfhmConfig {
            num_buckets: 100,
            ..Default::default()
        })
        .unwrap();

    let outcome = executor.execute(Algorithm::Bfhm).unwrap();
    println!(
        "\ntop-10 documents for \"rust database\" (BFHM, {:.3}s simulated, {} read units):",
        outcome.metrics.sim_seconds, outcome.metrics.kv_reads
    );
    for (i, t) in outcome.results.iter().enumerate() {
        let doc = u64::from_be_bytes(t.join_value.as_slice().try_into().unwrap());
        println!(
            "  #{:<2} doc {:<6} rust {:.3} × database {:.3} = {:.4}",
            i + 1,
            doc,
            t.left_score,
            t.right_score,
            t.score
        );
    }

    // A new highly relevant document arrives; the intercepted write path
    // (§6) keeps base data and the ISL index consistent in one logical op.
    println!("\ningesting doc 999999 (rel 0.99 / 0.98) through the maintained write path...");
    let rust_side = MaintainedSide::new(&cluster, query.left.clone())
        .with_isl(&rankjoin::core::isl::index_table_name(&query));
    let db_side = MaintainedSide::new(&cluster, query.right.clone())
        .with_isl(&rankjoin::core::isl::index_table_name(&query));
    let doc_id = 999_999u64.to_be_bytes();
    rust_side.insert(&doc_id, &doc_id, 0.99, vec![]).unwrap();
    db_side.insert(&doc_id, &doc_id, 0.98, vec![]).unwrap();

    let updated = executor.execute(Algorithm::Isl).unwrap();
    let top = &updated.results[0];
    let top_doc = u64::from_be_bytes(top.join_value.as_slice().try_into().unwrap());
    println!(
        "new top-1 via ISL: doc {} with score {:.4}",
        top_doc, top.score
    );
    assert_eq!(top_doc, 999_999);
    assert!((top.score - 0.99 * 0.98).abs() < 1e-9);
    println!("online update visible to the index-backed query ✓");
}
