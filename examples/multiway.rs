//! Multi-way (N-ary) rank joins, end to end.
//!
//! Builds a 3-table dataset (movies — showings — venues joined on a
//! shared key), expresses the 3-way top-k join as a [`JoinSpec`] path,
//! and walks the full pipeline:
//!
//! 1. build the multiway score index and run the one-shot top-k;
//! 2. show the planner's per-side access choice (descend vs. materialize
//!    per side) and force the all-descend plan for comparison, metering
//!    both;
//! 3. page the same answer through a pause/resume cursor — which
//!    charges exactly the one-shot reads;
//! 4. run the two-side degenerate spec next to the binary ISL executor
//!    and show the identical results and identical metered cost.
//!
//! Run with: `cargo run --release --example multiway`

use rankjoin::{
    Algorithm, Cluster, CostModel, JoinSide, JoinSpec, Mutation, RankJoinExecutor, ScoreFn,
    SideAccess, SpecExecutor, StopPolicy,
};

/// Three relations joined on one shared key: big `movies` and `venues`
/// sides around a small `showings` interior.
fn load(cluster: &Cluster) -> Vec<JoinSide> {
    let client = cluster.client();
    let tables: [(&str, &str, usize); 3] = [
        ("movies", "M", 120),
        ("showings", "S", 18),
        ("venues", "V", 110),
    ];
    let mut seed = 0x5eed_cafe_u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((seed >> 33) + 1) as f64) / (1u64 << 31) as f64
    };
    let mut sides = Vec::new();
    for (table, label, rows) in tables {
        cluster.create_table(table, &["d"]).unwrap();
        for i in 0..rows {
            let jv = format!("g{:02}", i % 9);
            client
                .mutate_row(
                    table,
                    format!("{table}_{i:04}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", jv.into_bytes()),
                        Mutation::put("d", b"score", next().to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
        sides.push(JoinSide::new(table, label, ("d", b"jk"), ("d", b"score")));
    }
    sides
}

fn reads_of(cluster: &Cluster, f: impl FnOnce()) -> u64 {
    let before = cluster.metrics().snapshot();
    f();
    cluster.metrics().snapshot().delta_since(&before).kv_reads
}

fn main() {
    let cluster = Cluster::new(4, CostModel::lab());
    let sides = load(&cluster);
    let k = 5;

    // -- 1. the 3-way spec, indexed and executed one-shot ---------------
    let spec = JoinSpec::path(sides, k, ScoreFn::Sum).unwrap();
    let mut executor = SpecExecutor::new(&cluster, spec.clone());
    executor.prepare().unwrap();
    let outcome = executor.execute().unwrap();
    println!("top-{k} of movies |x| showings |x| venues (sum of scores):");
    for (rank, t) in outcome.results.iter().enumerate() {
        let inner: Vec<String> = t
            .inner
            .iter()
            .map(|(key, score)| format!("{} ({score:.2})", String::from_utf8_lossy(key)))
            .collect();
        println!(
            "  #{:<2} {:.3}  {} + [{}] + {}",
            rank + 1,
            t.score,
            String::from_utf8_lossy(&t.left_key),
            inner.join(", "),
            String::from_utf8_lossy(&t.right_key),
        );
    }

    // -- 2. the planner's per-side access choice ------------------------
    let access = executor.plan_access(k).unwrap();
    println!("\nplanner access choice: {access:?}");
    let auto_reads = reads_of(&cluster, || {
        executor.execute().unwrap();
    });
    let mut forced = executor.fork_onto(&cluster).unwrap();
    forced.access_override = Some(vec![SideAccess::Descend; spec.n()]);
    let forced_reads = reads_of(&cluster, || {
        forced.execute().unwrap();
    });
    println!("planner plan: {auto_reads} KV reads, forced all-descend: {forced_reads}");

    // -- 3. paging through a pause/resume cursor ------------------------
    let paged_reads = reads_of(&cluster, || {
        let mut cursor = executor.open_cursor(k).unwrap();
        let mut got = 0usize;
        let mut pages = 0usize;
        while got < k {
            let batch = cursor.next_batch(2, &StopPolicy::never()).unwrap();
            got += batch.results.len();
            pages += 1;
            if batch.done {
                break;
            }
            let state = cursor.pause();
            cursor = executor.resume_cursor(state).unwrap();
        }
        println!("\ncursor paging: {got} results over {pages} pages");
    });
    println!("paged reads: {paged_reads} (one-shot paid {auto_reads})");

    // -- 4. the two-side degenerate form is the binary executor ---------
    let q = rankjoin::RankJoinQuery::new(
        JoinSide::new("movies", "M", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("venues", "V", ("d", b"jk"), ("d", b"score")),
        k,
        ScoreFn::Sum,
    );
    let binary_reads = reads_of(&cluster, || {
        let mut ex = RankJoinExecutor::new(&cluster, q.clone());
        ex.prepare_isl().unwrap();
        ex.execute(Algorithm::Isl).unwrap();
    });
    let spec_reads = reads_of(&cluster, || {
        let mut ex = SpecExecutor::new(&cluster, q.to_spec());
        ex.prepare().unwrap();
        ex.execute().unwrap();
    });
    println!(
        "\ntwo-side spec vs binary ISL (prepare + execute): {spec_reads} vs {binary_reads} KV reads"
    );
}
