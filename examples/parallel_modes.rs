//! Execution modes: serial vs parallel multi-region reads.
//!
//! Loads the TPC-H fixture at a tiny scale factor, builds the ISL and
//! BFHM indices, and runs the same queries under `ExecutionMode::Serial`
//! and `ExecutionMode::Parallel { workers: 4 }`. The parallel mode must
//! return byte-identical results with identical KV reads (dollars) and
//! network bytes — only the modelled wall-clock drops, because fan-out
//! rounds are charged as their slowest lane instead of the serial sum.
//!
//! Run with: `cargo run --release --example parallel_modes`

use rankjoin::core::bfhm;
use rankjoin::core::isl;
use rankjoin::{BfhmConfig, CostModel, ExecutionMode, IslConfig, WriteBackPolicy};
use rj_bench::{Fixture, FixtureConfig, QuerySpec};

fn main() {
    let mut config = FixtureConfig::ec2(0.0005);
    config.cost = CostModel::ec2(4);
    println!("loading TPC-H fixture (SF=0.0005) on 4 nodes and building indices...");
    let mut fixture = Fixture::load(config);
    fixture.prepare(QuerySpec::Q2);

    let modes = [
        ExecutionMode::Serial,
        ExecutionMode::Parallel { workers: 4 },
    ];
    println!(
        "\n{:<6} {:<5} {:<4} {:<12} {:>10} {:>10} {:>9} {:>11}",
        "query", "algo", "k", "mode", "wall", "node-sec", "kv reads", "net bytes"
    );
    for k in [10usize, 50, usize::MAX / 2] {
        let query = QuerySpec::Q2.query(k);
        let k_label = if k > 1000 {
            "all".to_owned()
        } else {
            k.to_string()
        };
        type Runner<'a> = Box<dyn Fn(ExecutionMode) -> rankjoin::QueryOutcome + 'a>;
        let runners: Vec<(&str, Runner<'_>)> = vec![
            (
                "ISL",
                Box::new(|mode| {
                    isl::run_with_mode(
                        &fixture.cluster,
                        &query,
                        &isl::index_table_name(&query),
                        IslConfig::uniform(fixture.config.isl_batch),
                        mode,
                    )
                    .expect("isl")
                }),
            ),
            (
                "BFHM",
                Box::new(|mode| {
                    bfhm::run_with_mode(
                        &fixture.cluster,
                        &query,
                        &bfhm::index_table_name(&query),
                        &BfhmConfig::with_buckets(fixture.config.bfhm_buckets),
                        WriteBackPolicy::Off,
                        mode,
                    )
                    .expect("bfhm")
                }),
            ),
        ];
        for (algo, run) in &runners {
            let outcomes: Vec<_> = modes.iter().map(|&m| (m, run(m))).collect();
            for (mode, outcome) in &outcomes {
                println!(
                    "{:<6} {:<5} {:<4} {:<12} {:>9.3}s {:>9.3}s {:>9} {:>11}",
                    QuerySpec::Q2.name(),
                    algo,
                    k_label,
                    mode.label(),
                    outcome.metrics.sim_seconds,
                    outcome.metrics.node_seconds,
                    outcome.metrics.kv_reads,
                    outcome.metrics.network_bytes
                );
            }
            let (_, serial) = &outcomes[0];
            let (_, parallel) = &outcomes[1];
            assert_eq!(serial.results, parallel.results, "{algo}: results differ");
            assert_eq!(serial.metrics.kv_reads, parallel.metrics.kv_reads);
            assert_eq!(serial.metrics.network_bytes, parallel.metrics.network_bytes);
            assert!(parallel.metrics.sim_seconds <= serial.metrics.sim_seconds + 1e-9);
        }
    }
    println!("\nserial and parallel modes agree on results, reads, and bytes ✓");
}
