//! The cost-based adaptive planner (`Algorithm::Auto`), end to end.
//!
//! Loads the paper's running example (Fig. 1) onto two clusters — one per
//! testbed cost profile (EC2 vs lab cluster) — builds the indices, prints
//! each planner's `explain()` ranking, and runs `Auto` to show the choice
//! executing. The point of the exercise is the paper's Fig. 7 vs Fig. 8
//! contrast: which algorithm is cheapest depends on the hardware profile
//! and on `k`, and the planner picks per query instead of asking the
//! caller.
//!
//! Run with: `cargo run --release --example planner`

use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, JoinSide, Mutation, Objective,
    RankJoinExecutor, RankJoinQuery, ScoreFn,
};

fn load_running_example(cluster: &Cluster) {
    cluster.create_table("r1", &["d"]).unwrap();
    cluster.create_table("r2", &["d"]).unwrap();
    let r1: &[(&str, &[u8], f64)] = &[
        ("r1_01", b"d", 0.82),
        ("r1_02", b"c", 0.93),
        ("r1_03", b"c", 0.67),
        ("r1_04", b"d", 0.82),
        ("r1_05", b"a", 0.73),
        ("r1_06", b"c", 0.79),
        ("r1_07", b"b", 0.82),
        ("r1_08", b"b", 0.70),
        ("r1_09", b"d", 0.68),
        ("r1_10", b"a", 1.00),
        ("r1_11", b"b", 0.64),
    ];
    let r2: &[(&str, &[u8], f64)] = &[
        ("r2_01", b"a", 0.51),
        ("r2_02", b"b", 0.91),
        ("r2_03", b"c", 0.64),
        ("r2_04", b"d", 0.53),
        ("r2_05", b"d", 0.41),
        ("r2_06", b"d", 0.50),
        ("r2_07", b"a", 0.35),
        ("r2_08", b"a", 0.38),
        ("r2_09", b"a", 0.37),
        ("r2_10", b"c", 0.31),
        ("r2_11", b"b", 0.92),
    ];
    let client = cluster.client();
    for (rows, table) in [(r1, "r1"), (r2, "r2")] {
        for &(key, join, score) in rows {
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", join.to_vec()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
}

fn main() {
    let query = RankJoinQuery::new(
        JoinSide::new("r1", "R1", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r2", "R2", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );

    for cost in [CostModel::ec2(8), CostModel::lab()] {
        let profile = cost.name;
        let cluster = Cluster::with_profile(cost);
        load_running_example(&cluster);
        let mut executor = RankJoinExecutor::new(&cluster, query.clone());
        executor.prepare_ijlmr().unwrap();
        executor.prepare_isl().unwrap();
        executor
            .prepare_bfhm(BfhmConfig {
                num_buckets: 10,
                ..Default::default()
            })
            .unwrap();
        executor
            .prepare_drjn(DrjnConfig {
                num_buckets: 10,
                num_partitions: 64,
            })
            .unwrap();

        println!("=== profile {profile} ===");
        for k in [1, 10] {
            let plan = executor.plan_with_k(k).unwrap();
            println!("{}", plan.explain());
        }

        // And the dollar objective, which favours frugal reads.
        executor.objective = Objective::Dollars;
        println!("{}", executor.plan_with_k(10).unwrap().explain());
        executor.objective = Objective::Time;

        let outcome = executor.execute(Algorithm::Auto).unwrap();
        let triple = outcome
            .results
            .iter()
            .map(|t| format!("{:.2}", t.score))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "AUTO ran {} in {:.1}ms ({} KV reads): top-3 = {triple}\n",
            outcome.algorithm,
            outcome.metrics.sim_seconds * 1e3,
            outcome.metrics.kv_reads
        );
        assert_eq!(outcome.results.len(), 3);
        assert!((outcome.results[0].score - 1.74).abs() < 1e-9);
        // A second Auto run hits the plan cache (same Arc).
        let again = executor.execute(Algorithm::Auto).unwrap();
        assert_eq!(again.results, outcome.results);
    }
    println!("planner demo complete ✓");
}
