//! The multi-tenant serving front-end, end to end.
//!
//! Loads the paper's running example (Fig. 1), registers it as a query
//! backend, and walks three serving scenarios:
//!
//! 1. three tenants submit overlapping top-k queries in one scheduling
//!    round — one execution serves the whole group (coalescing), and a
//!    later shallower query is answered from the result-prefix cache for
//!    free;
//! 2. a deep query is cancelled mid-flight at a batch boundary, and its
//!    tenant is billed exactly the consumed prefix (ledger == billing
//!    record);
//! 3. a background index rebuild bumps the shared statistics version,
//!    which coherently invalidates the prefix cache.
//!
//! Run with: `cargo run --release --example serve`

use rankjoin::{
    Cluster, CostModel, JoinSide, Mutation, QueryPriority, RankJoinExecutor, RankJoinQuery,
    RankJoinService, ScoreFn, ServeConfig, ServedBy, SessionOutcome, SessionStatus, SubmitOptions,
};

fn load_running_example(cluster: &Cluster) {
    cluster.create_table("r1", &["d"]).unwrap();
    cluster.create_table("r2", &["d"]).unwrap();
    let r1: &[(&str, &[u8], f64)] = &[
        ("r1_01", b"d", 0.82),
        ("r1_02", b"c", 0.93),
        ("r1_03", b"c", 0.67),
        ("r1_04", b"d", 0.82),
        ("r1_05", b"a", 0.73),
        ("r1_06", b"c", 0.79),
        ("r1_07", b"b", 0.82),
        ("r1_08", b"b", 0.70),
        ("r1_09", b"d", 0.68),
        ("r1_10", b"a", 1.00),
        ("r1_11", b"b", 0.64),
    ];
    let r2: &[(&str, &[u8], f64)] = &[
        ("r2_01", b"a", 0.51),
        ("r2_02", b"b", 0.91),
        ("r2_03", b"c", 0.64),
        ("r2_04", b"d", 0.53),
        ("r2_05", b"d", 0.41),
        ("r2_06", b"d", 0.50),
        ("r2_07", b"a", 0.74),
        ("r2_08", b"b", 0.81),
        ("r2_09", b"c", 0.36),
        ("r2_10", b"a", 0.25),
        ("r2_11", b"c", 0.72),
    ];
    let client = cluster.client();
    for (table, rows) in [("r1", r1), ("r2", r2)] {
        for (key, jv, score) in rows {
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", jv.to_vec()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }
}

fn status_line(service: &RankJoinService, label: &str, id: rankjoin::serve::SessionId) {
    match service.poll(id).unwrap() {
        SessionStatus::Done(result) => {
            let served = match result.served_by {
                ServedBy::Execution => "own execution",
                ServedBy::SharedExecution => "coalesced (free)",
                ServedBy::PrefixCache => "prefix cache (free)",
                ServedBy::Unserved => "never executed",
            };
            println!(
                "  {label}: {:?} via {served}, {} rows, billed {} KV reads",
                result.outcome,
                result.results.len(),
                result.charged.kv_reads
            );
        }
        other => println!("  {label}: {other:?}"),
    }
}

fn main() {
    let cluster = Cluster::new(3, CostModel::lab());
    load_running_example(&cluster);
    let query = RankJoinQuery::new(
        JoinSide::new("r1", "R1", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r2", "R2", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );
    let mut executor = RankJoinExecutor::new(&cluster, query);
    executor.isl_config = rankjoin::IslConfig::uniform(2);
    executor.prepare_isl().unwrap();

    let service = RankJoinService::new(ServeConfig::default());
    let backend = service.register_backend(executor).unwrap();
    let gold = service.register_tenant("gold", 3.0).unwrap();
    let silver = service.register_tenant("silver", 1.0).unwrap();
    let batch = service.register_tenant("batch", 1.0).unwrap();

    println!("-- scenario 1: coalescing + prefix cache --");
    let a = service
        .submit(gold, backend, SubmitOptions::topk(4))
        .unwrap();
    let b = service
        .submit(silver, backend, SubmitOptions::topk(2))
        .unwrap();
    let c = service
        .submit(
            batch,
            backend,
            SubmitOptions::topk(3).with_priority(QueryPriority::Batch),
        )
        .unwrap();
    service.run_until_idle().unwrap();
    status_line(&service, "gold   k=4", a);
    status_line(&service, "silver k=2", b);
    status_line(&service, "batch  k=3", c);
    let late = service
        .submit(silver, backend, SubmitOptions::topk(3))
        .unwrap();
    service.run_round().unwrap();
    status_line(&service, "silver k=3 (later)", late);

    println!("-- scenario 2: mid-query cancellation, metered exactly --");
    let mut opts = SubmitOptions::topk(8);
    opts.cancel_after_batches = Some(1); // as if cancel() landed mid-flight
    let stopped = service.submit(gold, backend, opts).unwrap();
    service.run_round().unwrap();
    status_line(&service, "gold   k=8 cancelled", stopped);
    let usage = service.tenant_usage(gold).unwrap();
    let billed = service.tenant_charged(gold).unwrap();
    println!(
        "  gold ledger {} KV reads == billed {} KV reads: {}",
        usage.kv_reads,
        billed.kv_reads,
        usage.kv_reads == billed.kv_reads
    );

    println!("-- scenario 3: rebuild invalidates the prefix cache --");
    service.schedule_rebuild(backend).unwrap();
    service.run_round().unwrap();
    let fresh = service
        .submit(silver, backend, SubmitOptions::topk(2))
        .unwrap();
    service.run_round().unwrap();
    status_line(&service, "silver k=2 (post-rebuild)", fresh);

    let counters = service.counters();
    println!(
        "-- totals: {} sessions, {} executions, {} coalesced, {} cache hits, {} rebuilds --",
        counters.submitted,
        counters.executions,
        counters.coalesced,
        counters.cache_hits,
        counters.maintenance_runs
    );
    assert!(counters.executions < counters.submitted);
    let fresh_result = match service.poll(fresh).unwrap() {
        SessionStatus::Done(result) => result,
        other => panic!("post-rebuild session not done: {other:?}"),
    };
    assert_eq!(fresh_result.outcome, SessionOutcome::Complete);
    assert_eq!(
        fresh_result.served_by,
        ServedBy::Execution,
        "the rebuilt backend must not serve the stale prefix"
    );
    println!("✓ serving layer: shared work, exact metering, coherent caches");
}
