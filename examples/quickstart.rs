//! Quickstart: the paper's running example (Fig. 1), end to end.
//!
//! Loads relations R1 and R2 from the paper, builds all four indices, and
//! runs every algorithm for the top-3 sum-scored rank join, printing the
//! results and the three evaluation metrics. Every algorithm must agree:
//! the winners are the three `b`-joins 1.74, 1.73, 1.62.
//!
//! Run with: `cargo run --release --example quickstart`

use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, JoinSide, Mutation, RankJoinExecutor,
    RankJoinQuery, ScoreFn,
};

fn main() {
    // 3 worker nodes, EC2-like cost profile.
    let cluster = Cluster::new(3, CostModel::ec2(3));
    cluster.create_table("r1", &["d"]).unwrap();
    cluster.create_table("r2", &["d"]).unwrap();

    // Fig. 1 tuples: (row key, join value, score).
    let r1: &[(&str, &[u8], f64)] = &[
        ("r1_01", b"d", 0.82),
        ("r1_02", b"c", 0.93),
        ("r1_03", b"c", 0.67),
        ("r1_04", b"d", 0.82),
        ("r1_05", b"a", 0.73),
        ("r1_06", b"c", 0.79),
        ("r1_07", b"b", 0.82),
        ("r1_08", b"b", 0.70),
        ("r1_09", b"d", 0.68),
        ("r1_10", b"a", 1.00),
        ("r1_11", b"b", 0.64),
    ];
    let r2: &[(&str, &[u8], f64)] = &[
        ("r2_01", b"a", 0.51),
        ("r2_02", b"b", 0.91),
        ("r2_03", b"c", 0.64),
        ("r2_04", b"d", 0.53),
        ("r2_05", b"d", 0.41),
        ("r2_06", b"d", 0.50),
        ("r2_07", b"a", 0.35),
        ("r2_08", b"a", 0.38),
        ("r2_09", b"a", 0.37),
        ("r2_10", b"c", 0.31),
        ("r2_11", b"b", 0.92),
    ];
    let client = cluster.client();
    for (rows, table) in [(r1, "r1"), (r2, "r2")] {
        for &(key, join, score) in rows {
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", join.to_vec()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }

    // SELECT * FROM r1, r2 WHERE r1.jk = r2.jk
    // ORDER BY r1.score + r2.score STOP AFTER 3
    let query = RankJoinQuery::new(
        JoinSide::new("r1", "R1", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r2", "R2", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );

    let mut executor = RankJoinExecutor::new(&cluster, query);
    println!("building indices (IJLMR, ISL, BFHM, DRJN)...");
    executor.prepare_ijlmr().unwrap();
    executor.prepare_isl().unwrap();
    executor
        .prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            ..Default::default()
        })
        .unwrap();
    executor
        .prepare_drjn(DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .unwrap();

    println!(
        "\n{:<7} {:>10} {:>12} {:>9}   top-3 (left ⋈ right = score)",
        "algo", "time", "net bytes", "kv reads"
    );
    for algo in Algorithm::ALL {
        let outcome = executor.execute(algo).unwrap();
        let triple = outcome
            .results
            .iter()
            .map(|t| {
                format!(
                    "{}⋈{}={:.2}",
                    String::from_utf8_lossy(&t.left_key),
                    String::from_utf8_lossy(&t.right_key),
                    t.score
                )
            })
            .collect::<Vec<_>>()
            .join("  ");
        println!(
            "{:<7} {:>9.3}s {:>12} {:>9}   {}",
            outcome.algorithm,
            outcome.metrics.sim_seconds,
            outcome.metrics.network_bytes,
            outcome.metrics.kv_reads,
            triple
        );
        assert!((outcome.results[0].score - 1.74).abs() < 1e-9);
        assert!((outcome.results[1].score - 1.73).abs() < 1e-9);
        assert!((outcome.results[2].score - 1.62).abs() < 1e-9);
    }
    println!("\nall six algorithms agree: top-3 = 1.74, 1.73, 1.62 ✓");
}
