//! TPC-H analytics: the paper's evaluation queries Q1 and Q2 at laptop
//! scale, all six algorithms side by side.
//!
//! ```sql
//! -- Q1:
//! SELECT * FROM Part P, Lineitem L WHERE P.PartKey = L.PartKey
//! ORDER BY (P.RetailPrice * L.ExtendedPrice) STOP AFTER k
//! -- Q2:
//! SELECT * FROM Orders O, Lineitem L WHERE O.OrderKey = L.OrderKey
//! ORDER BY (O.TotalPrice + L.ExtendedPrice) STOP AFTER k
//! ```
//!
//! Prints a per-algorithm table of the paper's three metrics (simulated
//! time, network bytes, KV read units) and verifies that every algorithm
//! returns the same top-k.
//!
//! Run with: `cargo run --release --example tpch_analytics`

use rankjoin::tpch::{loader, TpchConfig};
use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, DrjnConfig, JoinSide, RankJoinExecutor,
    RankJoinQuery, ScoreFn,
};

fn q1(k: usize) -> RankJoinQuery {
    RankJoinQuery::new(
        JoinSide::new(
            loader::PART_TABLE,
            "P",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L",
            (loader::FAMILY, loader::cols::JK_PART),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        k,
        ScoreFn::Product,
    )
}

fn q2(k: usize) -> RankJoinQuery {
    RankJoinQuery::new(
        JoinSide::new(
            loader::ORDERS_TABLE,
            "O",
            (loader::FAMILY, loader::cols::JK),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        JoinSide::new(
            loader::LINEITEM_TABLE,
            "L2",
            (loader::FAMILY, loader::cols::JK_ORDER),
            (loader::FAMILY, loader::cols::SCORE),
        ),
        k,
        ScoreFn::Sum,
    )
}

fn main() {
    let sf = 0.002; // 400 parts, 3000 orders, ≈12k lineitems
    let k = 20;
    let cluster = Cluster::with_profile(CostModel::ec2(8));
    println!("loading TPC-H SF={sf} onto a 1+8 EC2-profile cluster...");
    let stats = loader::load_all(&cluster, &TpchConfig::new(sf)).unwrap();
    println!(
        "  {} parts, {} orders, {} lineitems\n",
        stats.parts, stats.orders, stats.lineitems
    );

    for (name, query) in [("Q1 (product)", q1(k)), ("Q2 (sum)", q2(k))] {
        println!("== {name}, k={k} ==");
        let mut executor = RankJoinExecutor::new(&cluster, query);
        executor.prepare_ijlmr().unwrap();
        executor.prepare_isl().unwrap();
        executor
            .prepare_bfhm(BfhmConfig::with_buckets(100))
            .unwrap();
        executor
            .prepare_drjn(DrjnConfig::with_buckets(100))
            .unwrap();

        println!(
            "{:<7} {:>12} {:>14} {:>11}   best",
            "algo", "sim time", "net bytes", "kv reads"
        );
        let mut reference: Option<Vec<_>> = None;
        for algo in Algorithm::ALL {
            let outcome = executor.execute(algo).unwrap();
            println!(
                "{:<7} {:>11.3}s {:>14} {:>11}   {:.4}",
                outcome.algorithm,
                outcome.metrics.sim_seconds,
                outcome.metrics.network_bytes,
                outcome.metrics.kv_reads,
                outcome.results.first().map(|t| t.score).unwrap_or(f64::NAN)
            );
            match &reference {
                None => reference = Some(outcome.results),
                Some(r) => assert_eq!(
                    r, &outcome.results,
                    "{} disagrees with the reference",
                    outcome.algorithm
                ),
            }
        }
        println!("all algorithms agree ✓\n");
    }
}
