//! Static-analysis smoke: the two `rj_analyze` subsystems end to end.
//!
//! 1. Runs the rjlint pass over this workspace — the same scan the CI
//!    `analyze` job gates on — and requires it clean.
//! 2. Runs a small rj_check exploration: the classic lost-update race is
//!    found (with a replayable schedule), and the atomic fix passes
//!    exhaustive exploration of the bounded interleaving space.
//!
//! ```text
//! cargo run --example analyze
//! ```

use rankjoin::analyze::chk::{
    self,
    sync::atomic::{AtomicUsize, Ordering},
    thread, CheckOutcome, Config,
};
use rankjoin::analyze::lint;
use std::path::Path;
use std::sync::Arc;

fn main() {
    // --- The lint pass: the workspace must hold its own invariants. ---
    let root = lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above this example");
    let report = lint::scan_workspace(&root).expect("workspace scan");
    println!(
        "rjlint: {} file(s) scanned, {} finding(s), {} suppression(s) honoured",
        report.files_scanned,
        report.findings.len(),
        report.suppressions_used.len()
    );
    for f in &report.findings {
        println!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    assert!(report.clean(), "the lint gate would fail this workspace");

    // --- rj_check: a racy increment (load; store) across two threads. ---
    let racy = || {
        let counter = Arc::new(AtomicUsize::new(0));
        let sibling = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            })
        };
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        sibling.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    match chk::explore_with(Config::default(), racy) {
        CheckOutcome::Fail {
            schedule,
            schedules,
            ..
        } => println!(
            "rj_check: lost update found on schedule {} of the search, decisions {:?}",
            schedules, schedule
        ),
        CheckOutcome::Pass { schedules, .. } => {
            panic!("lost update not found in {schedules} schedules")
        }
    }

    // --- ...and the atomic fix survives every bounded interleaving. ---
    let fixed = || {
        let counter = Arc::new(AtomicUsize::new(0));
        let sibling = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
        };
        counter.fetch_add(1, Ordering::SeqCst);
        sibling.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    };
    match chk::explore_with(Config::default(), fixed) {
        CheckOutcome::Pass {
            schedules,
            exhausted,
        } => println!(
            "rj_check: fetch_add passes all {} bounded schedules (exhausted: {})",
            schedules, exhausted
        ),
        CheckOutcome::Fail { message, .. } => panic!("atomic increment failed: {message}"),
    }
}
