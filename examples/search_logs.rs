//! The paper's first motivating scenario (§1): per-day search-engine logs.
//!
//! "Take for example a collection of per-day search engine logs, consisting
//! of phrases and their frequency of appearance in user inputs, with a
//! separate table or file per day. Now imagine we wish to find the k most
//! popular phrases appearing in several of these days. This would be
//! formulated as a rank-join query, where the phrase text is the join
//! attribute, and the total popularity of each phrase is computed as an
//! aggregate over the per-day frequencies."
//!
//! We synthesize two days of Zipf-ish query logs and ask for the 5 phrases
//! most popular across *both* days (sum of normalized frequencies),
//! comparing the coordinator algorithms (ISL, BFHM) that a dashboard
//! would actually use interactively.
//!
//! Run with: `cargo run --release --example search_logs`

use rankjoin::{
    Algorithm, BfhmConfig, Cluster, CostModel, JoinSide, Mutation, RankJoinExecutor, RankJoinQuery,
    ScoreFn,
};

/// Deterministic toy phrase list: a few hundred two-word phrases.
fn phrases() -> Vec<String> {
    let adjectives = [
        "cheap", "best", "fast", "local", "new", "used", "free", "top", "late", "early", "vintage",
        "modern", "rare", "daily", "live",
    ];
    let nouns = [
        "flights", "hotels", "laptops", "recipes", "news", "weather", "movies", "tickets", "jobs",
        "cars", "books", "shoes", "games", "courses", "phones", "houses", "bikes", "guitars",
        "cameras", "watches",
    ];
    let mut out = Vec::new();
    for a in adjectives {
        for n in nouns {
            out.push(format!("{a} {n}"));
        }
    }
    out
}

/// Zipf-ish normalized frequency of phrase `rank` on a given day, with a
/// per-day rotation so that the two days disagree about what's hot.
fn frequency(rank: usize, day_rotation: usize, n: usize) -> f64 {
    let effective = (rank + day_rotation) % n;
    1.0 / (1.0 + effective as f64).powf(0.7)
}

fn main() {
    let cluster = Cluster::new(4, CostModel::ec2(4));
    cluster.create_table("log_day1", &["d"]).unwrap();
    cluster.create_table("log_day2", &["d"]).unwrap();
    let client = cluster.client();

    let phrases = phrases();
    let n = phrases.len();
    println!("loading {n} phrases × 2 daily logs...");
    for (day, table, rotation) in [(1, "log_day1", 0usize), (2, "log_day2", 57)] {
        for (rank, phrase) in phrases.iter().enumerate() {
            let freq = frequency(rank, rotation, n);
            client
                .mutate_row(
                    table,
                    format!("{day}:{phrase}").as_bytes(),
                    vec![
                        Mutation::put("d", b"phrase", phrase.clone().into_bytes()),
                        Mutation::put("d", b"freq", freq.to_be_bytes().to_vec()),
                    ],
                )
                .unwrap();
        }
    }

    // Top-5 phrases by total (sum) popularity across both days, joining
    // on the phrase text.
    let query = RankJoinQuery::new(
        JoinSide::new("log_day1", "D1", ("d", b"phrase"), ("d", b"freq")),
        JoinSide::new("log_day2", "D2", ("d", b"phrase"), ("d", b"freq")),
        5,
        ScoreFn::Sum,
    );

    let mut executor = RankJoinExecutor::new(&cluster, query);
    executor.prepare_isl().unwrap();
    executor
        .prepare_bfhm(BfhmConfig {
            num_buckets: 50,
            ..Default::default()
        })
        .unwrap();

    for algo in [Algorithm::Isl, Algorithm::Bfhm] {
        let outcome = executor.execute(algo).unwrap();
        println!(
            "\n== {} — {:.3}s simulated, {} bytes shipped, {} read units",
            outcome.algorithm,
            outcome.metrics.sim_seconds,
            outcome.metrics.network_bytes,
            outcome.metrics.kv_reads,
        );
        for (i, t) in outcome.results.iter().enumerate() {
            println!(
                "  #{} {:<18} day1 {:.3} + day2 {:.3} = {:.3}",
                i + 1,
                String::from_utf8_lossy(&t.join_value),
                t.left_score,
                t.right_score,
                t.score
            );
        }
    }

    // Sanity: both agree with each other.
    let a = executor.execute(Algorithm::Isl).unwrap().results;
    let b = executor.execute(Algorithm::Bfhm).unwrap().results;
    assert_eq!(a, b, "ISL and BFHM must return identical top-k");
    println!("\nISL and BFHM agree ✓");
}
