//! Self-tests for the rj_check interleaving explorer: known-buggy micro
//! protocols must produce a failing (and replayable) schedule, known-good
//! ones must pass exhaustive exploration, and the deadlock / timeout /
//! livelock semantics must behave as documented.

use rj_analyze::chk::{
    self,
    sync::atomic::{AtomicBool, AtomicUsize, Ordering},
    sync::{Condvar, Mutex},
    thread, CheckOutcome, Config,
};
use std::sync::Arc;
use std::time::Duration;

fn fail_schedule(out: &CheckOutcome) -> Vec<usize> {
    match out {
        CheckOutcome::Fail { schedule, .. } => schedule.clone(),
        CheckOutcome::Pass { schedules, .. } => {
            panic!("expected a failing schedule, passed after {schedules} schedules")
        }
    }
}

#[test]
fn single_threaded_model_explores_exactly_once() {
    let out = chk::explore_with(Config::default(), || {
        let m = Mutex::new(0usize);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 1);
    });
    match out {
        CheckOutcome::Pass {
            schedules,
            exhausted,
        } => {
            assert!(exhausted);
            assert_eq!(schedules, 1, "no concurrency, no branching");
        }
        CheckOutcome::Fail { message, .. } => panic!("unexpected failure: {message}"),
    }
}

#[test]
fn lost_update_is_found_and_replayable() {
    // Non-atomic increment (load; store) on two threads: some schedule
    // loses one update. The explorer must find it and the reported
    // schedule must reproduce it deterministically.
    let model = || {
        let c = Arc::new(AtomicUsize::new(0));
        let t = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            })
        };
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let out = chk::explore_with(Config::default(), model);
    match &out {
        CheckOutcome::Fail { message, .. } => {
            assert!(message.contains("lost update"), "wrong failure: {message}")
        }
        CheckOutcome::Pass { .. } => panic!("explorer missed the lost update"),
    }
    let replayed = chk::replay(&fail_schedule(&out), model);
    match replayed {
        CheckOutcome::Fail { message, .. } => {
            assert!(message.contains("lost update"), "replay found: {message}")
        }
        CheckOutcome::Pass { .. } => panic!("failing schedule did not replay"),
    }
}

#[test]
fn fetch_add_increment_passes_exhaustively() {
    let out = chk::explore_with(Config::default(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let t = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
        };
        c.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    match out {
        CheckOutcome::Pass {
            schedules,
            exhausted,
        } => {
            assert!(exhausted);
            assert!(schedules > 1, "two threads must branch: {schedules}");
        }
        CheckOutcome::Fail { message, .. } => panic!("atomic increment failed: {message}"),
    }
}

#[test]
fn mutex_guarded_increment_passes_exhaustively() {
    let out = chk::explore_with(Config::default(), || {
        let c = Arc::new(Mutex::new(0usize));
        let t = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let mut g = c.lock().unwrap();
                let v = *g;
                *g = v + 1;
            })
        };
        {
            let mut g = c.lock().unwrap();
            let v = *g;
            *g = v + 1;
        }
        t.join();
        assert_eq!(*c.lock().unwrap(), 2);
    });
    assert!(out.is_pass(), "mutual exclusion must protect the counter");
}

#[test]
fn abba_lock_order_deadlock_is_detected() {
    let out = chk::explore_with(Config::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            })
        };
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        t.join();
    });
    match out {
        CheckOutcome::Fail { message, .. } => {
            assert!(message.contains("deadlock"), "wrong failure: {message}")
        }
        CheckOutcome::Pass { .. } => panic!("ABBA deadlock not detected"),
    }
}

#[test]
fn lost_wakeup_shows_up_as_deadlock() {
    // The waiter parks unconditionally; if the notifier runs first the
    // notification is lost and the untimed wait can never complete.
    let out = chk::explore_with(Config::default(), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let _g = pair.0.lock().unwrap();
                pair.1.notify_one();
            })
        };
        let g = pair.0.lock().unwrap();
        let _g = pair.1.wait(g).unwrap();
        t.join();
    });
    match out {
        CheckOutcome::Fail { message, .. } => {
            assert!(message.contains("deadlock"), "wrong failure: {message}")
        }
        CheckOutcome::Pass { .. } => panic!("lost wakeup not detected"),
    }
}

#[test]
fn predicate_loop_wait_passes_exhaustively() {
    let out = chk::explore_with(Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let mut g = pair.0.lock().unwrap();
                *g = true;
                pair.1.notify_one();
            })
        };
        let mut g = pair.0.lock().unwrap();
        while !*g {
            g = pair.1.wait(g).unwrap();
        }
        drop(g);
        t.join();
    });
    assert!(out.is_pass(), "flag + predicate loop must pass: {out:?}");
}

#[test]
fn timed_wait_progresses_without_a_notify() {
    // Timeout delivery: the flag is set without any notify; the timed
    // waiter must still make progress (woken only when nothing else is
    // runnable, which is exactly when it would otherwise deadlock).
    let out = chk::explore_with(Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let t = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                *pair.0.lock().unwrap() = true;
            })
        };
        let mut g = pair.0.lock().unwrap();
        while !*g {
            let (ng, _timeout) = pair.1.wait_timeout(g, Duration::from_millis(1)).unwrap();
            g = ng;
        }
        drop(g);
        t.join();
    });
    assert!(out.is_pass(), "timed wait must not deadlock: {out:?}");
}

#[test]
fn unbounded_spin_is_reported_as_livelock() {
    let out = chk::explore_with(
        Config {
            max_steps: 200,
            ..Config::default()
        },
        || {
            let flag = AtomicBool::new(false);
            while !flag.load(Ordering::SeqCst) {
                // Nothing will ever set it.
            }
        },
    );
    match out {
        CheckOutcome::Fail { message, .. } => {
            assert!(message.contains("livelock"), "wrong failure: {message}")
        }
        CheckOutcome::Pass { .. } => panic!("unbounded spin not caught by the step bound"),
    }
}

#[test]
fn explore_panics_with_the_failing_schedule() {
    let r = std::panic::catch_unwind(|| {
        chk::explore(|| {
            let c = Arc::new(AtomicUsize::new(0));
            let t = {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            };
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    });
    let err = r.expect_err("explore() must panic on a failing model");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("schedule:"), "panic lacks the schedule: {msg}");
}
