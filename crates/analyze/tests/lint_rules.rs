//! Fixture tests for every rjlint rule: each rule fires on a minimal
//! violating fixture and stays quiet on the idiomatic fix, suppressions
//! follow the audited contract, and the workspace itself lints clean
//! (the same invariant the CI `analyze` job gates on).

use rj_analyze::lint::{self, Report};

fn scan(path: &str, src: &str) -> Report {
    lint::scan_source(path, src)
}

fn rules_of(report: &Report) -> Vec<&str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- safety

#[test]
fn unsafe_without_safety_comment_fires() {
    let r = scan(
        "crates/store/src/x.rs",
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    assert_eq!(rules_of(&r), ["safety-comment"]);
    assert_eq!(r.findings[0].line, 2);
}

#[test]
fn safety_comment_same_line_or_block_above_is_accepted() {
    let same_line = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract\n    unsafe { *p } // SAFETY: caller guarantees validity\n}\n";
    assert!(scan("crates/store/src/x.rs", same_line).clean());
    let block_above = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: `p` is valid for reads because the caller\n    // keeps the arena alive for 'a.\n    unsafe { *p }\n}\n";
    assert!(scan("crates/store/src/x.rs", block_above).clean());
}

#[test]
fn interrupted_comment_block_does_not_carry_safety() {
    // A SAFETY comment above unrelated *code* must not cover a later
    // `unsafe` — the contiguous block ends at the first code line.
    let src = "// SAFETY: for something else\nlet a = 1;\nlet b = unsafe { read(p) };\n";
    let r = scan("crates/store/src/x.rs", src);
    assert_eq!(rules_of(&r), ["safety-comment"]);
}

// -------------------------------------------------------------- total-cmp

#[test]
fn partial_cmp_unwrap_fires_even_in_tests() {
    let src = "fn s(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).unwrap()\n}\n";
    let r = scan("crates/store/tests/proptests.rs", src);
    assert_eq!(rules_of(&r), ["total-cmp"]);
    let with_expect = "fn s(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b).expect(\"not NaN\")\n}\n";
    assert_eq!(
        rules_of(&scan("crates/bench/src/x.rs", with_expect)),
        ["total-cmp"]
    );
}

#[test]
fn total_cmp_and_unchained_partial_cmp_are_accepted() {
    assert!(scan(
        "crates/store/src/x.rs",
        "fn s(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }\n"
    )
    .clean());
    // partial_cmp without the unwrap chain (e.g. matched) is fine.
    assert!(scan(
        "crates/bench/src/x.rs",
        "fn s(a: f64, b: f64) -> bool { a.partial_cmp(&b) == Some(std::cmp::Ordering::Less) }\n"
    )
    .clean());
}

// -------------------------------------------------------------- no-unwrap

#[test]
fn unwrap_in_library_path_fires() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    for path in [
        "crates/core/src/x.rs",
        "crates/serve/src/x.rs",
        "crates/store/src/x.rs",
    ] {
        assert_eq!(rules_of(&scan(path, src)), ["no-unwrap"], "{path}");
    }
}

#[test]
fn unwrap_out_of_scope_is_accepted() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    for path in [
        "crates/bench/src/x.rs",           // not a no-unwrap crate
        "crates/store/tests/x.rs",         // tests dir
        "crates/store/src/testsupport.rs", // explicit exemption
        "examples/x.rs",
        "shims/rand/src/lib.rs",
    ] {
        assert!(scan(path, src).clean(), "{path}");
    }
}

#[test]
fn unwrap_inside_cfg_test_module_is_accepted() {
    let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1u32).unwrap();\n    }\n}\n";
    assert!(scan("crates/core/src/x.rs", src).clean());
}

#[test]
fn exempt_expect_idioms_are_accepted() {
    // Lock-poison propagation and checked narrowing carry invariants in
    // the expect message; they are the sanctioned idioms.
    let src = "pub fn f(m: &std::sync::Mutex<u32>, cv: &std::sync::Condvar, n: usize) -> u32 {\n    let g = m.lock().expect(\"rank-join state lock\");\n    let g = cv.wait(g).expect(\"state lock poisoned\");\n    let (g, _t) = cv.wait_timeout(g, std::time::Duration::from_millis(1)).expect(\"state lock poisoned\");\n    let v = *g;\n    let k = u32::try_from(n).expect(\"checked by admission\");\n    let j: u32 = n.try_into().expect(\"checked by admission\");\n    v + k + j\n}\n";
    assert!(scan("crates/store/src/x.rs", src).clean());
    // …but a plain expect on anything else still fires.
    let bad = "pub fn f(v: Option<u32>) -> u32 { v.expect(\"present\") }\n";
    assert_eq!(rules_of(&scan("crates/store/src/x.rs", bad)), ["no-unwrap"]);
}

#[test]
fn unwrap_like_identifiers_do_not_fire() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }\npub fn g(v: Option<u32>) -> u32 { v.unwrap_or_default() }\n";
    assert!(scan("crates/core/src/x.rs", src).clean());
}

// ------------------------------------------------------ thread-discipline

#[test]
fn raw_thread_spawn_outside_the_core_fires() {
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
    let r = scan("crates/serve/src/x.rs", src);
    assert_eq!(rules_of(&r), ["thread-discipline"]);
    let scoped = "pub fn f() { std::thread::scope(|_| {}); }\n";
    assert_eq!(
        rules_of(&scan("crates/bench/src/x.rs", scoped)),
        ["thread-discipline"]
    );
}

#[test]
fn thread_allowlist_and_tests_are_accepted() {
    let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
    for path in [
        "crates/store/src/pool.rs",
        "crates/store/src/parallel.rs",
        "crates/mapreduce/src/lib.rs",
        "shims/parking_lot/src/lib.rs",
        "crates/serve/tests/x.rs",
    ] {
        assert!(scan(path, src).clean(), "{path}");
    }
    let in_test =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
    assert!(scan("crates/serve/src/x.rs", in_test).clean());
}

// --------------------------------------------------------------- sim-time

#[test]
fn host_clock_in_simulated_metrics_path_fires() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    let r = scan("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&r), ["sim-time"]);
    let st = "pub fn f() -> u64 { let _t = std::time::SystemTime::now(); 0 }\n";
    assert_eq!(rules_of(&scan("crates/store/src/x.rs", st)), ["sim-time"]);
}

#[test]
fn host_clock_outside_sim_scope_is_accepted() {
    let src = "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    for path in [
        "crates/bench/src/x.rs", // wall-clock benches are the point
        "crates/core/tests/x.rs",
        "crates/analyze/src/x.rs",
    ] {
        assert!(scan(path, src).clean(), "{path}");
    }
}

// ----------------------------------------------------------- suppressions

#[test]
fn trailing_suppression_with_justification_is_honoured() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // rjlint: allow(no-unwrap) — prototype path, removed in PR 11\n}\n";
    let r = scan("crates/core/src/x.rs", src);
    assert!(r.clean(), "{:?}", r.findings);
    assert_eq!(r.suppressions_used.len(), 1);
    assert_eq!(r.suppressions_used[0].rule, "no-unwrap");
    assert!(r.suppressions_used[0].justification.contains("prototype"));
}

#[test]
fn full_line_suppression_covers_the_next_code_line() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    // rjlint: allow(no-unwrap) — invariant: admission already validated v\n    v.unwrap()\n}\n";
    let r = scan("crates/core/src/x.rs", src);
    assert!(r.clean(), "{:?}", r.findings);
    assert_eq!(r.suppressions_used[0].target_line, 3);
}

#[test]
fn bare_suppression_is_a_contract_violation_and_does_not_suppress() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // rjlint: allow(no-unwrap)\n}\n";
    let report = scan("crates/core/src/x.rs", src);
    let mut rules = rules_of(&report);
    rules.sort_unstable();
    assert_eq!(rules, ["no-unwrap", "suppression-contract"]);
}

#[test]
fn unknown_rule_suppression_is_a_contract_violation() {
    let src = "pub fn f() {}\n// rjlint: allow(made-up-rule) — because reasons, clearly\n";
    let r = scan("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&r), ["suppression-contract"]);
    assert!(r.findings[0].message.contains("unknown rule"));
}

#[test]
fn doc_comments_describing_the_syntax_are_not_suppressions() {
    let src = "//! Suppress with `rjlint: allow(<rule>)` on the line.\n/// See `rjlint: allow(...)` for details.\npub fn f() {}\n";
    assert!(scan("crates/core/src/x.rs", src).clean());
}

#[test]
fn suppression_for_a_different_rule_does_not_suppress() {
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // rjlint: allow(sim-time) — wrong rule on purpose here\n}\n";
    let r = scan("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&r), ["no-unwrap"]);
}

// ----------------------------------------------------------------- report

#[test]
fn json_report_round_trips_the_fields() {
    let r = scan(
        "crates/core/src/x.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let json = r.to_json();
    assert!(json.contains("\"version\": 1"));
    assert!(json.contains("\"rule\": \"no-unwrap\""));
    assert!(json.contains("\"path\": \"crates/core/src/x.rs\""));
    assert!(json.contains("\"clean\": false"));
    let clean = scan("crates/core/src/x.rs", "pub fn f() {}\n").to_json();
    assert!(clean.contains("\"clean\": true"));
    assert!(clean.contains("\"files_scanned\": 1"));
}

#[test]
fn json_escapes_quotes_and_newlines() {
    let r = scan(
        "crates/core/src/x.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    let mut r = r;
    r.findings[0].message = "a \"quoted\"\nmessage".to_string();
    let json = r.to_json();
    assert!(json.contains("a \\\"quoted\\\"\\nmessage"));
}

// ------------------------------------------------------ the real workspace

/// The invariant the CI `analyze` job gates on: the workspace's own
/// sources lint clean (with every suppression justified inline).
#[test]
fn rjlint_workspace_is_clean() {
    let root = lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analyze");
    let report = lint::scan_workspace(&root).expect("scan workspace");
    assert!(report.files_scanned > 50, "walked the real workspace");
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        report.clean(),
        "rjlint found {} issue(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
