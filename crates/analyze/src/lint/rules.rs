//! The repo-specific lint rules.
//!
//! Every rule matches over a [`StrippedFile`] (comments and string
//! contents already blanked — see [`super::strip`]), so rules reason about
//! *code tokens* only. Each has a stable kebab-case id used in reports and
//! in `// rjlint: allow(<id>) — justification` suppressions.

use super::strip::StrippedFile;

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

/// Static description of one rule, for `--list-rules` and the README
/// table.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub scope: &'static str,
}

/// Every rule rjlint enforces, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "safety-comment",
        summary: "every `unsafe` carries a `// SAFETY:` rationale in the comment block directly above (or on the same line)",
        scope: "all workspace sources",
    },
    RuleInfo {
        id: "total-cmp",
        summary: "no `partial_cmp(..).unwrap()/.expect(..)` on floats — score ordering must use `f64::total_cmp` (NaN-safe, PR 3 contract)",
        scope: "all workspace sources, tests included",
    },
    RuleInfo {
        id: "no-unwrap",
        summary: "no `.unwrap()`/`.expect(..)` in library paths — return typed `RankJoinError`/`ServeError` instead; `.lock()/.wait()/.wait_timeout(..).expect(..)` (poison propagation) and `try_from/try_into(..).expect(..)` (checked-narrowing invariants) are exempt idioms",
        scope: "non-test code in crates/{core,serve,store}/src (testsupport.rs exempt)",
    },
    RuleInfo {
        id: "thread-discipline",
        summary: "no `thread::spawn`/`thread::scope`/`thread::Builder` outside the execution core — all concurrency goes through the work-stealing pool so admission control and the 1-vs-N thread matrix stay meaningful",
        scope: "library sources except crates/store/src/{pool,parallel}.rs, crates/mapreduce, shims",
    },
    RuleInfo {
        id: "sim-time",
        summary: "no `Instant::now`/`SystemTime` in simulated-metrics paths — modelled time must be derived from the cost model only, never the host clock",
        scope: "crates/{store,core,serve,sketch,tpch,mapreduce}/src and src/",
    },
    RuleInfo {
        id: "suppression-contract",
        summary: "every `// rjlint: allow(<rule>)` names a known rule and carries a non-empty justification",
        scope: "all workspace sources",
    },
];

/// True if `id` names a rule in [`RULES`].
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of word-boundary occurrences of `word` in `hay`.
fn word_occurrences(hay: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after = at + word.len();
        let after_ok =
            after >= hay.len() || !is_ident_char(hay[after..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Skips a balanced `( … )` group starting at `open` (which must index a
/// `(`); returns the offset just past the matching `)`.
fn skip_parens(hay: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (i, c) in hay[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

fn skip_ws(hay: &str, mut at: usize) -> usize {
    while at < hay.len() {
        let c = hay[at..].chars().next().unwrap_or('x');
        if c.is_whitespace() {
            at += c.len_utf8();
        } else {
            break;
        }
    }
    at
}

/// If `hay[at..]` starts (after whitespace) with `.word`, returns the
/// offset just past `word`.
fn match_dot_word(hay: &str, at: usize, word: &str) -> Option<usize> {
    let at = skip_ws(hay, at);
    if !hay[at..].starts_with('.') {
        return None;
    }
    let at = skip_ws(hay, at + 1);
    if hay[at..].starts_with(word)
        && !is_ident_char(hay[at + word.len()..].chars().next().unwrap_or(' '))
    {
        Some(at + word.len())
    } else {
        None
    }
}

/// The identifier of the call whose `( … )` closes just before `at`
/// (scanning backward over `ident ( … )` with `at` right after the `)`),
/// e.g. `lock` for `….lock() @`.
fn call_ident_before(hay: &str, at: usize) -> Option<String> {
    let trimmed_end = hay[..at].trim_end();
    if !trimmed_end.ends_with(')') {
        return None;
    }
    let close = trimmed_end.len() - 1;
    let mut depth = 0i64;
    let mut open = None;
    for (i, c) in hay[..=close].char_indices().rev() {
        match c {
            ')' => depth += 1,
            '(' => {
                depth -= 1;
                if depth == 0 {
                    open = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    let ident_end = hay[..open].trim_end().len();
    let ident_start = hay[..ident_end]
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)?;
    if ident_start == ident_end {
        return None;
    }
    Some(hay[ident_start..ident_end].to_string())
}

/// Scope classification of one file, derived from its path.
pub struct FileScope {
    /// Under some crate's (or the root's) `src/`.
    pub is_library_src: bool,
    /// Subject to `no-unwrap` (crates/{core,serve,store}/src, minus
    /// testsupport).
    pub no_unwrap_scope: bool,
    /// Subject to `sim-time` (simulated-metrics crates).
    pub sim_time_scope: bool,
    /// Exempt from `thread-discipline` (the execution core itself, the
    /// mapreduce engine's scoped workers, and the vendored shims).
    pub thread_allowlisted: bool,
    /// Vendored stand-in for an external crate.
    pub is_shim: bool,
}

impl FileScope {
    pub fn of(rel_path: &str) -> FileScope {
        let p = rel_path;
        let is_shim = p.starts_with("shims/");
        let is_library_src = (p.contains("/src/") || p.starts_with("src/"))
            && !p.contains("/tests/")
            && !p.contains("/benches/")
            && !p.contains("/examples/");
        let no_unwrap_scope = is_library_src
            && (p.starts_with("crates/core/src/")
                || p.starts_with("crates/serve/src/")
                || p.starts_with("crates/store/src/"))
            && !p.ends_with("testsupport.rs");
        let sim_time_scope = is_library_src
            && (p.starts_with("crates/core/")
                || p.starts_with("crates/serve/")
                || p.starts_with("crates/store/")
                || p.starts_with("crates/sketch/")
                || p.starts_with("crates/tpch/")
                || p.starts_with("crates/mapreduce/")
                || p.starts_with("src/"));
        let thread_allowlisted = is_shim
            || p == "crates/store/src/pool.rs"
            || p == "crates/store/src/parallel.rs"
            || p.starts_with("crates/mapreduce/");
        FileScope {
            is_library_src,
            no_unwrap_scope,
            sim_time_scope,
            thread_allowlisted,
            is_shim,
        }
    }
}

/// Runs every rule over one preprocessed file. Suppressions are applied by
/// the caller ([`super::scan_sources`]), not here.
pub fn check_file(file: &StrippedFile) -> Vec<Finding> {
    let scope = FileScope::of(&file.rel_path);
    let flat = file.flat_code();
    let mut findings = Vec::new();
    let mut push = |rule: &'static str, line: usize, message: String| {
        findings.push(Finding {
            rule,
            path: file.rel_path.clone(),
            line,
            message,
        });
    };
    let is_test_line = |line: usize| file.lines[line - 1].in_test;

    // safety-comment: every `unsafe` keyword needs a SAFETY rationale in
    // the contiguous comment block directly above (or on its own line).
    for at in word_occurrences(&flat, "unsafe") {
        let line = file.line_of_offset(at);
        let mut ok = file.lines[line - 1].comment.contains("SAFETY:");
        if !ok {
            let mut l = line - 1; // 0-based index of the line above
            while l > 0 {
                let view = &file.lines[l - 1];
                let has_comment = !view.comment.trim().is_empty();
                let has_code = !view.code.trim().is_empty();
                if view.comment.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                if has_code || !has_comment {
                    break; // the comment block above ended
                }
                l -= 1;
            }
        }
        if !ok {
            push(
                "safety-comment",
                line,
                "`unsafe` without a `// SAFETY:` comment explaining why the invariants hold"
                    .to_string(),
            );
        }
    }

    // total-cmp: partial_cmp(..) chained into unwrap/expect.
    for at in word_occurrences(&flat, "partial_cmp") {
        let after = skip_ws(&flat, at + "partial_cmp".len());
        if !flat[after..].starts_with('(') {
            continue; // a definition or a bare path, not a call
        }
        let Some(close) = skip_parens(&flat, after) else {
            continue;
        };
        let chained_unwrap = match_dot_word(&flat, close, "unwrap").is_some()
            || match_dot_word(&flat, close, "expect").is_some();
        if chained_unwrap {
            push(
                "total-cmp",
                file.line_of_offset(at),
                "`partial_cmp(..).unwrap()` is NaN-unsafe — use `f64::total_cmp` for score ordering".to_string(),
            );
        }
    }

    // no-unwrap: .unwrap()/.expect( in library paths, with the two exempt
    // idioms (lock-poison propagation, checked narrowing).
    if scope.no_unwrap_scope {
        for word in ["unwrap", "expect"] {
            for at in word_occurrences(&flat, word) {
                let line = file.line_of_offset(at);
                if is_test_line(line) {
                    continue;
                }
                // Must be a method call `.word(`; skip definitions and
                // free fns like `unwrap_or`.
                let before = flat[..at].trim_end();
                if !before.ends_with('.') {
                    continue;
                }
                let after = skip_ws(&flat, at + word.len());
                if !flat[after..].starts_with('(') {
                    continue;
                }
                if word == "expect" {
                    if let Some(recv) = call_ident_before(&flat, before.len() - 1) {
                        // Poison propagation (lock/wait) and checked
                        // narrowing (try_from/try_into) — see RULES.
                        if matches!(
                            recv.as_str(),
                            "lock" | "wait" | "wait_timeout" | "try_from" | "try_into"
                        ) {
                            continue;
                        }
                    }
                }
                push(
                    "no-unwrap",
                    line,
                    format!(
                        "`.{word}()` in a library path — return a typed error (RankJoinError/ServeError) or justify with `rjlint: allow(no-unwrap)`"
                    ),
                );
            }
        }
    }

    // thread-discipline: raw thread creation outside the execution core.
    if scope.is_library_src && !scope.thread_allowlisted {
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            let tail = pat.split("::").nth(1).unwrap_or(pat);
            for at in word_occurrences(&flat, tail) {
                if !flat[..at].ends_with("thread::") {
                    continue;
                }
                let line = file.line_of_offset(at);
                if is_test_line(line) {
                    continue;
                }
                push(
                    "thread-discipline",
                    line,
                    format!(
                        "`{pat}` outside the pool/parallel/mapreduce allowlist — submit to `rj_store::pool::WorkStealingPool` instead"
                    ),
                );
            }
        }
    }

    // sim-time: host clocks in simulated-metrics crates.
    if scope.sim_time_scope {
        for pat in ["Instant::now", "SystemTime"] {
            let head = pat.split("::").next().unwrap_or(pat);
            for at in word_occurrences(&flat, head) {
                if pat.contains("::") && !flat[at..].starts_with(pat) {
                    continue;
                }
                let line = file.line_of_offset(at);
                if is_test_line(line) {
                    continue;
                }
                push(
                    "sim-time",
                    line,
                    format!(
                        "`{pat}` in a simulated-metrics path — modelled time comes from the cost model, never the host clock"
                    ),
                );
            }
        }
    }

    findings
}
