//! Lexical preprocessing for the lint pass: split a Rust source file into
//! a *code view* and a *comment view*, and mark `#[cfg(test)]`-gated
//! regions.
//!
//! rjlint deliberately does not parse Rust (the workspace builds offline;
//! no `syn`). Instead every rule runs over a line/token representation
//! produced here:
//!
//! * **code view** — the original text with the *contents* of string
//!   literals, char literals, and comments blanked to spaces (delimiters
//!   kept, so token positions and brace counts survive). Rules match
//!   against this, which is why `"partial_cmp"` inside a string or a doc
//!   example never trips a rule.
//! * **comment view** — the inverse: only comment text survives. The
//!   `// SAFETY:` rule and `// rjlint: allow(...)` suppressions are read
//!   from here.
//! * **test map** — one bool per line: whether the line sits inside an
//!   item gated by a `#[cfg(...)]` attribute mentioning `test`
//!   (`#[cfg(test)]`, `#[cfg(all(test, rj_check))]`, …). Tracked by brace
//!   depth: the attribute latches onto the next `{ … }` block unless a
//!   `;` ends the item first.

/// One source line, split into its two views.
#[derive(Debug, Clone)]
pub struct LineView {
    /// Code with comment/string/char contents blanked to spaces.
    pub code: String,
    /// Comment text only (everything else blanked).
    pub comment: String,
    /// Inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A preprocessed source file.
#[derive(Debug)]
pub struct StrippedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    pub lines: Vec<LineView>,
}

impl StrippedFile {
    /// The whole code view flattened into one string (newlines kept), for
    /// rules that match token chains spanning lines. Byte offsets in the
    /// result map back to lines via [`StrippedFile::line_of_offset`].
    pub fn flat_code(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(&l.code);
            out.push('\n');
        }
        out
    }

    /// 1-based line number containing byte `offset` of
    /// [`StrippedFile::flat_code`]'s output.
    pub fn line_of_offset(&self, offset: usize) -> usize {
        let mut consumed = 0;
        for (i, l) in self.lines.iter().enumerate() {
            consumed += l.code.len() + 1;
            if offset < consumed {
                return i + 1;
            }
        }
        self.lines.len().max(1)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Runs the lexer and the `#[cfg(test)]` region tracker over `src`.
pub fn strip(rel_path: &str, src: &str) -> StrippedFile {
    let (code_text, comment_text) = split_views(src);
    let code_lines: Vec<&str> = code_text.split('\n').collect();
    let comment_lines: Vec<&str> = comment_text.split('\n').collect();
    let test_map = test_regions(&code_lines);
    let lines = code_lines
        .iter()
        .zip(comment_lines.iter())
        .zip(test_map)
        .map(|((code, comment), in_test)| LineView {
            code: (*code).to_string(),
            comment: (*comment).to_string(),
            in_test,
        })
        .collect();
    StrippedFile {
        rel_path: rel_path.to_string(),
        lines,
    }
}

/// The character-level state machine separating code from comments, with
/// string/char contents blanked in both views.
fn split_views(src: &str) -> (String, String) {
    let bytes: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comment = String::with_capacity(src.len());
    let mut mode = Mode::Code;
    let mut i = 0;
    // Pushes to one view and a blank (or newline) to the other.
    macro_rules! emit {
        (code $c:expr) => {{
            code.push($c);
            comment.push(if $c == '\n' { '\n' } else { ' ' });
        }};
        (comment $c:expr) => {{
            comment.push($c);
            code.push(if $c == '\n' { '\n' } else { ' ' });
        }};
        (blank $c:expr) => {{
            let b = if $c == '\n' { '\n' } else { ' ' };
            code.push(b);
            comment.push(b);
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    emit!(comment c);
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    emit!(comment c);
                }
                '"' => {
                    // Detect raw-string openers ending at this quote:
                    // r"…", r#"…"#, br#"…"#, etc. The `r`/`b` chars were
                    // already emitted as code, which is fine.
                    let mut j = i;
                    let mut hashes = 0u32;
                    while j > 0 && bytes[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let rawish = j > 0
                        && (bytes[j - 1] == 'r'
                            || (bytes[j - 1] == 'b' && j > 1 && bytes[j - 2] == 'r'));
                    if rawish {
                        mode = Mode::RawStr(hashes);
                    } else {
                        mode = Mode::Str;
                    }
                    emit!(code c);
                }
                '\'' => {
                    // Lifetime (`'env`) vs char literal (`'a'`, `'\n'`).
                    // A char literal closes with a quote within a few
                    // chars; a lifetime never does.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2).copied() == Some('\''),
                        None => false,
                    };
                    if is_char {
                        mode = Mode::Char;
                    }
                    emit!(code c);
                }
                _ => emit!(code c),
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    emit!(blank c);
                } else {
                    emit!(comment c);
                }
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    emit!(comment c);
                    emit!(comment '/');
                    i += 2;
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                }
                emit!(comment c);
            }
            Mode::Str => match c {
                '\\' => {
                    emit!(blank c);
                    if let Some(n) = next {
                        emit!(blank n);
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    mode = Mode::Code;
                    emit!(code c);
                }
                _ => emit!(blank c),
            },
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if bytes.get(i + 1 + h).copied() != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        emit!(code c);
                        for _ in 0..hashes {
                            emit!(code '#');
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                        continue;
                    }
                }
                emit!(blank c);
            }
            Mode::Char => match c {
                '\\' => {
                    emit!(blank c);
                    if let Some(n) = next {
                        emit!(blank n);
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    mode = Mode::Code;
                    emit!(code c);
                }
                _ => emit!(blank c),
            },
        }
        i += 1;
    }
    (code, comment)
}

/// Marks lines gated behind `#[cfg(… test …)]`. An attribute latches onto
/// the next `{` (the gated item's block) and the region runs to the
/// matching `}`; a `;` before any `{` cancels it (e.g. a gated `use`).
/// `#[cfg(not(test))]` does not gate.
fn test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut out = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Depth *outside* the innermost active test region; None = not in one.
    let mut region_depth: Option<i64> = None;
    for (idx, line) in code_lines.iter().enumerate() {
        if region_depth.is_none() && !pending_attr {
            if let Some(attr) = cfg_attr_of(line) {
                if attr.contains("test") && !attr.contains("not(test") {
                    pending_attr = true;
                }
            }
        }
        if region_depth.is_some() {
            out[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        pending_attr = false;
                        region_depth = Some(depth);
                        out[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_depth == Some(depth) {
                        region_depth = None;
                    }
                }
                ';' if pending_attr && region_depth.is_none() => {
                    pending_attr = false;
                }
                _ => {}
            }
        }
        if pending_attr {
            out[idx] = true; // the attribute line itself
        }
    }
    out
}

/// The inside of a `#[cfg(...)]` on this line, whitespace removed.
fn cfg_attr_of(line: &str) -> Option<String> {
    let start = line.find("#[cfg(")?;
    let rest = &line[start + "#[cfg(".len()..];
    let end = rest.find(")]").unwrap_or(rest.len());
    Some(rest[..end].chars().filter(|c| !c.is_whitespace()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_from_code() {
        let f = strip("x.rs", "let s = \"unsafe .unwrap()\"; // .unwrap()\n");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap()"));
        assert!(f.lines[0].code.contains("let s"));
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "let r = r#\"has \"quotes\" and .unwrap()\"#;\nfn f<'env>(c: char) { let x = '\\''; let y = 'a'; }\n";
        let f = strip("x.rs", src);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("'env"));
        assert!(!f.lines[1].code.contains("\\'"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\n.unwrap()\n*/ code\n";
        let f = strip("x.rs", src);
        assert!(f.lines[0].code.contains('a') && f.lines[0].code.contains('b'));
        assert!(!f.lines[2].code.contains("unwrap"));
        assert!(f.lines[2].comment.contains("unwrap"));
        assert!(f.lines[3].code.contains("code"));
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_block_only() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let f = strip("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(&flags[..6], &[false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_and_gated_use_do_not_open_regions() {
        let src =
            "#[cfg(not(test))]\nmod prod { fn f() {} }\n#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let f = strip("x.rs", src);
        assert!(!f.lines[1].in_test, "not(test) must not gate");
        assert!(!f.lines[4].in_test, "`;` cancels a pending attr");
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let src = "#[cfg(all(test, rj_check))]\nmod model { fn m() {} }\n";
        let f = strip("x.rs", src);
        assert!(f.lines[1].in_test);
    }
}
