//! rjlint — the repo-specific source lint pass.
//!
//! Dependency-free (no `syn`, no registry): a lexical scanner
//! ([`strip`]) feeds token-level rules ([`rules`]) over every `.rs` file
//! in the workspace. Violations can be suppressed inline with
//!
//! ```text
//! // rjlint: allow(<rule-id>) — <justification>
//! ```
//!
//! on the offending line or as a full-line comment directly above it. A
//! suppression **must** carry a justification (at least
//! [`MIN_JUSTIFICATION`] characters after the closing paren); a bare
//! `allow(...)` or one naming an unknown rule is itself a finding
//! (`suppression-contract`), so the escape hatch stays auditable.
//!
//! Entry points: [`scan_workspace`] (walk + scan + suppress), the
//! [`Report`] it returns, and [`Report::to_json`] for the CI artifact.

pub mod rules;
pub mod strip;

use rules::{check_file, known_rule, Finding, RULES};
use std::path::{Path, PathBuf};

/// Minimum justification length (chars, after trimming separators) for a
/// suppression to count as justified.
pub const MIN_JUSTIFICATION: usize = 8;

/// One parsed `rjlint: allow(...)` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub path: String,
    /// Line the comment sits on (1-based).
    pub line: usize,
    /// Line(s) it applies to: its own line plus, for a full-line comment,
    /// the next line carrying code.
    pub target_line: usize,
    pub justification: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings (suppressed ones removed), sorted by path/line.
    pub findings: Vec<Finding>,
    /// Suppressions that matched a finding, for the audit trail.
    pub suppressions_used: Vec<Suppression>,
    pub files_scanned: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable report for the CI artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
        }
        s.push_str("\n  ],\n  \"suppressions_used\": [");
        for (i, sup) in self.suppressions_used.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"justification\": {}}}",
                json_str(&sup.rule),
                json_str(&sup.path),
                sup.line,
                json_str(&sup.justification)
            ));
        }
        s.push_str(&format!(
            "\n  ],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.clean()
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "artifacts",
    "bench-artifacts",
    ".claude",
    ".github",
];

/// Recursively collects every `.rs` file under `root`, sorted for
/// deterministic reports.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans one already-loaded source text (the fixture-test entry point).
pub fn scan_source(rel_path: &str, src: &str) -> Report {
    scan_sources(&[(rel_path.to_string(), src.to_string())])
}

/// Scans a set of (relative path, source) pairs and applies suppressions.
pub fn scan_sources(sources: &[(String, String)]) -> Report {
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    for (rel, src) in sources {
        let stripped = strip::strip(rel, src);
        let mut findings = check_file(&stripped);
        let suppressions = parse_suppressions(&stripped, &mut findings);
        findings.retain(|f| {
            let matched = suppressions
                .iter()
                .find(|s| s.rule == f.rule && (s.target_line == f.line || s.line == f.line));
            if let Some(s) = matched {
                report.suppressions_used.push(s.clone());
                false
            } else {
                true
            }
        });
        report.findings.extend(findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
}

/// Walks the workspace at `root` and lints every `.rs` file.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(scan_sources(&sources))
}

/// Extracts every `rjlint: allow(...)` comment; malformed ones (unknown
/// rule, missing justification) are appended to `findings` as
/// `suppression-contract` violations and do not suppress anything.
fn parse_suppressions(file: &strip::StrippedFile, findings: &mut Vec<Finding>) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, view) in file.lines.iter().enumerate() {
        let line_no = idx + 1;
        let comment = &view.comment;
        let Some(at) = comment.find("rjlint:") else {
            continue;
        };
        // Doc comments (`///`, `//!`) document the suppression syntax;
        // only plain `//` comments act as suppressions. The first `//` on
        // the line is the comment opener (later ones are comment text).
        if let Some(o) = comment[..at].find("//") {
            let opener_tail = &comment[o + 2..];
            if opener_tail.starts_with('/') || opener_tail.starts_with('!') {
                continue;
            }
        }
        let rest = comment[at + "rjlint:".len()..].trim_start();
        let mut bad = |msg: String| {
            findings.push(Finding {
                rule: "suppression-contract",
                path: file.rel_path.clone(),
                line: line_no,
                message: msg,
            });
        };
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad(
                "malformed rjlint comment — expected `rjlint: allow(<rule>) — justification`"
                    .into(),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(
                "unclosed `rjlint: allow(` — expected `rjlint: allow(<rule>) — justification`"
                    .into(),
            );
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rule(&rule) {
            bad(format!(
                "`rjlint: allow({rule})` names an unknown rule — known rules: {}",
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            ));
            continue;
        }
        let justification = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '.'])
            .trim()
            .to_string();
        if justification.chars().count() < MIN_JUSTIFICATION {
            bad(format!(
                "`rjlint: allow({rule})` without a justification — say *why* the rule does not apply here"
            ));
            continue;
        }
        // A full-line comment applies to the next line carrying code;
        // a trailing comment applies to its own line.
        let own_line_has_code = !view.code.trim().is_empty();
        let target_line = if own_line_has_code {
            line_no
        } else {
            file.lines[idx + 1..]
                .iter()
                .position(|l| !l.code.trim().is_empty())
                .map(|off| line_no + 1 + off)
                .unwrap_or(line_no)
        };
        out.push(Suppression {
            rule,
            path: file.rel_path.clone(),
            line: line_no,
            target_line,
            justification,
        });
    }
    out
}

/// Finds the workspace root by walking up from `start` until a directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
