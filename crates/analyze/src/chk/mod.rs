//! rj_check — a deterministic interleaving explorer for small concurrent
//! protocols, in the spirit of `loom` and CHESS.
//!
//! A *model* is a closure that spawns threads via [`thread::spawn`] and
//! synchronizes through the shim primitives in [`sync`]
//! (`Mutex`/`Condvar`/`Atomic*`). Only one model thread runs at a time:
//! every shim operation is a *scheduling point* where the explorer decides
//! which thread performs the next operation. [`explore`] re-runs the model
//! under depth-first search over those decisions until every interleaving
//! (within bounds) has been executed, so an assertion that holds after
//! exploration holds on **every** schedule — and a failing schedule is
//! reported as a replayable decision vector ([`replay`]).
//!
//! **Bounded preemptions.** Context switches away from a *blocked or
//! finished* thread are free; switches away from a still-runnable thread
//! are *preemptions*, and each schedule may contain at most
//! [`Config::max_preemptions`] of them (CHESS-style context bounding —
//! most concurrency bugs, including both historical pool bugs this module
//! exists to catch, need only one or two preemptions).
//!
//! **Fair scheduling.** Recheck loops (the pool's claim-recheck, say) are
//! unbounded only under an unfair scheduler. After
//! [`Config::fair_yield_after`] consecutive scheduling points on one
//! thread while a sibling is runnable, the explorer forces a free switch
//! away and prunes the keep-spinning continuation — the standard
//! fair-scheduler assumption of CHESS-style checkers.
//!
//! **Timeouts and deadlock.** `wait_timeout` durations are ignored; a
//! timed waiter is woken only when no thread is runnable (the timeout
//! cannot fire earlier in any schedule the protocol's correctness may
//! depend on — correctness must never depend on timing). If no thread is
//! runnable and no timed waiter exists, the schedule is reported as a
//! deadlock.
//!
//! **Scope.** This is an interleaving explorer, not a weak-memory model:
//! execution is sequentially consistent and `Ordering` arguments are
//! recorded but not weakened. Model code must be deterministic given the
//! schedule (no host time, no randomness) and must synchronize only
//! through the shims; a panic *caught inside* the model (e.g. the pool's
//! per-task `catch_unwind`) is not modelled.

pub mod sync;
pub mod thread;

use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum preemptive context switches per schedule (CHESS bound).
    pub max_preemptions: usize,
    /// Hard cap on explored schedules; hitting it yields
    /// `Pass { exhausted: false }`.
    pub max_schedules: usize,
    /// Hard cap on scheduling points in one execution; exceeding it fails
    /// the schedule (livelock suspicion).
    pub max_steps: usize,
    /// Fair-yield bound: after this many *consecutive* scheduling points
    /// on one thread while a sibling is runnable, the scheduler forces a
    /// free (non-preemption-charged) switch away and prunes the
    /// keep-running continuation. Real protocols contain recheck loops
    /// that are unbounded only under an unfair scheduler (e.g. the pool's
    /// claim-recheck while an inject is suspended mid-flight); this is
    /// the standard fair-scheduler assumption that keeps them explorable.
    /// Bugs requiring a longer uninterrupted run of a single thread are
    /// outside the bound.
    pub fair_yield_after: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_preemptions: 2,
            max_schedules: 200_000,
            max_steps: 20_000,
            fair_yield_after: 100,
        }
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub enum CheckOutcome {
    /// Every explored schedule ran to completion without a panic.
    Pass {
        /// Number of distinct schedules executed.
        schedules: usize,
        /// Whether the bounded state space was fully explored (false only
        /// when `max_schedules` stopped the search).
        exhausted: bool,
    },
    /// A schedule failed (assertion/panic, deadlock, or livelock bound).
    Fail {
        /// Why (panic message, "deadlock: …", …).
        message: String,
        /// The decision vector reproducing the failure: the thread id
        /// chosen at each scheduling point. Feed to [`replay`].
        schedule: Vec<usize>,
        /// Schedules executed up to and including the failing one.
        schedules: usize,
    },
}

impl CheckOutcome {
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckOutcome::Pass { .. })
    }

    /// The failing decision vector, if any.
    pub fn failing_schedule(&self) -> Option<&[usize]> {
        match self {
            CheckOutcome::Fail { schedule, .. } => Some(schedule),
            CheckOutcome::Pass { .. } => None,
        }
    }
}

/// Explores `f` under the default [`Config`]; panics with the failing
/// schedule if any interleaving fails. Use in tests as the model-checking
/// analogue of `#[test]` body assertions.
pub fn explore<F: Fn() + Send + Sync + 'static>(f: F) {
    match explore_with(Config::default(), f) {
        CheckOutcome::Pass { .. } => {}
        CheckOutcome::Fail {
            message, schedule, ..
        } => panic!("rj_check: model failed\n  failure: {message}\n  schedule: {schedule:?}"),
    }
}

/// Explores `f` under `config` and returns the outcome instead of
/// panicking — the entry point for tests that *expect* a failing schedule
/// (regression models of historical bugs).
pub fn explore_with<F: Fn() + Send + Sync + 'static>(config: Config, f: F) -> CheckOutcome {
    install_panic_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut path: Vec<Branch> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        let (new_path, failure) =
            run_once(Arc::clone(&f), std::mem::take(&mut path), config, false);
        path = new_path;
        if let Some(failure) = failure {
            return CheckOutcome::Fail {
                message: failure.message,
                schedule: failure.decisions,
                schedules,
            };
        }
        // Depth-first backtrack to the deepest branch with an untried
        // alternative.
        loop {
            match path.last_mut() {
                None => {
                    return CheckOutcome::Pass {
                        schedules,
                        exhausted: true,
                    }
                }
                Some(b) => {
                    b.next += 1;
                    if b.next < b.candidates.len() {
                        break;
                    }
                    path.pop();
                }
            }
        }
        if schedules >= config.max_schedules {
            return CheckOutcome::Pass {
                schedules,
                exhausted: false,
            };
        }
    }
}

/// Runs `f` once under a pinned decision vector (as reported by
/// [`CheckOutcome::Fail`]); decisions past the vector's end follow the
/// default non-preemptive policy. Returns the single-schedule outcome.
pub fn replay<F: Fn() + Send + Sync + 'static>(schedule: &[usize], f: F) -> CheckOutcome {
    install_panic_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let path = schedule
        .iter()
        .map(|&tid| Branch {
            candidates: vec![tid],
            next: 0,
        })
        .collect();
    let (_, failure) = run_once(f, path, Config::default(), true);
    match failure {
        Some(failure) => CheckOutcome::Fail {
            message: failure.message,
            schedule: failure.decisions,
            schedules: 1,
        },
        None => CheckOutcome::Pass {
            schedules: 1,
            exhausted: false,
        },
    }
}

/// Internal marker panic used to unwind parked model threads when a run
/// aborts; suppressed by the panic hook and never reported.
pub(crate) struct AbortRun;

fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortRun>().is_some() {
                return;
            }
            // Real model-thread panics are captured into the CheckOutcome;
            // printing each one would spam exploration logs.
            if std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("rj-model-"))
            {
                return;
            }
            prev(info);
        }));
    });
}

/// One scheduling point along the DFS path: the candidate threads that
/// were eligible (preemption bound already applied) and which candidate
/// the current iteration takes.
pub(crate) struct Branch {
    candidates: Vec<usize>,
    next: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    WaitingCv {
        cv: usize,
        mutex: usize,
        timed: bool,
    },
    BlockedJoin(usize),
    Finished,
}

pub(crate) struct Failure {
    message: String,
    decisions: Vec<usize>,
}

pub(crate) struct RunInner {
    state: Vec<ThreadState>,
    /// Thread allowed to run; `usize::MAX` when the run is over.
    current: usize,
    step: usize,
    path: Vec<Branch>,
    /// `path` entries that existed when the run started are replayed;
    /// entries beyond are fresh territory.
    replay_len: usize,
    decisions: Vec<usize>,
    preemptions: usize,
    /// Consecutive scheduling points the current thread has been chosen
    /// at; drives the fair-yield bound.
    consecutive: usize,
    mutex_owner: Vec<Option<usize>>,
    n_condvars: usize,
    woke_by_timeout: Vec<bool>,
    aborted: Option<String>,
    finished: usize,
    spawned: usize,
    config: Config,
    strict_replay: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// One model execution's shared scheduler state.
pub(crate) struct Run {
    pub(crate) id: u64,
    inner: StdMutex<RunInner>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Run>, usize)>> = const { RefCell::new(None) };
}

/// The (run, thread-id) of the calling model thread, if inside a model.
pub(crate) fn current() -> Option<(Arc<Run>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Run>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    path: Vec<Branch>,
    config: Config,
    strict_replay: bool,
) -> (Vec<Branch>, Option<Failure>) {
    static NEXT_RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let replay_len = path.len();
    let run = Arc::new(Run {
        id: NEXT_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        inner: StdMutex::new(RunInner {
            state: vec![ThreadState::Runnable],
            current: 0,
            step: 0,
            path,
            replay_len,
            decisions: Vec::new(),
            preemptions: 0,
            consecutive: 0,
            mutex_owner: Vec::new(),
            n_condvars: 0,
            woke_by_timeout: vec![false],
            aborted: None,
            finished: 0,
            spawned: 1,
            config,
            strict_replay,
            handles: Vec::new(),
        }),
        cv: StdCondvar::new(),
    });
    Run::spawn_model_thread(&run, 0, move || f());
    // Wait for every model thread (including ones spawned mid-run) to
    // finish — abort paths mark threads finished too, so this converges
    // for failing schedules as well.
    {
        let mut g = run.lock();
        while g.finished < g.spawned {
            g = run.cv.wait(g).expect("rj_check scheduler lock");
        }
    }
    // Join the real threads so nothing leaks into the next execution.
    loop {
        let handles: Vec<_> = run.lock().handles.drain(..).collect();
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let mut g = run.lock();
    let failure = g.aborted.take().map(|message| Failure {
        message,
        decisions: std::mem::take(&mut g.decisions),
    });
    (std::mem::take(&mut g.path), failure)
}

impl Run {
    pub(crate) fn lock(&self) -> StdMutexGuard<'_, RunInner> {
        self.inner.lock().expect("rj_check scheduler lock")
    }

    fn notify(&self) {
        self.cv.notify_all();
    }

    /// Registers a new mutex for this run.
    pub(crate) fn alloc_mutex(&self) -> usize {
        let mut g = self.lock();
        g.mutex_owner.push(None);
        g.mutex_owner.len() - 1
    }

    pub(crate) fn alloc_condvar(&self) -> usize {
        let mut g = self.lock();
        g.n_condvars += 1;
        g.n_condvars - 1
    }

    /// Aborts the run with `message`; every parked thread unwinds via
    /// [`AbortRun`] on its next wakeup.
    fn abort_locked(&self, g: &mut RunInner, message: String) {
        if g.aborted.is_none() {
            g.aborted = Some(message);
        }
        self.notify();
    }

    /// Panics with [`AbortRun`] if the run is aborted. Call with the lock
    /// held (it is released by the unwind through the guard in callers —
    /// here we take no guard, callers drop theirs first).
    fn bail_if_aborted(g: &RunInner) {
        if g.aborted.is_some() {
            std::panic::panic_any(AbortRun);
        }
    }

    /// The scheduling decision: picks which thread performs the next
    /// operation, recording/replaying the DFS branch. Returns without
    /// switching if the current thread is chosen again.
    fn advance_locked(&self, g: &mut RunInner) {
        loop {
            let runnable: Vec<usize> = g
                .state
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == ThreadState::Runnable)
                .map(|(t, _)| t)
                .collect();
            if !runnable.is_empty() {
                if let Some(chosen) = self.choose_locked(g, &runnable) {
                    g.current = chosen;
                }
                self.notify();
                return;
            }
            if g.finished == g.spawned {
                g.current = usize::MAX;
                self.notify();
                return;
            }
            // Deliver timeouts only when nothing else can run.
            let timed: Vec<(usize, usize)> = g
                .state
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    ThreadState::WaitingCv {
                        mutex, timed: true, ..
                    } => Some((t, *mutex)),
                    _ => None,
                })
                .collect();
            if !timed.is_empty() {
                for (t, mutex) in timed {
                    g.woke_by_timeout[t] = true;
                    g.state[t] = if g.mutex_owner[mutex].is_some() {
                        ThreadState::BlockedMutex(mutex)
                    } else {
                        ThreadState::Runnable
                    };
                }
                continue;
            }
            let stuck: Vec<String> = g
                .state
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != ThreadState::Finished)
                .map(|(t, s)| format!("thread {t}: {s:?}"))
                .collect();
            self.abort_locked(
                g,
                format!("deadlock: no runnable thread [{}]", stuck.join(", ")),
            );
            return;
        }
    }

    fn choose_locked(&self, g: &mut RunInner, runnable: &[usize]) -> Option<usize> {
        let from = g.current;
        let pos = g.step;
        g.step += 1;
        if g.step > g.config.max_steps {
            self.abort_locked(
                g,
                format!(
                    "livelock: no completion within {} scheduling points",
                    g.config.max_steps
                ),
            );
            return None;
        }
        let from_runnable = runnable.contains(&from);
        // Fair-yield (see `Config::fair_yield_after`): a thread that has
        // held the baton this long while a sibling is runnable is treated
        // as spinning — the switch away is forced (free) and the
        // keep-spinning continuation is not offered as a candidate.
        let spinning =
            from_runnable && runnable.len() > 1 && g.consecutive >= g.config.fair_yield_after;
        let chosen = if pos < g.path.len() {
            let b = &g.path[pos];
            let c = b.candidates[b.next];
            if !runnable.contains(&c) {
                let msg = if g.strict_replay && pos < g.replay_len {
                    format!("replay diverged: thread {c} not runnable at step {pos}")
                } else {
                    format!(
                        "nondeterministic model: replayed thread {c} not runnable at step {pos} — \
                         model code must depend only on the schedule"
                    )
                };
                self.abort_locked(g, msg);
                return None;
            }
            c
        } else {
            // Fresh territory: default is non-preemptive (stay on the
            // current thread when it can continue), alternatives that
            // preempt consume budget; a forced fair-yield switches the
            // default away instead.
            let budget = g.config.max_preemptions.saturating_sub(g.preemptions);
            let default = if from_runnable && !spinning {
                from
            } else {
                *runnable
                    .iter()
                    .find(|&&t| t != from)
                    .unwrap_or(&runnable[0])
            };
            let mut candidates = vec![default];
            for &t in runnable {
                if t == default || (spinning && t == from) {
                    continue;
                }
                if !from_runnable || spinning || budget > 0 {
                    candidates.push(t);
                }
            }
            g.path.push(Branch {
                candidates,
                next: 0,
            });
            default
        };
        if from_runnable && !spinning && chosen != from {
            g.preemptions += 1;
        }
        g.consecutive = if chosen == from { g.consecutive + 1 } else { 0 };
        g.decisions.push(chosen);
        Some(chosen)
    }

    /// Parks the calling thread until the scheduler hands it the baton.
    fn park_until_scheduled<'a>(
        &self,
        mut g: StdMutexGuard<'a, RunInner>,
        me: usize,
    ) -> StdMutexGuard<'a, RunInner> {
        while g.current != me && g.aborted.is_none() {
            g = self.cv.wait(g).expect("rj_check scheduler lock");
        }
        if g.aborted.is_some() {
            drop(g);
            std::panic::panic_any(AbortRun);
        }
        g
    }

    /// A plain scheduling point: the calling thread stays runnable and may
    /// or may not keep the baton.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut g = self.lock();
        Self::bail_if_aborted(&g);
        self.advance_locked(&mut g);
        let g = self.park_until_scheduled(g, me);
        drop(g);
    }

    /// Scheduler-side mutex acquire (the real lock is taken by the caller
    /// afterwards, which cannot contend — only one thread runs at a time).
    pub(crate) fn acquire(&self, me: usize, mutex: usize) {
        self.yield_point(me);
        let mut g = self.lock();
        loop {
            Self::bail_if_aborted(&g);
            if g.mutex_owner[mutex].is_none() {
                g.mutex_owner[mutex] = Some(me);
                return;
            }
            g.state[me] = ThreadState::BlockedMutex(mutex);
            self.advance_locked(&mut g);
            g = self.park_until_scheduled(g, me);
        }
    }

    /// Scheduler-side mutex release. Bookkeeping always happens; the
    /// scheduling point is skipped during an unwind so guard drops in
    /// panicking code cannot park a dying thread.
    pub(crate) fn release(&self, me: usize, mutex: usize) {
        let mut g = self.lock();
        debug_assert_eq!(g.mutex_owner[mutex], Some(me), "release of unowned mutex");
        g.mutex_owner[mutex] = None;
        Self::wake_mutex_blocked(&mut g, mutex);
        if g.aborted.is_some() || std::thread::panicking() {
            self.notify();
            return;
        }
        self.advance_locked(&mut g);
        let g = self.park_until_scheduled(g, me);
        drop(g);
    }

    fn wake_mutex_blocked(g: &mut RunInner, mutex: usize) {
        for s in g.state.iter_mut() {
            if *s == ThreadState::BlockedMutex(mutex) {
                *s = ThreadState::Runnable;
            }
        }
    }

    /// Condvar wait: atomically releases `mutex` and parks on `cv`; on
    /// return the thread has been woken (notify or — for timed waits —
    /// timeout delivery) and scheduled, but has NOT yet reacquired the
    /// mutex. Returns whether the wake was a timeout.
    pub(crate) fn cv_wait(&self, me: usize, cv: usize, mutex: usize, timed: bool) -> bool {
        let mut g = self.lock();
        Self::bail_if_aborted(&g);
        debug_assert_eq!(g.mutex_owner[mutex], Some(me), "cv wait without the lock");
        g.mutex_owner[mutex] = None;
        Self::wake_mutex_blocked(&mut g, mutex);
        g.woke_by_timeout[me] = false;
        g.state[me] = ThreadState::WaitingCv { cv, mutex, timed };
        self.advance_locked(&mut g);
        let g = self.park_until_scheduled(g, me);
        let timed_out = g.woke_by_timeout[me];
        drop(g);
        timed_out
    }

    /// Condvar notify: moves waiters to mutex contention. `all` wakes
    /// every waiter, otherwise the lowest thread id (deterministic stand-in
    /// for `notify_one`'s unspecified pick).
    pub(crate) fn cv_notify(&self, me: usize, cv: usize, all: bool) {
        self.yield_point(me);
        let mut g = self.lock();
        Self::bail_if_aborted(&g);
        let waiters: Vec<(usize, usize)> = g
            .state
            .iter()
            .enumerate()
            .filter_map(|(t, s)| match s {
                ThreadState::WaitingCv { cv: c, mutex, .. } if *c == cv => Some((t, *mutex)),
                _ => None,
            })
            .collect();
        for (t, mutex) in waiters {
            g.state[t] = if g.mutex_owner[mutex].is_some() {
                ThreadState::BlockedMutex(mutex)
            } else {
                ThreadState::Runnable
            };
            if !all {
                break;
            }
        }
        drop(g);
    }

    /// Blocks until thread `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.yield_point(me);
        let mut g = self.lock();
        loop {
            Self::bail_if_aborted(&g);
            if g.state[target] == ThreadState::Finished {
                return;
            }
            g.state[me] = ThreadState::BlockedJoin(target);
            self.advance_locked(&mut g);
            g = self.park_until_scheduled(g, me);
        }
    }

    /// Registers a new model thread and spawns its carrier. `entry` runs
    /// once the scheduler first picks the thread.
    pub(crate) fn spawn_model_thread<F: FnOnce() + Send + 'static>(
        self: &Arc<Run>,
        tid: usize,
        entry: F,
    ) {
        let run = Arc::clone(self);
        // rjlint: allow(thread-discipline) — the model checker's carrier
        // threads ARE the machinery that checks the pool; they never run
        // production work and exist only inside an exploration.
        let handle = std::thread::Builder::new()
            .name(format!("rj-model-{tid}"))
            .spawn(move || {
                set_current(Some((Arc::clone(&run), tid)));
                // The initial park sits INSIDE catch_unwind: if the run
                // aborts before this thread is ever scheduled, the AbortRun
                // unwind must still fall through to the Finished bookkeeping
                // below or the driver would wait forever.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    {
                        let g = run.lock();
                        let g = run.park_until_scheduled(g, tid);
                        drop(g);
                    }
                    entry()
                }));
                set_current(None);
                let mut g = run.lock();
                g.state[tid] = ThreadState::Finished;
                g.finished += 1;
                if let Err(payload) = result {
                    if payload.downcast_ref::<AbortRun>().is_none() && g.aborted.is_none() {
                        let message = panic_message(payload.as_ref());
                        g.aborted = Some(format!("thread {tid} panicked: {message}"));
                    }
                    run.notify();
                    return;
                }
                // Wake joiners and hand the baton on.
                for s in g.state.iter_mut() {
                    if *s == ThreadState::BlockedJoin(tid) {
                        *s = ThreadState::Runnable;
                    }
                }
                run.advance_locked(&mut g);
                drop(g);
            })
            .expect("spawning rj_check model thread");
        self.lock().handles.push(handle);
    }

    /// Registers a sibling thread id from inside the model (the
    /// `chk::thread::spawn` path). Returns the new tid.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock();
        let tid = g.spawned;
        g.spawned += 1;
        g.state.push(ThreadState::Runnable);
        g.woke_by_timeout.push(false);
        tid
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
