//! Model-aware `thread::spawn`/`join`.
//!
//! Inside a model run ([`crate::chk::explore`]) a spawn registers a new
//! model thread whose every shim operation is a scheduling point; outside
//! a run it degrades to a plain `std::thread::spawn`, so code written
//! against these shims still executes normally.

use super::{current, Run};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned (model or real) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        run: Arc<Run>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes and returns its value. If the
    /// target panicked the whole model run aborts (the failure is
    /// reported by the explorer), so unlike `std` there is no `Result`.
    pub fn join(self) -> T {
        match self.inner {
            Inner::Std(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
            Inner::Model { run, tid, result } => {
                let (_, me) = current().expect("joining a model thread outside its model run");
                run.join_thread(me, tid);
                result
                    .lock()
                    .expect("model result slot")
                    .take()
                    .expect("joined model thread left no result")
            }
        }
    }
}

/// Spawns a thread. Inside a model run the closure becomes a model
/// thread scheduled by the explorer; the spawn itself is a scheduling
/// point (child-first and parent-first orders are both explored).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current() {
        None => JoinHandle {
            // rjlint: allow(thread-discipline) — fallback outside a model
            // run; model code executed as a normal test still needs real
            // threads, and nothing here runs in production paths.
            inner: Inner::Std(std::thread::spawn(f)),
        },
        Some((run, me)) => {
            let tid = run.register_thread();
            let result = Arc::new(StdMutex::new(None));
            let slot = Arc::clone(&result);
            Run::spawn_model_thread(&run, tid, move || {
                let v = f();
                *slot.lock().expect("model result slot") = Some(v);
            });
            run.yield_point(me);
            JoinHandle {
                inner: Inner::Model { run, tid, result },
            }
        }
    }
}
