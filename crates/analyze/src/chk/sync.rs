//! Model-aware stand-ins for `std::sync` primitives.
//!
//! Inside a model run every operation is a scheduling point recorded and
//! explored by [`crate::chk::explore`]; outside a run each type degrades
//! to its `std` counterpart, so code compiled against the shims (e.g.
//! `rj_store::pool` under `--cfg rj_check`) still runs normally when it
//! is not being model-checked.
//!
//! Model identity is per-run: objects learn their scheduler id lazily on
//! first use and re-register when a new run begins, so models may build
//! their state inside the explored closure (the normal pattern) without
//! any registration ceremony.

use super::{current, Run};
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    PoisonError, TryLockError,
};
use std::time::Duration;

type Meta = StdMutex<Option<(u64, usize)>>;

fn model_id(meta: &Meta, run: &Arc<Run>, alloc: impl FnOnce() -> usize) -> usize {
    let mut m = meta.lock().expect("chk meta lock");
    match *m {
        Some((rid, id)) if rid == run.id => id,
        _ => {
            let id = alloc();
            *m = Some((run.id, id));
            id
        }
    }
}

/// A mutex whose lock/unlock are scheduling points inside a model run.
pub struct Mutex<T> {
    inner: StdMutex<T>,
    meta: Meta,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
            meta: StdMutex::new(None),
        }
    }

    fn mid(&self, run: &Arc<Run>) -> usize {
        model_id(&self.meta, run, || run.alloc_mutex())
    }

    /// Takes the real (uncontended, by scheduler construction) lock after
    /// the scheduler granted ownership.
    fn take_real(&self) -> StdMutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            // A prior aborted schedule may have poisoned the real lock
            // while unwinding; scheduler-side exclusivity still holds.
            Err(TryLockError::Poisoned(pe)) => pe.into_inner(),
            Err(TryLockError::WouldBlock) => {
                unreachable!("rj_check exclusivity violated: real lock contended")
            }
        }
    }

    /// Consumes the mutex and returns the value. Not a scheduling point:
    /// exclusive ownership means no other thread can observe it.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            Some((run, me)) => {
                let mid = self.mid(&run);
                run.acquire(me, mid);
                Ok(MutexGuard {
                    mutex: self,
                    std: Some(self.take_real()),
                    model: Some((run, me, mid)),
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    mutex: self,
                    std: Some(g),
                    model: None,
                }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    mutex: self,
                    std: Some(pe.into_inner()),
                    model: None,
                })),
            },
        }
    }
}

/// Guard for [`Mutex`]; dropping it is a scheduling point in a model.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    std: Option<StdMutexGuard<'a, T>>,
    model: Option<(Arc<Run>, usize, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the scheduler hands the baton on.
        drop(self.std.take());
        if let Some((run, me, mid)) = self.model.take() {
            run.release(me, mid);
        }
    }
}

/// Result of a [`Condvar::wait_timeout`]; inside a model "timed out"
/// means the scheduler delivered the timeout because no thread was
/// runnable (durations are ignored — correctness must not depend on
/// timing).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait/notify are scheduling points inside a
/// model run.
pub struct Condvar {
    inner: StdCondvar,
    meta: Meta,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: StdCondvar::new(),
            meta: StdMutex::new(None),
        }
    }

    fn cid(&self, run: &Arc<Run>) -> usize {
        model_id(&self.meta, run, || run.alloc_condvar())
    }

    fn wait_model<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (run, me, mid) = guard.model.take().expect("model cv wait on fallback guard");
        let mutex = guard.mutex;
        let cv = self.cid(&run);
        drop(guard.std.take()); // real release before the baton moves
        drop(guard); // defused: both fields taken
        let timed_out = run.cv_wait(me, cv, mid, timed);
        run.acquire(me, mid);
        (
            MutexGuard {
                mutex,
                std: Some(mutex.take_real()),
                model: Some((run, me, mid)),
            },
            WaitTimeoutResult { timed_out },
        )
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model.is_some() {
            return Ok(self.wait_model(guard, false).0);
        }
        let mutex = guard.mutex;
        let mut guard = guard;
        let std = guard.std.take().expect("guard already released");
        drop(guard);
        match self.inner.wait(std) {
            Ok(g) => Ok(MutexGuard {
                mutex,
                std: Some(g),
                model: None,
            }),
            Err(pe) => Err(PoisonError::new(MutexGuard {
                mutex,
                std: Some(pe.into_inner()),
                model: None,
            })),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model.is_some() {
            return Ok(self.wait_model(guard, true));
        }
        let mutex = guard.mutex;
        let mut guard = guard;
        let std = guard.std.take().expect("guard already released");
        drop(guard);
        match self.inner.wait_timeout(std, dur) {
            Ok((g, t)) => Ok((
                MutexGuard {
                    mutex,
                    std: Some(g),
                    model: None,
                },
                WaitTimeoutResult {
                    timed_out: t.timed_out(),
                },
            )),
            Err(pe) => {
                let (g, t) = pe.into_inner();
                Err(PoisonError::new((
                    MutexGuard {
                        mutex,
                        std: Some(g),
                        model: None,
                    },
                    WaitTimeoutResult {
                        timed_out: t.timed_out(),
                    },
                )))
            }
        }
    }

    pub fn notify_all(&self) {
        match current() {
            Some((run, me)) => {
                let cv = self.cid(&run);
                run.cv_notify(me, cv, true);
            }
            None => self.inner.notify_all(),
        }
    }

    /// In a model, wakes the lowest-id waiter (a deterministic stand-in
    /// for `notify_one`'s unspecified choice).
    pub fn notify_one(&self) {
        match current() {
            Some((run, me)) => {
                let cv = self.cid(&run);
                run.cv_notify(me, cv, false);
            }
            None => self.inner.notify_one(),
        }
    }
}

/// Model-aware atomics. Orderings are accepted for API compatibility and
/// passed to the underlying atomic; the *exploration* itself is
/// sequentially consistent (interleavings, not weak memory).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    fn yield_point() {
        if let Some((run, me)) = super::current() {
            run.yield_point(me);
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Model-aware drop-in for the `std` atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> $name {
                    $name {
                        inner: <$std>::new(v),
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    yield_point();
                    self.inner.store(v, order)
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $prim,
                    new: $prim,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.inner.compare_exchange(cur, new, ok, err)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicUsize {
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            if let Some((run, me)) = super::current() {
                run.yield_point(me);
            }
            self.inner.fetch_add(v, order)
        }

        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            if let Some((run, me)) = super::current() {
                run.yield_point(me);
            }
            self.inner.fetch_sub(v, order)
        }
    }
}
