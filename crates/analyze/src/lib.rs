//! `rj_analyze` — machine enforcement for the invariants the rank-join
//! execution core rests on.
//!
//! Two subsystems, both CI-gated and both dependency-free:
//!
//! * [`lint`] — **rjlint**, a source-level lint pass with repo-specific
//!   rules (SAFETY rationales on `unsafe`, `total_cmp`-only float
//!   ordering, typed errors instead of `unwrap()` in library paths, pool
//!   -only threading, host-clock-free simulated metrics) plus an audited
//!   inline suppression contract and a JSON report for CI. Run it with
//!   `cargo run -p rj_analyze --bin rjlint`.
//! * [`chk`] — **rj_check**, a loom-style deterministic interleaving
//!   explorer: shim `Mutex`/`Condvar`/`Atomic*` wrappers record every
//!   scheduling decision and a DFS with bounded preemptions explores the
//!   interleavings of small concurrent protocols. `rj_store`'s pool
//!   compiles against the shims under `--cfg rj_check` and model-tests
//!   its hot protocols (batch countdown/wake, the pending counter,
//!   priority draining, help-first join).

pub mod chk;
pub mod lint;
