//! The rjlint CLI — the blocking `analyze` CI gate.
//!
//! ```text
//! rjlint [--root DIR] [--json] [--out FILE] [--list-rules]
//! ```
//!
//! Walks the workspace (auto-discovered from the current directory unless
//! `--root` is given), runs every rule, and prints findings. Exit status:
//! 0 clean, 1 findings, 2 usage/IO error. `--json` prints the
//! machine-readable report to stdout; `--out FILE` additionally writes it
//! to `FILE` *even when findings fail the run*, so CI can upload the
//! artifact from a red gate.

use rj_analyze::lint::{self, rules::RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: rjlint [--root DIR] [--json] [--out FILE] [--list-rules]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(f) => out = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{:<22} {} [scope: {}]", r.id, r.summary, r.scope);
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| lint::find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("rjlint: no workspace root found (no Cargo.toml with [workspace] above cwd); pass --root");
            return ExitCode::from(2);
        }
    };
    let report = match lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rjlint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("rjlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        println!(
            "rjlint: {} file(s) scanned, {} finding(s), {} suppression(s) honoured",
            report.files_scanned,
            report.findings.len(),
            report.suppressions_used.len()
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
