//! Golomb/Rice coding of non-negative integers.
//!
//! The BFHM bucket blob compresses both its single-hash Bloom filter bitmap
//! (as gaps between consecutive set bits) and its counter table with Golomb
//! coding (paper §5.1, citing Golomb 1966). We implement the Rice special
//! case (divisor `M = 2^k`): quotient in unary, remainder in `k` bits. For
//! the near-geometric gap distributions produced by uniform hashing this is
//! within a fraction of a bit of full Golomb coding and considerably faster,
//! the "reasonable trade-off between compression ratio and processing costs"
//! the paper asks of the scheme.

/// A big-endian bit-level writer.
#[derive(Default, Debug)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.last_mut().expect("just ensured non-empty");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the `n` low bits of `value`, most-significant first.
    pub fn push_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends `q` one-bits followed by a terminating zero (unary code).
    pub fn push_unary(&mut self, q: u64) {
        for _ in 0..q {
            self.push_bit(true);
        }
        self.push_bit(false);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8
            - if self.used == 0 {
                0
            } else {
                (8 - self.used) as usize
            }
    }

    /// Finishes the stream, returning the padded byte buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A big-endian bit-level reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Error returned when a bit stream ends prematurely or is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "golomb codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self
            .buf
            .get(self.pos / 8)
            .ok_or(CodecError("unexpected end of bit stream"))?;
        let bit = byte >> (7 - (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits as a big-endian unsigned value.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Reads a unary-coded quotient (count of ones before the zero).
    pub fn read_unary(&mut self) -> Result<u64, CodecError> {
        let mut q = 0u64;
        while self.read_bit()? {
            q += 1;
            if q > (self.buf.len() as u64) * 8 {
                return Err(CodecError("runaway unary code"));
            }
        }
        Ok(q)
    }
}

/// Picks the Rice parameter `k` (divisor `2^k`) for values with the given
/// mean, following the classic `M ≈ 0.69 · mean` rule for geometric data.
pub fn optimal_rice_param(mean: f64) -> u8 {
    if !mean.is_finite() || mean <= 1.0 {
        return 0;
    }
    // Smallest k with 2^k >= 0.69 * mean.
    let target = 0.69 * mean;
    let mut k = 0u8;
    while k < 63 && f64::from(u32::MAX).min((1u64 << k) as f64) < target {
        k += 1;
    }
    k
}

/// Encodes `values` with Rice parameter `k` into `w`.
pub fn encode_values(w: &mut BitWriter, values: &[u64], k: u8) {
    for &v in values {
        w.push_unary(v >> k);
        w.push_bits(v, k);
    }
}

/// Decodes `count` Rice-coded values with parameter `k` from `r`.
pub fn decode_values(r: &mut BitReader<'_>, count: usize, k: u8) -> Result<Vec<u64>, CodecError> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let q = r.read_unary()?;
        let rem = r.read_bits(k)?;
        out.push((q << k) | rem);
    }
    Ok(out)
}

/// Compresses a sorted list of set-bit positions as first-order gaps.
///
/// Returns `(rice_k, bytes)`. Positions must be strictly increasing; the
/// first value is encoded as-is, subsequent values as `pos[i] - pos[i-1] - 1`
/// (gaps are ≥ 0).
pub fn encode_sorted_positions(positions: &[u64]) -> (u8, Vec<u8>) {
    let mut gaps = Vec::with_capacity(positions.len());
    let mut prev: Option<u64> = None;
    for &p in positions {
        match prev {
            None => gaps.push(p),
            Some(q) => {
                debug_assert!(p > q, "positions must be strictly increasing");
                gaps.push(p - q - 1);
            }
        }
        prev = Some(p);
    }
    let mean = if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().sum::<u64>() as f64 / gaps.len() as f64
    };
    let k = optimal_rice_param(mean);
    let mut w = BitWriter::new();
    encode_values(&mut w, &gaps, k);
    (k, w.finish())
}

/// Inverse of [`encode_sorted_positions`].
pub fn decode_sorted_positions(bytes: &[u8], count: usize, k: u8) -> Result<Vec<u64>, CodecError> {
    let mut r = BitReader::new(bytes);
    let gaps = decode_values(&mut r, count, k)?;
    let mut out = Vec::with_capacity(count);
    let mut acc = 0u64;
    for (i, g) in gaps.into_iter().enumerate() {
        acc = if i == 0 { g } else { acc + g + 1 };
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_unary(3);
        w.push_bits(0xdead_beef, 32);
        w.push_bit(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_unary().unwrap(), 3);
        assert_eq!(r.read_bits(32).unwrap(), 0xdead_beef);
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn reader_detects_truncation() {
        let mut w = BitWriter::new();
        w.push_bits(0xff, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert!(r.read_bits(8).is_err());
    }

    #[test]
    fn rice_values_roundtrip_all_params() {
        let values = [0u64, 1, 2, 7, 8, 100, 1023, 5000];
        for k in 0..=12u8 {
            let mut w = BitWriter::new();
            encode_values(&mut w, &values, k);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_values(&mut r, values.len(), k).unwrap(), values);
        }
    }

    #[test]
    fn positions_roundtrip() {
        let positions = [3u64, 4, 17, 64, 65, 1000, 1_000_000];
        let (k, bytes) = encode_sorted_positions(&positions);
        let got = decode_sorted_positions(&bytes, positions.len(), k).unwrap();
        assert_eq!(got, positions);
    }

    #[test]
    fn empty_positions_roundtrip() {
        let (k, bytes) = encode_sorted_positions(&[]);
        assert!(decode_sorted_positions(&bytes, 0, k).unwrap().is_empty());
    }

    #[test]
    fn single_position_zero() {
        let (k, bytes) = encode_sorted_positions(&[0]);
        assert_eq!(decode_sorted_positions(&bytes, 1, k).unwrap(), vec![0]);
    }

    #[test]
    fn compression_beats_raw_bitmap_for_sparse_sets() {
        // 1000 set bits uniformly over 1M positions: a raw bitmap costs
        // 125_000 bytes; gap coding should land well under 3 bytes/position.
        let positions: Vec<u64> = (0..1000u64).map(|i| i * 997 + (i % 7)).collect();
        let (_, bytes) = encode_sorted_positions(&positions);
        assert!(
            bytes.len() < 3000,
            "golomb stream unexpectedly large: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn optimal_param_grows_with_mean() {
        assert_eq!(optimal_rice_param(0.0), 0);
        assert_eq!(optimal_rice_param(1.0), 0);
        let k10 = optimal_rice_param(10.0);
        let k1000 = optimal_rice_param(1000.0);
        assert!((2..=4).contains(&k10), "k for mean 10: {k10}");
        assert!(k1000 > k10);
    }

    #[test]
    fn unary_rejects_runaway() {
        // All-ones buffer: unary code never terminates.
        let bytes = vec![0xffu8; 4];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_unary().is_err());
    }
}
