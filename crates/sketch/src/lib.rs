//! Statistical access structures for rank joins in NoSQL databases.
//!
//! This crate implements the probabilistic and statistical machinery of
//! Ntarmos, Patlakas & Triantafillou, *"Rank Join Queries in NoSQL
//! Databases"*, PVLDB 7(7), 2014 — most importantly the building blocks of
//! the **BFHM** (Bloom Filter Histogram Matrix, §5 of the paper):
//!
//! * [`bitvec::BitVec`] — a compact bit vector,
//! * [`bloom::SingleHashBloom`] — the single-hash-function Bloom filter the
//!   BFHM bucket is built on (single-hash so that set bit positions can be
//!   reverse-mapped to join values),
//! * [`bloom::ClassicBloom`] — a conventional k-hash Bloom filter, kept for
//!   ablation comparisons,
//! * [`hybrid::HybridFilter`] — the paper's fusion of a single-hash Bloom
//!   filter with a counting-filter hash table (Fig. 4),
//! * [`golomb`] — Golomb/Rice coding used to compress both the bitmap and
//!   the counter table ("an integral part of our data structure", §5.1),
//! * [`blob::BfhmBlob`] — the serialized BFHM bucket "blob" stored as a row
//!   value in the NoSQL store,
//! * [`histogram::ScoreHistogram`] — the first-level equi-width histogram on
//!   the score axis,
//! * [`hist2d::DrjnHistogram`] — the 2-D equi-width histogram used by the
//!   DRJN comparator (Doulkeridis et al., ICDE 2012) as adapted in §7.1,
//! * [`flatmap::FlatMultiMap`] — the flat open-addressed multimap backing
//!   the rank-join hot loops (HRJN seen-tuples, BFHM reverse-row cache).
//!
//! Everything here is deterministic: hashing uses a fixed seeded mixer (see
//! [`hash`]) so that index layouts are reproducible across runs and
//! platforms, which the test-suite and the experiment harness rely on.

#![warn(missing_docs)]

pub mod bitvec;
pub mod blob;
pub mod bloom;
pub mod flatmap;
pub mod golomb;
pub mod hash;
pub mod hist2d;
pub mod histogram;
pub mod hybrid;

pub use bitvec::BitVec;
pub use blob::{BfhmBlob, BlobCodec};
pub use bloom::{ClassicBloom, SingleHashBloom};
pub use flatmap::FlatMultiMap;
pub use hist2d::DrjnHistogram;
pub use histogram::ScoreHistogram;
pub use hybrid::HybridFilter;
