//! Bloom filters: the single-hash variant the BFHM is built on, and a
//! classic k-hash variant kept for ablation studies.
//!
//! The paper deliberately uses **one** hash function per BFHM bucket filter
//! (§5.1): with a single function, each inserted join value owns exactly one
//! bit position, so set positions can be reverse-mapped to join values via
//! the `bucket|bitpos` rows — impossible with k > 1 where positions are
//! shared between functions. The price is a higher false-positive rate at
//! equal `m`, which the paper counters by (a) sizing `m` for the most
//! populated bucket at a target FPP and (b) Golomb-compressing the sparse
//! bitmap so large `m` stays cheap.

use crate::bitvec::BitVec;
use crate::hash::{hash_bytes, reduce};

/// Seed namespace for the single BFHM hash function. Fixed: bit positions
/// are part of the persisted index layout.
const BFHM_SEED: u64 = 0x5eed_0001;

/// A Bloom filter with a single hash function.
#[derive(Clone, Debug, PartialEq)]
pub struct SingleHashBloom {
    bits: BitVec,
    /// Number of insert operations (not distinct items).
    n_inserted: u64,
}

impl SingleHashBloom {
    /// Creates a filter with `m` bits.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "Bloom filter needs at least one bit");
        SingleHashBloom {
            bits: BitVec::new(m),
            n_inserted: 0,
        }
    }

    /// Sizes `m` so that after `n` insertions the false-positive probability
    /// is at most `fpp`. For a single hash function `FPP = 1 - (1 - 1/m)^n ≈
    /// n/m` for small FPP, so `m = ceil(n / fpp)`.
    ///
    /// This mirrors the paper's configuration: "All Bloom filters were
    /// configured to contain the most heavily populated of the buckets with
    /// a false positive probability of 5%" (§7.1).
    pub fn with_capacity_fpp(n: usize, fpp: f64) -> Self {
        assert!(fpp > 0.0 && fpp < 1.0, "fpp must be in (0,1)");
        let m = ((n.max(1) as f64) / fpp).ceil() as usize;
        Self::new(m.max(8))
    }

    /// The bit position `h(item)` this filter assigns to `item`.
    #[inline]
    pub fn position(&self, item: &[u8]) -> usize {
        Self::position_in(self.bits.len(), item)
    }

    /// The bit position an `m`-bit single-hash filter assigns to `item` —
    /// the persisted-layout mapping, usable without a filter instance
    /// (the §6 online maintainers compute reverse-row keys this way).
    #[inline]
    pub fn position_in(m: usize, item: &[u8]) -> usize {
        reduce(hash_bytes(BFHM_SEED, item), m)
    }

    /// Inserts `item`, returning its bit position (Algorithm 5 line 12
    /// records this to emit the reverse-mapping row).
    pub fn insert(&mut self, item: &[u8]) -> usize {
        let pos = self.position(item);
        self.bits.set(pos);
        self.n_inserted += 1;
        pos
    }

    /// Membership test (no false negatives).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.bits.get(self.position(item))
    }

    /// Filter size in bits (`m`).
    pub fn m(&self) -> usize {
        self.bits.len()
    }

    /// Number of insertions performed (`n` in the paper's `PT` formula).
    pub fn n_inserted(&self) -> u64 {
        self.n_inserted
    }

    /// The probability that a given bit is set after `n` insertions:
    /// `PT = 1 - (1 - 1/m)^n ≈ 1 - e^(-n/m)` (paper §5.3, k = 1).
    ///
    /// Used to compute the α join-size compensation factor.
    pub fn pt(&self) -> f64 {
        let m = self.bits.len() as f64;
        1.0 - (-(self.n_inserted as f64) / m).exp()
    }

    /// Borrow of the underlying bitmap.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Reconstructs a filter from its persisted parts (blob decoding).
    pub fn from_parts(bits: BitVec, n_inserted: u64) -> Self {
        SingleHashBloom { bits, n_inserted }
    }

    /// Records the removal of an item whose bit may still be shared: the
    /// caller (the counting layer) decides whether the bit can be cleared.
    pub(crate) fn clear_bit(&mut self, pos: usize) {
        self.bits.clear(pos);
    }

    /// Decrements the insertion counter (on deletes replayed into a bucket).
    pub(crate) fn dec_inserted(&mut self) {
        self.n_inserted = self.n_inserted.saturating_sub(1);
    }
}

/// A conventional Bloom filter with `k` hash functions.
///
/// Not used by the BFHM (its positions cannot be reverse-mapped); retained
/// to quantify, in the ablation benches, what the single-hash choice costs
/// in false-positive rate at equal space.
#[derive(Clone, Debug)]
pub struct ClassicBloom {
    bits: BitVec,
    k: u32,
    n_inserted: u64,
}

impl ClassicBloom {
    /// Creates a filter with `m` bits and `k` hash functions.
    pub fn new(m: usize, k: u32) -> Self {
        assert!(m > 0 && k > 0);
        ClassicBloom {
            bits: BitVec::new(m),
            k,
            n_inserted: 0,
        }
    }

    /// Sizes the filter optimally for `n` items at false-positive rate
    /// `fpp`: `m = -n ln fpp / (ln 2)^2`, `k = (m/n) ln 2`.
    pub fn with_capacity_fpp(n: usize, fpp: f64) -> Self {
        assert!(fpp > 0.0 && fpp < 1.0);
        let n = n.max(1) as f64;
        let m = (-n * fpp.ln() / (std::f64::consts::LN_2.powi(2))).ceil() as usize;
        let k = ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as u32;
        Self::new(m.max(8), k)
    }

    fn positions<'a>(&'a self, item: &'a [u8]) -> impl Iterator<Item = usize> + 'a {
        // Kirsch-Mitzenmacher double hashing: h_i = h1 + i*h2.
        let h1 = hash_bytes(0x5eed_1001, item);
        let h2 = hash_bytes(0x5eed_1002, item) | 1;
        let m = self.bits.len();
        (0..self.k as u64).map(move |i| reduce(h1.wrapping_add(i.wrapping_mul(h2)), m))
    }

    /// Inserts `item`.
    pub fn insert(&mut self, item: &[u8]) {
        let m = self.bits.len();
        let _ = m;
        let positions: Vec<usize> = self.positions(item).collect();
        for p in positions {
            self.bits.set(p);
        }
        self.n_inserted += 1;
    }

    /// Membership test (no false negatives).
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item).all(|p| self.bits.get(p))
    }

    /// Filter size in bits.
    pub fn m(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Empirical false-positive probability estimate `(ones/m)^k`.
    pub fn fpp_estimate(&self) -> f64 {
        (self.bits.count_ones() as f64 / self.bits.len() as f64).powi(self.k as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_hash_no_false_negatives() {
        let mut f = SingleHashBloom::new(1024);
        for i in 0..100u64 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..100u64 {
            assert!(f.contains(&i.to_be_bytes()));
        }
    }

    #[test]
    fn insert_returns_stable_position() {
        let mut f = SingleHashBloom::new(4096);
        let p1 = f.insert(b"join-value-a");
        let p2 = f.position(b"join-value-a");
        assert_eq!(p1, p2);
        let g = SingleHashBloom::new(4096);
        assert_eq!(g.position(b"join-value-a"), p1, "position is per-m stable");
    }

    #[test]
    fn capacity_sizing_hits_target_fpp() {
        let n = 1000;
        let mut f = SingleHashBloom::with_capacity_fpp(n, 0.05);
        for i in 0..n as u64 {
            f.insert(&i.to_be_bytes());
        }
        // Probe 10_000 absent items; FPP should be near 5%.
        let fp = (0..10_000u64)
            .filter(|i| f.contains(&(i + 1_000_000).to_be_bytes()))
            .count();
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.08, "observed FPP {rate} exceeds budget");
    }

    #[test]
    fn pt_matches_closed_form() {
        let mut f = SingleHashBloom::new(1000);
        for i in 0..500u64 {
            f.insert(&i.to_be_bytes());
        }
        let expected = 1.0 - (-0.5f64).exp();
        assert!((f.pt() - expected).abs() < 1e-12);
    }

    #[test]
    fn pt_is_zero_when_empty() {
        assert_eq!(SingleHashBloom::new(64).pt(), 0.0);
    }

    #[test]
    fn classic_no_false_negatives() {
        let mut f = ClassicBloom::with_capacity_fpp(500, 0.01);
        for i in 0..500u64 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..500u64 {
            assert!(f.contains(&i.to_be_bytes()));
        }
    }

    #[test]
    fn classic_fpp_near_target() {
        let mut f = ClassicBloom::with_capacity_fpp(2000, 0.01);
        for i in 0..2000u64 {
            f.insert(&i.to_be_bytes());
        }
        let fp = (0..20_000u64)
            .filter(|i| f.contains(&(i + 10_000_000).to_be_bytes()))
            .count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.03, "observed FPP {rate} far above 1% target");
    }

    #[test]
    fn classic_beats_single_hash_at_equal_space() {
        // The ablation claim: at equal m/n, k-hash filters have lower FPP;
        // the BFHM pays this premium to keep positions reverse-mappable.
        let n = 1000u64;
        let m = 8000;
        let mut single = SingleHashBloom::new(m);
        let mut classic = ClassicBloom::new(m, 6);
        for i in 0..n {
            single.insert(&i.to_be_bytes());
            classic.insert(&i.to_be_bytes());
        }
        let probe = |f: &dyn Fn(&[u8]) -> bool| {
            (0..20_000u64)
                .filter(|i| f(&((i + 1) << 40).to_be_bytes()))
                .count()
        };
        let fp_single = probe(&|b| single.contains(b));
        let fp_classic = probe(&|b| classic.contains(b));
        assert!(
            fp_classic < fp_single,
            "classic ({fp_classic}) should beat single-hash ({fp_single})"
        );
    }
}
