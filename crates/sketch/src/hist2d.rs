//! The DRJN comparator's statistical structure: a 2-D equi-width histogram.
//!
//! Doulkeridis et al. (ICDE 2012, the paper's reference `[8]`) keep, per join
//! value, a histogram on the score axis. Because one bucket per distinct
//! join value is infeasible, adjacent join values are grouped into
//! partitions under a uniform-frequency assumption. The paper's §7.1
//! adaptation stores all buckets for one score range as the columns of a
//! single row, so the querying node retrieves a complete batch of buckets
//! with a single `Get`. This module provides the in-memory matrix plus the
//! per-row wire format used by that adaptation.

use crate::hash::{hash_bytes, reduce};
use crate::histogram::ScoreHistogram;

/// Seed for the join-value → partition mapping. Persisted layout; fixed.
const DRJN_SEED: u64 = 0x5eed_0d12;

/// Join partition of a value given a partition count — the stable mapping
/// shared by index builders and the in-memory matrix.
pub fn partition_for(join_value: &[u8], num_partitions: u32) -> u32 {
    reduce(hash_bytes(DRJN_SEED, join_value), num_partitions as usize) as u32
}

/// A `score-buckets × join-partitions` matrix of tuple counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrjnHistogram {
    score_hist: ScoreHistogram,
    num_partitions: u32,
    /// Row-major counts: `counts[score_bucket * num_partitions + partition]`.
    counts: Vec<u64>,
}

impl DrjnHistogram {
    /// Creates an empty matrix.
    pub fn new(num_score_buckets: u32, num_partitions: u32) -> Self {
        assert!(num_partitions > 0, "need at least one join partition");
        DrjnHistogram {
            score_hist: ScoreHistogram::new(num_score_buckets),
            num_partitions,
            counts: vec![0; num_score_buckets as usize * num_partitions as usize],
        }
    }

    /// Number of score buckets.
    pub fn num_score_buckets(&self) -> u32 {
        self.score_hist.num_buckets()
    }

    /// Number of join-value partitions.
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// The score-axis histogram (bucket 0 = highest scores).
    pub fn score_hist(&self) -> &ScoreHistogram {
        &self.score_hist
    }

    /// Join partition for a join value.
    pub fn partition_of(&self, join_value: &[u8]) -> u32 {
        partition_for(join_value, self.num_partitions)
    }

    /// Records one tuple.
    pub fn add(&mut self, join_value: &[u8], score: f64) {
        let b = self.score_hist.bucket_of(score) as usize;
        let p = self.partition_of(join_value) as usize;
        self.counts[b * self.num_partitions as usize + p] += 1;
    }

    /// Removes one tuple (refresh-set deletes); saturates at zero.
    pub fn remove(&mut self, join_value: &[u8], score: f64) {
        let b = self.score_hist.bucket_of(score) as usize;
        let p = self.partition_of(join_value) as usize;
        let c = &mut self.counts[b * self.num_partitions as usize + p];
        *c = c.saturating_sub(1);
    }

    /// Counts for one score bucket (a "row" in the §7.1 storage layout).
    pub fn row(&self, score_bucket: u32) -> &[u64] {
        let p = self.num_partitions as usize;
        let b = score_bucket as usize;
        &self.counts[b * p..(b + 1) * p]
    }

    /// Total tuples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated join cardinality between one of our score rows and one of
    /// `other`'s: matching partitions contribute the product of counts
    /// (uniform-frequency assumption within a partition).
    pub fn estimate_row_join(
        &self,
        my_bucket: u32,
        other: &DrjnHistogram,
        other_bucket: u32,
    ) -> f64 {
        assert_eq!(
            self.num_partitions, other.num_partitions,
            "DRJN join requires equal partition counts"
        );
        self.row(my_bucket)
            .iter()
            .zip(other.row(other_bucket))
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    }

    /// Serializes one score-bucket row (count per partition, u64 BE).
    pub fn encode_row(&self, score_bucket: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.num_partitions as usize * 8);
        for &c in self.row(score_bucket) {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Decodes a row produced by [`DrjnHistogram::encode_row`].
    pub fn decode_row(bytes: &[u8]) -> Result<Vec<u64>, &'static str> {
        if !bytes.len().is_multiple_of(8) {
            return Err("DRJN row length not a multiple of 8");
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("8")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lands_in_expected_cell() {
        let mut h = DrjnHistogram::new(10, 4);
        h.add(b"k1", 0.95);
        let p = h.partition_of(b"k1");
        assert_eq!(h.row(0)[p as usize], 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn remove_undoes_add() {
        let mut h = DrjnHistogram::new(10, 4);
        h.add(b"k1", 0.5);
        h.remove(b"k1", 0.5);
        assert_eq!(h.total(), 0);
        h.remove(b"k1", 0.5); // saturates
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn row_join_estimates_products() {
        let mut a = DrjnHistogram::new(2, 8);
        let mut b = DrjnHistogram::new(2, 8);
        // Same join value → same partition in both histograms.
        for _ in 0..3 {
            a.add(b"x", 0.9);
        }
        for _ in 0..5 {
            b.add(b"x", 0.9);
        }
        b.add(b"unrelated-y", 0.9);
        let est = a.estimate_row_join(0, &b, 0);
        // 3*5 from partition(x); the unrelated value may or may not share
        // the partition — estimate is at least 15.
        assert!(est >= 15.0);
    }

    #[test]
    fn disjoint_partitions_estimate_zero() {
        let mut a = DrjnHistogram::new(1, 1024);
        let mut b = DrjnHistogram::new(1, 1024);
        a.add(b"only-in-a", 0.5);
        b.add(b"only-in-b", 0.5);
        // With 1024 partitions and 2 values a collision is unlikely but
        // possible; accept either 0 or 1 product, never more.
        assert!(a.estimate_row_join(0, &b, 0) <= 1.0);
    }

    #[test]
    fn row_encode_decode_roundtrip() {
        let mut h = DrjnHistogram::new(3, 5);
        for (i, score) in [(0u64, 0.95), (1, 0.91), (2, 0.5), (3, 0.1)] {
            h.add(&i.to_be_bytes(), score);
        }
        for b in 0..3 {
            let bytes = h.encode_row(b);
            assert_eq!(DrjnHistogram::decode_row(&bytes).unwrap(), h.row(b));
        }
        assert!(DrjnHistogram::decode_row(&[1, 2, 3]).is_err());
    }

    #[test]
    fn partition_is_deterministic() {
        let h1 = DrjnHistogram::new(4, 100);
        let h2 = DrjnHistogram::new(9, 100);
        assert_eq!(h1.partition_of(b"key"), h2.partition_of(b"key"));
    }
}
