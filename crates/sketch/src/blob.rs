//! The BFHM bucket "blob": the serialized form of one histogram bucket.
//!
//! A bucket row value holds the bucket's actual min/max scores plus the
//! Golomb-compressed hybrid filter (paper §5.1: "the row values then include
//! the min and max actual scores, plus the Golomb-compressed bitmap and
//! counters' hashtable (coined BFHM bucket 'blob')"). The compression is an
//! integral part of the design — single-hash filters need large `m` and are
//! impractical raw — but a [`BlobCodec::Raw`] escape hatch is provided so the
//! ablation benches can quantify exactly what Golomb coding buys.

use crate::golomb::{
    decode_sorted_positions, decode_values, encode_sorted_positions, encode_values, BitReader,
    BitWriter, CodecError,
};
use crate::hybrid::HybridFilter;

/// Wire format selector for [`BfhmBlob`] serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BlobCodec {
    /// Golomb/Rice-compressed bitmap gaps and counters (the paper's format).
    #[default]
    Golomb,
    /// Uncompressed positions/counters — ablation only.
    Raw,
}

impl BlobCodec {
    fn tag(self) -> u8 {
        match self {
            BlobCodec::Golomb => 1,
            BlobCodec::Raw => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self, BlobError> {
        match t {
            1 => Ok(BlobCodec::Golomb),
            2 => Ok(BlobCodec::Raw),
            _ => Err(BlobError::BadMagic),
        }
    }
}

/// A decoded BFHM bucket: hybrid filter + actual score extrema.
#[derive(Clone, Debug, PartialEq)]
pub struct BfhmBlob {
    /// The bucket's hybrid Bloom filter over join values.
    pub filter: HybridFilter,
    /// Minimum actual score of any tuple recorded in the bucket.
    pub min_score: f64,
    /// Maximum actual score of any tuple recorded in the bucket.
    pub max_score: f64,
}

/// Blob (de)serialization failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BlobError {
    /// Unknown magic/codec byte.
    BadMagic,
    /// Structural truncation.
    Truncated,
    /// Golomb stream error.
    Codec(CodecError),
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlobError::BadMagic => write!(f, "blob: unknown codec tag"),
            BlobError::Truncated => write!(f, "blob: truncated"),
            BlobError::Codec(e) => write!(f, "blob: {e}"),
        }
    }
}

impl std::error::Error for BlobError {}

impl From<CodecError> for BlobError {
    fn from(e: CodecError) -> Self {
        BlobError::Codec(e)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BlobError> {
        if self.pos + n > self.buf.len() {
            return Err(BlobError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BlobError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BlobError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, BlobError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, BlobError> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().expect("8")))
    }
}

impl BfhmBlob {
    /// Wraps a filter with its score extrema.
    pub fn new(filter: HybridFilter, min_score: f64, max_score: f64) -> Self {
        BfhmBlob {
            filter,
            min_score,
            max_score,
        }
    }

    /// Serializes the blob.
    ///
    /// Layout (big-endian):
    /// `tag u8 | m u32 | n u64 | min f64 | max f64 | nbits u32 |`
    /// then for Golomb: `k_pos u8 | len u32 | gap bytes | k_cnt u8 | len u32
    /// | counter bytes`; for Raw: `positions u32[nbits] | counters
    /// u32[nbits]`.
    pub fn encode(&self, codec: BlobCodec) -> Vec<u8> {
        let positions: Vec<u64> = self.filter.set_positions().map(u64::from).collect();
        let counters: Vec<u64> = self
            .filter
            .counters_in_order()
            .map(|(_, c)| u64::from(c) - 1) // counters are >=1; store c-1
            .collect();

        let mut out = Vec::with_capacity(64 + positions.len() * 4);
        out.push(codec.tag());
        out.extend_from_slice(&(self.filter.m() as u32).to_be_bytes());
        out.extend_from_slice(&self.filter.n_inserted().to_be_bytes());
        out.extend_from_slice(&self.min_score.to_be_bytes());
        out.extend_from_slice(&self.max_score.to_be_bytes());
        out.extend_from_slice(&(positions.len() as u32).to_be_bytes());

        match codec {
            BlobCodec::Golomb => {
                let (k_pos, pos_bytes) = encode_sorted_positions(&positions);
                out.push(k_pos);
                out.extend_from_slice(&(pos_bytes.len() as u32).to_be_bytes());
                out.extend_from_slice(&pos_bytes);

                let mean = if counters.is_empty() {
                    0.0
                } else {
                    counters.iter().sum::<u64>() as f64 / counters.len() as f64
                };
                let k_cnt = crate::golomb::optimal_rice_param(mean);
                let mut w = BitWriter::new();
                encode_values(&mut w, &counters, k_cnt);
                let cnt_bytes = w.finish();
                out.push(k_cnt);
                out.extend_from_slice(&(cnt_bytes.len() as u32).to_be_bytes());
                out.extend_from_slice(&cnt_bytes);
            }
            BlobCodec::Raw => {
                for &p in &positions {
                    out.extend_from_slice(&(p as u32).to_be_bytes());
                }
                for &c in &counters {
                    out.extend_from_slice(&(c as u32).to_be_bytes());
                }
            }
        }
        out
    }

    /// Deserializes a blob produced by [`BfhmBlob::encode`] (either codec).
    pub fn decode(bytes: &[u8]) -> Result<Self, BlobError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        let codec = BlobCodec::from_tag(c.u8()?)?;
        let m = c.u32()? as usize;
        let n = c.u64()?;
        let min_score = c.f64()?;
        let max_score = c.f64()?;
        let nbits = c.u32()? as usize;

        let (positions, counters): (Vec<u32>, Vec<u32>) = match codec {
            BlobCodec::Golomb => {
                let k_pos = c.u8()?;
                let len = c.u32()? as usize;
                let pos_bytes = c.take(len)?;
                let positions = decode_sorted_positions(pos_bytes, nbits, k_pos)?;

                let k_cnt = c.u8()?;
                let len = c.u32()? as usize;
                let cnt_bytes = c.take(len)?;
                let mut r = BitReader::new(cnt_bytes);
                let counters = decode_values(&mut r, nbits, k_cnt)?;
                (
                    positions.into_iter().map(|p| p as u32).collect(),
                    counters.into_iter().map(|v| v as u32 + 1).collect(),
                )
            }
            BlobCodec::Raw => {
                let mut positions = Vec::with_capacity(nbits);
                for _ in 0..nbits {
                    positions.push(c.u32()?);
                }
                let mut counters = Vec::with_capacity(nbits);
                for _ in 0..nbits {
                    counters.push(c.u32()? + 1);
                }
                (positions, counters)
            }
        };

        Ok(BfhmBlob {
            filter: HybridFilter::from_parts(m, n, &positions, &counters),
            min_score,
            max_score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blob(m: usize, items: usize) -> BfhmBlob {
        let mut f = HybridFilter::new(m);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..items as u64 {
            f.insert(&(i % (items as u64 / 2 + 1)).to_be_bytes());
            let score = 0.6 + (i as f64 % 10.0) / 100.0;
            min = min.min(score);
            max = max.max(score);
        }
        BfhmBlob::new(f, min, max)
    }

    #[test]
    fn golomb_roundtrip() {
        let blob = sample_blob(4096, 100);
        let bytes = blob.encode(BlobCodec::Golomb);
        assert_eq!(BfhmBlob::decode(&bytes).unwrap(), blob);
    }

    #[test]
    fn raw_roundtrip() {
        let blob = sample_blob(4096, 100);
        let bytes = blob.encode(BlobCodec::Raw);
        assert_eq!(BfhmBlob::decode(&bytes).unwrap(), blob);
    }

    #[test]
    fn empty_filter_roundtrip() {
        let blob = BfhmBlob::new(HybridFilter::new(64), f64::INFINITY, f64::NEG_INFINITY);
        for codec in [BlobCodec::Golomb, BlobCodec::Raw] {
            let bytes = blob.encode(codec);
            assert_eq!(BfhmBlob::decode(&bytes).unwrap(), blob);
        }
    }

    #[test]
    fn golomb_is_smaller_than_raw_for_sparse_filters() {
        // The paper's claim: compression makes large-m single-hash filters
        // practical. Sparse bucket: 200 values in a 1M-bit filter.
        let mut f = HybridFilter::new(1 << 20);
        for i in 0..200u64 {
            f.insert(&i.to_be_bytes());
        }
        let blob = BfhmBlob::new(f, 0.9, 1.0);
        let golomb = blob.encode(BlobCodec::Golomb).len();
        let raw = blob.encode(BlobCodec::Raw).len();
        assert!(
            golomb * 2 < raw,
            "golomb ({golomb} B) should be well under raw ({raw} B)"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BfhmBlob::decode(&[]).is_err());
        assert!(BfhmBlob::decode(&[9, 0, 0]).is_err());
        let blob = sample_blob(256, 10);
        let mut bytes = blob.encode(BlobCodec::Golomb);
        bytes.truncate(bytes.len() - 1);
        assert!(BfhmBlob::decode(&bytes).is_err());
    }

    #[test]
    fn score_extrema_survive() {
        let blob = sample_blob(512, 30);
        let got = BfhmBlob::decode(&blob.encode(BlobCodec::Golomb)).unwrap();
        assert_eq!(got.min_score, blob.min_score);
        assert_eq!(got.max_score, blob.max_score);
    }
}
