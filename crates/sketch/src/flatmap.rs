//! A flat, cache-friendly multimap from byte-string keys to value groups.
//!
//! The rank-join hot loops — HRJN's seen-tuple join (every pulled tuple
//! probes the other side's seen set) and BFHM's reverse-row cache — were
//! built on `HashMap<Vec<u8>, Vec<V>>`: every key a separate heap
//! allocation, every value group another, and SipHash on top. This module
//! replaces that with the layout of SNIPPETS.md's cluster map (and of
//! classic open-addressing literature): **one contiguous allocation per
//! column**, an open-addressed slot table using the Knuth multiplicative
//! hash, keys interned into a shared byte arena, and values in one flat
//! array grouped per key.
//!
//! Two construction regimes share the same probe and iteration code:
//!
//! * **incremental** ([`FlatMultiMap::push`]) — value groups are linked
//!   lists threaded through the flat value array (`next` indices), append
//!   order preserved. This is what a streaming consumer like HRJN needs.
//! * **two-pass** ([`FlatMultiMap::from_pairs`]) — count group sizes,
//!   prefix-sum them into offsets, then place every value into its final
//!   position: each group ends up *contiguous* in the value array (the
//!   `next` links simply point one step right), so bulk probes walk
//!   sequential memory.
//!
//! Determinism: hashing is [`crate::hash::hash_bytes`] (stable across
//! platforms and releases) finished with Knuth's multiplicative constant;
//! iteration order of a group is insertion order; [`FlatMultiMap::values`]
//! exposes the backing array directly so whole-map sweeps (histograms,
//! spills) are a linear scan.

use crate::hash::hash_bytes;

/// Sentinel for "no entry" in the slot table and "end of group" in links.
const NIL: u32 = u32::MAX;

/// Fixed seed: the map is in-memory only, so the seed needs determinism,
/// not unpredictability.
const SEED: u64 = 0x666c_6174_6d61_7000; // "flatmap\0"

/// Knuth's multiplicative hashing constant (⌊2^32/φ⌋, odd).
const KNUTH: u32 = 2_654_435_761;

/// Narrows a length/count to the map's `u32` index width, panicking on
/// overflow ([`NIL`] is reserved as a sentinel) instead of silently
/// truncating into a corrupted map (wrong group membership).
#[inline]
fn idx32(n: usize, what: &str) -> u32 {
    assert!(n < NIL as usize, "FlatMultiMap {what} overflows u32: {n}");
    n as u32
}

/// A multimap `[u8] → group of V` in flat storage. See the module docs.
///
/// `V` is expected to be small and `Copy` (indices, packed ids, scores);
/// groups preserve insertion order.
#[derive(Clone, Debug)]
pub struct FlatMultiMap<V> {
    /// Open-addressed table: slot → entry index, [`NIL`] when empty.
    /// Length is a power of two, load factor kept ≤ 1/2.
    slots: Vec<u32>,
    /// `32 - log2(slots.len())`: the Knuth multiplicative shift.
    shift: u32,
    /// Per-entry cached digest (avoids re-hashing keys on growth and
    /// short-circuits probe comparisons).
    hashes: Vec<u64>,
    /// Per-entry key span: `key_offsets[e]..key_offsets[e+1]` in the arena.
    key_offsets: Vec<u32>,
    /// All keys, back to back.
    key_arena: Vec<u8>,
    /// Per-entry first/last value index into `values`, [`NIL`] when empty.
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// All values, in one flat array.
    values: Vec<V>,
    /// Successor of `values[i]` within its group, [`NIL`] at group end.
    next: Vec<u32>,
}

impl<V> Default for FlatMultiMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FlatMultiMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// An empty map pre-sized for `keys` distinct keys and `values` total
    /// values.
    pub fn with_capacity(keys: usize, values: usize) -> Self {
        // Smallest power of two holding `keys` at ≤ 1/2 load, minimum 8.
        let table = (keys.max(1) * 2).next_power_of_two().max(8);
        FlatMultiMap {
            slots: vec![NIL; table],
            shift: 32 - table.trailing_zeros(),
            hashes: Vec::with_capacity(keys),
            key_offsets: vec![0],
            key_arena: Vec::new(),
            heads: Vec::with_capacity(keys),
            tails: Vec::with_capacity(keys),
            values: Vec::with_capacity(values),
            next: Vec::with_capacity(values),
        }
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.heads.len()
    }

    /// Total number of values across all groups.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flat value array, all groups back to back (grouped contiguously
    /// after [`FlatMultiMap::from_pairs`], insertion-interleaved under
    /// incremental construction). Whole-map sweeps should scan this.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The key bytes of entry `e`.
    fn key_of(&self, e: usize) -> &[u8] {
        let lo = self.key_offsets[e] as usize;
        let hi = self.key_offsets[e + 1] as usize;
        &self.key_arena[lo..hi]
    }

    /// Knuth multiplicative slot for a digest in a table of `1 << (32 -
    /// shift)` slots.
    #[inline]
    fn slot_for(hash: u64, shift: u32) -> usize {
        // Fold the stable 64-bit digest to 32 bits, then Knuth-multiply;
        // the top bits index the table.
        let h32 = (hash ^ (hash >> 32)) as u32;
        (h32.wrapping_mul(KNUTH) >> shift) as usize
    }

    /// Finds the entry for `key`, if present.
    fn find(&self, hash: u64, key: &[u8]) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut slot = Self::slot_for(hash, self.shift);
        loop {
            match self.slots[slot] {
                NIL => return None,
                e => {
                    let e = e as usize;
                    if self.hashes[e] == hash && self.key_of(e) == key {
                        return Some(e);
                    }
                }
            }
            slot = (slot + 1) & mask; // linear probe
        }
    }

    /// Doubles the slot table and re-places every entry (keys are *not*
    /// re-hashed — digests are cached).
    fn grow(&mut self) {
        let table = self.slots.len() * 2;
        self.shift = 32 - table.trailing_zeros();
        self.slots = vec![NIL; table];
        let mask = table - 1;
        for (e, &hash) in self.hashes.iter().enumerate() {
            let mut slot = Self::slot_for(hash, self.shift);
            while self.slots[slot] != NIL {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = e as u32;
        }
    }

    /// The entry index for `key`, interning it if new. Stable for the
    /// map's lifetime — callers may use it as a dense key id.
    pub fn ensure(&mut self, key: &[u8]) -> u32 {
        let hash = hash_bytes(SEED, key);
        if let Some(e) = self.find(hash, key) {
            return e as u32;
        }
        // ≤ 1/2 load *before* insertion keeps probe chains short.
        if (self.heads.len() + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let e = idx32(self.heads.len(), "entry count");
        self.hashes.push(hash);
        self.key_arena.extend_from_slice(key);
        self.key_offsets
            .push(idx32(self.key_arena.len(), "key arena size"));
        self.heads.push(NIL);
        self.tails.push(NIL);
        let mask = self.slots.len() - 1;
        let mut slot = Self::slot_for(hash, self.shift);
        while self.slots[slot] != NIL {
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = e;
        e
    }

    /// Appends `value` to `key`'s group (interning the key if new) and
    /// returns the value's index in the flat array.
    pub fn push(&mut self, key: &[u8], value: V) -> u32 {
        let e = self.ensure(key);
        self.push_to_entry(e, value)
    }

    /// Appends `value` to the group of an entry id previously returned by
    /// [`FlatMultiMap::ensure`] / [`FlatMultiMap::push`].
    pub fn push_to_entry(&mut self, entry: u32, value: V) -> u32 {
        let e = entry as usize;
        let v = idx32(self.values.len(), "value count");
        self.values.push(value);
        self.next.push(NIL);
        if self.tails[e] == NIL {
            self.heads[e] = v;
        } else {
            self.next[self.tails[e] as usize] = v;
        }
        self.tails[e] = v;
        v
    }

    /// Whether `key` has been interned — `true` even when its group is
    /// empty, which is how a cache distinguishes "fetched, no tuples"
    /// from "never fetched".
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.find(hash_bytes(SEED, key), key).is_some()
    }

    /// Iterates `key`'s group in insertion order (empty if absent).
    pub fn get<'a>(&'a self, key: &[u8]) -> GroupIter<'a, V> {
        let head = self
            .find(hash_bytes(SEED, key), key)
            .map_or(NIL, |e| self.heads[e]);
        GroupIter {
            map: self,
            at: head,
        }
    }

    /// Iterates the group of entry id `entry` in insertion order.
    pub fn group(&self, entry: u32) -> GroupIter<'_, V> {
        GroupIter {
            map: self,
            at: self.heads[entry as usize],
        }
    }
}

impl<V: Copy> FlatMultiMap<V> {
    /// Builds the map in two passes from `(key, value)` pairs, following
    /// SNIPPETS.md's cluster-map recipe: first count each key's group
    /// size, prefix-sum the counts into placement offsets, then write
    /// every value into its final position — each group lands
    /// **contiguous** in the value array (in pair order), so probes walk
    /// sequential memory.
    ///
    /// `pairs` is cloned and consumed **three times** (count, placeholder
    /// fill, placement), so every clone must yield the same sequence — as
    /// any pure iterator over stored data does. An impure iterator (side
    /// effects, interior mutability) whose passes disagree would corrupt
    /// the map silently, so the passes are cross-checked: any divergence
    /// in item count or per-group size panics.
    pub fn from_pairs<'a, I>(pairs: I) -> Self
    where
        I: Iterator<Item = (&'a [u8], V)> + Clone,
        V: 'a,
    {
        // Pass 1: intern keys and count group sizes.
        let mut map = Self::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut total = 0usize;
        for (key, _) in pairs.clone() {
            let e = map.ensure(key) as usize;
            if e == counts.len() {
                counts.push(0);
            }
            counts[e] += 1;
            total += 1;
        }
        let total = idx32(total, "value count");
        // Prefix-sum: counts[e] becomes the group's next write cursor.
        let mut acc = 0u32;
        let mut starts = vec![0u32; counts.len()];
        for (e, c) in counts.iter_mut().enumerate() {
            starts[e] = acc;
            let n = *c;
            *c = acc;
            acc += n;
        }
        // Pass 2: place values; groups are contiguous, links point right.
        let nil_v = NIL;
        map.values.reserve_exact(total as usize);
        // SAFETY-free placement: pre-fill then overwrite via cursors.
        map.values.extend(pairs.clone().map(|(_, v)| v)); // placeholder fill
        assert_eq!(
            map.values.len(),
            total as usize,
            "from_pairs: placeholder pass disagrees with the count pass"
        );
        map.next = vec![nil_v; total as usize];
        let mut placed = 0usize;
        for (key, value) in pairs {
            let e = map.ensure(key) as usize; // already interned: lookup only
            assert!(
                e < counts.len(),
                "from_pairs: placement pass yielded a key absent from the count pass"
            );
            let at = counts[e];
            counts[e] += 1;
            map.values[at as usize] = value;
            placed += 1;
        }
        assert_eq!(
            placed, total as usize,
            "from_pairs: placement pass disagrees with the count pass"
        );
        for (e, &start) in starts.iter().enumerate() {
            let end = counts[e]; // one past the group's last element
                                 // Each cursor must land exactly on its group's end (the next
                                 // group's start) — anything else means the clone passes
                                 // yielded different key sequences.
            let expected_end = starts.get(e + 1).copied().unwrap_or(total);
            assert_eq!(
                end, expected_end,
                "from_pairs: group {e} placement cursor off its group end"
            );
            if end == start {
                map.heads[e] = NIL;
                map.tails[e] = NIL;
                continue;
            }
            map.heads[e] = start;
            map.tails[e] = end - 1;
            for v in start..end - 1 {
                map.next[v as usize] = v + 1;
            }
        }
        map
    }
}

/// Iterator over one key's value group, in insertion order.
pub struct GroupIter<'a, V> {
    map: &'a FlatMultiMap<V>,
    at: u32,
}

impl<'a, V> Iterator for GroupIter<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        if self.at == NIL {
            return None;
        }
        let v = &self.map.values[self.at as usize];
        self.at = self.map.next[self.at as usize];
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_map_probes_cleanly() {
        let m: FlatMultiMap<u32> = FlatMultiMap::new();
        assert!(m.is_empty());
        assert_eq!(m.num_keys(), 0);
        assert_eq!(m.get(b"anything").count(), 0);
    }

    #[test]
    fn groups_preserve_insertion_order() {
        let mut m = FlatMultiMap::new();
        m.push(b"a", 1u32);
        m.push(b"b", 10);
        m.push(b"a", 2);
        m.push(b"b", 20);
        m.push(b"a", 3);
        assert_eq!(m.get(b"a").copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(m.get(b"b").copied().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(m.get(b"c").count(), 0);
        assert_eq!(m.len(), 5);
        assert_eq!(m.num_keys(), 2);
    }

    #[test]
    fn contains_distinguishes_empty_groups_from_absent_keys() {
        let mut m: FlatMultiMap<u32> = FlatMultiMap::new();
        m.ensure(b"fetched-empty");
        assert!(m.contains_key(b"fetched-empty"));
        assert_eq!(m.get(b"fetched-empty").count(), 0);
        assert!(!m.contains_key(b"never-fetched"));
    }

    #[test]
    fn entry_ids_are_dense_and_stable() {
        let mut m: FlatMultiMap<u8> = FlatMultiMap::new();
        let a = m.ensure(b"a");
        let b = m.ensure(b"b");
        assert_eq!((a, b), (0, 1));
        for _ in 0..100 {
            m.ensure(format!("k{}", m.num_keys()).as_bytes());
        }
        assert_eq!(m.ensure(b"a"), 0, "growth must not move entries");
        assert_eq!(m.ensure(b"b"), 1);
    }

    #[test]
    fn survives_growth_with_many_keys() {
        let mut m = FlatMultiMap::new();
        for i in 0..5_000u32 {
            let key = format!("key-{i}");
            m.push(key.as_bytes(), i);
            m.push(key.as_bytes(), i * 2);
        }
        for i in (0..5_000u32).step_by(97) {
            let key = format!("key-{i}");
            assert_eq!(
                m.get(key.as_bytes()).copied().collect::<Vec<_>>(),
                vec![i, i * 2]
            );
        }
        assert_eq!(m.num_keys(), 5_000);
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn empty_and_binary_keys_are_distinct() {
        let mut m = FlatMultiMap::new();
        m.push(b"".as_slice(), 0u8);
        m.push(b"\0".as_slice(), 1);
        m.push(b"\0\0".as_slice(), 2);
        assert_eq!(m.get(b"").copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(m.get(b"\0").copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(m.get(b"\0\0").copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn from_pairs_matches_incremental_and_is_contiguous() {
        let pairs: Vec<(Vec<u8>, u32)> = (0..300u32)
            .map(|i| (format!("k{}", i % 37).into_bytes(), i))
            .collect();
        let two_pass = FlatMultiMap::from_pairs(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
        let mut incremental = FlatMultiMap::new();
        for (k, v) in &pairs {
            incremental.push(k, *v);
        }
        for g in 0..37u32 {
            let key = format!("k{g}").into_bytes();
            let a: Vec<u32> = two_pass.get(&key).copied().collect();
            let b: Vec<u32> = incremental.get(&key).copied().collect();
            assert_eq!(a, b, "group {g} differs between construction modes");
        }
        // Contiguity: in the two-pass map, each group occupies one dense
        // run of the flat value array, so group values appear in a single
        // ascending index run. Verify via the values() layout: group k0 is
        // values[0..len0], k1 follows, etc.
        let mut offset = 0usize;
        for g in 0..37u32 {
            let key = format!("k{g}").into_bytes();
            let group: Vec<u32> = two_pass.get(&key).copied().collect();
            assert_eq!(
                &two_pass.values()[offset..offset + group.len()],
                group.as_slice(),
                "group {g} not contiguous at offset {offset}"
            );
            offset += group.len();
        }
        assert_eq!(offset, two_pass.len());
    }

    #[test]
    fn agrees_with_hashmap_reference_on_random_ops() {
        // Deterministic pseudo-random workload (no RNG dependency).
        let mut m = FlatMultiMap::new();
        let mut reference: HashMap<Vec<u8>, Vec<u64>> = HashMap::new();
        let mut x = 0x1234_5678_u64;
        for _ in 0..20_000 {
            x = crate::hash::mix64(x);
            let key = format!("k{}", x % 512).into_bytes();
            m.push(&key, x);
            reference.entry(key).or_default().push(x);
        }
        for (key, want) in &reference {
            let got: Vec<u64> = m.get(key).copied().collect();
            assert_eq!(&got, want);
        }
        assert_eq!(m.len(), 20_000);
        assert_eq!(m.num_keys(), reference.len());
    }
}
