//! The paper's hybrid filter: a single-hash Bloom filter fused with a
//! counting-filter hash table (Fig. 4, §5.1).
//!
//! Each BFHM bucket keeps (i) a single-hash bitmap over join values and
//! (ii) a counter per set bit recording how many tuples hashed there. Joining
//! two buckets ANDs the bitmaps and sums counter products over the common
//! positions (Algorithm 7), optionally scaled by the α false-positive
//! compensation of §5.3. The structure is "a hybrid between Golomb
//! Compressed Sets and Counting Bloom filters"; the Golomb layer lives in
//! [`crate::blob`].

use std::collections::BTreeMap;

use crate::bloom::SingleHashBloom;

/// Single-hash Bloom filter + per-set-bit counters.
#[derive(Clone, Debug, PartialEq)]
pub struct HybridFilter {
    bloom: SingleHashBloom,
    /// Counter per set bit position. BTreeMap so that serialization and
    /// iteration are deterministic (counters are persisted next to the
    /// bitmap inside the bucket blob).
    counters: BTreeMap<u32, u32>,
}

/// How bucket-join cardinality estimates compensate for false positives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AlphaMode {
    /// Scale by `α = (1 - PT_A)(1 - PT_B)` (paper §5.3).
    #[default]
    Compensated,
    /// `α = 1` — the naive estimate; kept for the ablation study.
    Off,
}

impl HybridFilter {
    /// Creates a hybrid filter whose bitmap has `m` bits.
    pub fn new(m: usize) -> Self {
        HybridFilter {
            bloom: SingleHashBloom::new(m),
            counters: BTreeMap::new(),
        }
    }

    /// Sizes the bitmap for `n` items at false-positive probability `fpp`
    /// (the paper's 5% / most-populated-bucket rule).
    pub fn with_capacity_fpp(n: usize, fpp: f64) -> Self {
        HybridFilter {
            bloom: SingleHashBloom::with_capacity_fpp(n, fpp),
            counters: BTreeMap::new(),
        }
    }

    /// Inserts a join value; returns the bit position it was recorded at.
    pub fn insert(&mut self, join_value: &[u8]) -> u32 {
        let pos = self.bloom.insert(join_value) as u32;
        *self.counters.entry(pos).or_insert(0) += 1;
        pos
    }

    /// Removes one occurrence of a join value (BFHM tombstone replay, §6).
    ///
    /// Returns the bit position if an occurrence was recorded there, or
    /// `None` if the counter was already zero (a tombstone for a tuple the
    /// blob never saw — ignored, matching timestamp-ordered replay).
    pub fn remove(&mut self, join_value: &[u8]) -> Option<u32> {
        let pos = self.bloom.position(join_value) as u32;
        match self.counters.get_mut(&pos) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.bloom.dec_inserted();
                Some(pos)
            }
            Some(_) => {
                self.counters.remove(&pos);
                self.bloom.clear_bit(pos as usize);
                self.bloom.dec_inserted();
                Some(pos)
            }
            None => None,
        }
    }

    /// The counter at `pos` (0 when the bit is clear).
    pub fn counter(&self, pos: u32) -> u32 {
        self.counters.get(&pos).copied().unwrap_or(0)
    }

    /// Bit position a join value would map to.
    pub fn position(&self, join_value: &[u8]) -> u32 {
        self.bloom.position(join_value) as u32
    }

    /// Set bit positions in increasing order.
    pub fn set_positions(&self) -> impl Iterator<Item = u32> + '_ {
        self.counters.keys().copied()
    }

    /// Counters in bit-position order (for blob encoding).
    pub fn counters_in_order(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.counters.iter().map(|(&p, &c)| (p, c))
    }

    /// Number of distinct set bits.
    pub fn set_bit_count(&self) -> usize {
        self.counters.len()
    }

    /// Total insertions currently represented (`n` in `PT`).
    pub fn n_inserted(&self) -> u64 {
        self.bloom.n_inserted()
    }

    /// Sum of all counters — the number of tuples recorded in this bucket.
    pub fn total_count(&self) -> u64 {
        self.counters.values().map(|&c| u64::from(c)).sum()
    }

    /// Bitmap size `m`.
    pub fn m(&self) -> usize {
        self.bloom.m()
    }

    /// `PT = 1 - e^(-n/m)` for this filter.
    pub fn pt(&self) -> f64 {
        self.bloom.pt()
    }

    /// Underlying single-hash filter.
    pub fn bloom(&self) -> &SingleHashBloom {
        &self.bloom
    }

    /// Common set-bit positions with `other` (the bitwise-AND of
    /// Algorithm 7 line 4, materialized as positions).
    pub fn common_positions(&self, other: &HybridFilter) -> Vec<u32> {
        assert_eq!(
            self.m(),
            other.m(),
            "bucket join requires equal filter sizes"
        );
        // Both counter maps are sorted: merge-intersect.
        let mut out = Vec::new();
        let mut a = self.counters.keys().peekable();
        let mut b = other.counters.keys().peekable();
        while let (Some(&&pa), Some(&&pb)) = (a.peek(), b.peek()) {
            match pa.cmp(&pb) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(pa);
                    a.next();
                    b.next();
                }
            }
        }
        out
    }

    /// Estimated join cardinality against `other`: `Σ c_A(bit)·c_B(bit)`
    /// over common bits, scaled by `α = (1-PT_A)(1-PT_B)` when compensation
    /// is on (Algorithm 7 line 8 with §5.3's α).
    pub fn estimate_join_cardinality(&self, other: &HybridFilter, mode: AlphaMode) -> f64 {
        let raw: u64 = self
            .common_positions(other)
            .iter()
            .map(|&p| u64::from(self.counter(p)) * u64::from(other.counter(p)))
            .sum();
        let alpha = match mode {
            AlphaMode::Compensated => (1.0 - self.pt()) * (1.0 - other.pt()),
            AlphaMode::Off => 1.0,
        };
        raw as f64 * alpha
    }

    /// Rebuilds a filter from persisted parts; positions and counters must
    /// be aligned and sorted (blob decoding).
    pub fn from_parts(m: usize, n_inserted: u64, positions: &[u32], counters: &[u32]) -> Self {
        assert_eq!(positions.len(), counters.len());
        let ones: Vec<u64> = positions.iter().map(|&p| u64::from(p)).collect();
        let bits = crate::bitvec::BitVec::from_ones(m, &ones);
        HybridFilter {
            bloom: SingleHashBloom::from_parts(bits, n_inserted),
            counters: positions
                .iter()
                .zip(counters)
                .map(|(&p, &c)| (p, c))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_of(m: usize, items: &[&[u8]]) -> HybridFilter {
        let mut f = HybridFilter::new(m);
        for it in items {
            f.insert(it);
        }
        f
    }

    #[test]
    fn counters_track_multiplicity() {
        let mut f = HybridFilter::new(1 << 16);
        let p1 = f.insert(b"d");
        let p2 = f.insert(b"d");
        assert_eq!(p1, p2);
        assert_eq!(f.counter(p1), 2);
        assert_eq!(f.total_count(), 2);
        assert_eq!(f.n_inserted(), 2);
    }

    #[test]
    fn remove_decrements_then_clears() {
        let mut f = HybridFilter::new(1 << 16);
        let p = f.insert(b"d");
        f.insert(b"d");
        assert_eq!(f.remove(b"d"), Some(p));
        assert_eq!(f.counter(p), 1);
        assert_eq!(f.remove(b"d"), Some(p));
        assert_eq!(f.counter(p), 0);
        assert!(!f.bloom().contains(b"d"));
        assert_eq!(f.remove(b"d"), None, "over-delete is ignored");
    }

    #[test]
    fn join_cardinality_exact_without_collisions() {
        // Big m: no collisions. A = {a, b, b}, B = {b, b, c} → joins on b:
        // 2 * 2 = 4.
        let a = filter_of(1 << 20, &[b"a", b"b", b"b"]);
        let b = filter_of(1 << 20, &[b"b", b"b", b"c"]);
        let est = a.estimate_join_cardinality(&b, AlphaMode::Off);
        assert_eq!(est, 4.0);
    }

    #[test]
    fn alpha_shrinks_estimate() {
        let a = filter_of(64, &[b"a", b"b", b"c", b"d", b"e"]);
        let b = filter_of(64, &[b"b", b"c", b"x", b"y"]);
        let raw = a.estimate_join_cardinality(&b, AlphaMode::Off);
        let comp = a.estimate_join_cardinality(&b, AlphaMode::Compensated);
        assert!(comp < raw);
        assert!(comp > 0.0);
    }

    #[test]
    fn disjoint_buckets_estimate_zero() {
        let a = filter_of(1 << 20, &[b"a"]);
        let b = filter_of(1 << 20, &[b"z"]);
        assert!(a.common_positions(&b).is_empty());
        assert_eq!(a.estimate_join_cardinality(&b, AlphaMode::Off), 0.0);
    }

    #[test]
    fn cardinality_only_overestimates() {
        // Lemma 1: per-position counters are >= true multiplicity, so the
        // uncompensated estimate can only overestimate. Use a tiny filter to
        // force collisions.
        let keys_a: Vec<Vec<u8>> = (0..40u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let keys_b: Vec<Vec<u8>> = (20..60u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut a = HybridFilter::new(32);
        let mut b = HybridFilter::new(32);
        for k in &keys_a {
            a.insert(k);
        }
        for k in &keys_b {
            b.insert(k);
        }
        // True join: 20 common values, each multiplicity 1 → 20.
        let est = a.estimate_join_cardinality(&b, AlphaMode::Off);
        assert!(est >= 20.0, "estimate {est} below true cardinality");
    }

    #[test]
    fn from_parts_roundtrip() {
        let f = filter_of(4096, &[b"a", b"b", b"b", b"c", b"zebra"]);
        let positions: Vec<u32> = f.set_positions().collect();
        let counters: Vec<u32> = f.counters_in_order().map(|(_, c)| c).collect();
        let g = HybridFilter::from_parts(f.m(), f.n_inserted(), &positions, &counters);
        assert_eq!(f, g);
    }

    #[test]
    #[should_panic(expected = "equal filter sizes")]
    fn join_rejects_mismatched_m() {
        let a = HybridFilter::new(64);
        let b = HybridFilter::new(128);
        a.common_positions(&b);
    }
}
