//! A compact, fixed-width bit vector.
//!
//! Backs the single-hash Bloom filters of the BFHM buckets. Supports the two
//! operations the BFHM query algorithms need beyond set/get: bitwise AND
//! (bucket join, paper Algorithm 7 line 4) and iteration over set positions
//! (cardinality estimation and reverse-mapping lookups).

/// A fixed-length bit vector stored as 64-bit words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitVec {
    words: Vec<u64>,
    nbits: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector with `nbits` bits.
    pub fn new(nbits: usize) -> Self {
        BitVec {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Number of bits (the Bloom filter parameter `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// `true` if the vector has zero bits of capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Sets bit `i`; returns whether the bit was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        let (w, b) = (i / 64, i % 64);
        let was_clear = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        was_clear
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set (an empty bucket-join result, Algorithm 7
    /// line 5).
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise AND of two equally-sized vectors.
    ///
    /// # Panics
    /// Panics if the lengths differ — BFHM bucket joins require both sides
    /// to use the same filter size `m`.
    pub fn and(&self, other: &BitVec) -> BitVec {
        assert_eq!(
            self.nbits, other.nbits,
            "bitwise AND requires equal filter sizes"
        );
        BitVec {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            nbits: self.nbits,
        }
    }

    /// Iterates over set bit positions in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Rebuilds a vector of `nbits` bits from sorted set-bit positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    pub fn from_ones(nbits: usize, ones: &[u64]) -> Self {
        let mut v = BitVec::new(nbits);
        for &i in ones {
            v.set(i as usize);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(130);
        assert!(v.set(0));
        assert!(v.set(63));
        assert!(v.set(64));
        assert!(v.set(129));
        assert!(!v.set(64), "second set reports already-set");
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(128));
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let mut v = BitVec::new(200);
        let positions = [0usize, 5, 63, 64, 65, 127, 128, 199];
        for &p in &positions {
            v.set(p);
        }
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, positions);
    }

    #[test]
    fn and_keeps_only_common_bits() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        for p in [1, 10, 64, 99] {
            a.set(p);
        }
        for p in [10, 11, 64] {
            b.set(p);
        }
        let c = a.and(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![10, 64]);
        assert!(!c.all_zero());
    }

    #[test]
    fn and_of_disjoint_is_all_zero() {
        let mut a = BitVec::new(64);
        let mut b = BitVec::new(64);
        a.set(3);
        b.set(4);
        assert!(a.and(&b).all_zero());
    }

    #[test]
    #[should_panic(expected = "equal filter sizes")]
    fn and_rejects_mismatched_sizes() {
        let _ = BitVec::new(64).and(&BitVec::new(65));
    }

    #[test]
    fn from_ones_roundtrip() {
        let mut v = BitVec::new(333);
        for p in [2usize, 70, 140, 332] {
            v.set(p);
        }
        let ones: Vec<u64> = v.iter_ones().map(|p| p as u64).collect();
        assert_eq!(BitVec::from_ones(333, &ones), v);
    }

    #[test]
    fn zero_length_vector() {
        let v = BitVec::new(0);
        assert!(v.is_empty());
        assert!(v.all_zero());
        assert_eq!(v.iter_ones().count(), 0);
    }
}
