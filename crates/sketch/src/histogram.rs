//! The first level of the BFHM: an equi-width histogram on the score axis.
//!
//! Scores live in `[0, 1]` (paper §1.1). Buckets are numbered so that
//! **bucket 0 holds the highest scores** — "for scores in [0, 1] and 10
//! buckets, the first bucket — i.e., for score values in (0.9, 1.0] — will be
//! stored under key 0" (§5.1). That orientation matters: the NoSQL store
//! scans ascending row keys only, so ascending bucket number = descending
//! score, exactly what rank-join processing wants.
//!
//! **Boundary semantics.** The paper's prose writes buckets as `(lo, hi]`,
//! but its figures consistently place boundary scores in the *upper* bucket
//! (Fig. 5/6 put score 0.70 in bucket 2 = 0.7–0.8 and 0.50 in bucket 4 =
//! 0.5–0.6), i.e. `[lo, hi)` with bucket 0 closed at 1.0. We follow the
//! figures — they drive the worked example our tests reproduce — and snap
//! scores within 1e-9 of a boundary onto it so that decimal scores like 0.7
//! bucket predictably despite binary floating point.

/// An equi-width bucketing of the score domain `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoreHistogram {
    num_buckets: u32,
}

impl ScoreHistogram {
    /// Creates a histogram with `num_buckets` equal-width buckets.
    ///
    /// # Panics
    /// Panics when `num_buckets == 0`.
    pub fn new(num_buckets: u32) -> Self {
        assert!(num_buckets > 0, "histogram needs at least one bucket");
        ScoreHistogram { num_buckets }
    }

    /// Bucket count.
    pub fn num_buckets(&self) -> u32 {
        self.num_buckets
    }

    /// Bucket index for `score` — bucket `b` covers `[1-(b+1)/B, 1-b/B)`,
    /// except bucket 0 which also includes score 1.0 (see module docs for
    /// the boundary-semantics note).
    ///
    /// Scores are clamped into `[0, 1]`; NaN is treated as 0 (lowest
    /// bucket) so malformed data degrades to "uninteresting", never panics.
    pub fn bucket_of(&self, score: f64) -> u32 {
        let s = if score.is_nan() {
            0.0
        } else {
            score.clamp(0.0, 1.0)
        };
        let x = s * f64::from(self.num_buckets);
        // Snap values a hair below an integer boundary up onto it, so that
        // decimal scores (0.7 * 10 = 6.999...) bucket as intended.
        let mut cell = x.floor();
        if x - cell > 1.0 - 1e-9 {
            cell += 1.0;
        }
        let b = i64::from(self.num_buckets) - 1 - cell as i64;
        b.clamp(0, i64::from(self.num_buckets) - 1) as u32
    }

    /// Upper score boundary of bucket `b` (exclusive, except bucket 0 which
    /// closes at 1.0).
    pub fn upper_bound(&self, bucket: u32) -> f64 {
        debug_assert!(bucket < self.num_buckets);
        1.0 - f64::from(bucket) / f64::from(self.num_buckets)
    }

    /// Lower score boundary of bucket `b` (inclusive).
    pub fn lower_bound(&self, bucket: u32) -> f64 {
        debug_assert!(bucket < self.num_buckets);
        1.0 - f64::from(bucket + 1) / f64::from(self.num_buckets)
    }

    /// `[lower, upper)` boundaries of bucket `b`.
    pub fn bounds(&self, bucket: u32) -> (f64, f64) {
        (self.lower_bound(bucket), self.upper_bound(bucket))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_ten_buckets() {
        // §5.1: (0.9, 1.0] → key 0, (0.8, 0.9] → key 1, ...
        let h = ScoreHistogram::new(10);
        assert_eq!(h.bucket_of(1.0), 0);
        assert_eq!(h.bucket_of(0.93), 0);
        assert_eq!(h.bucket_of(0.91), 0);
        assert_eq!(h.bucket_of(0.82), 1);
        assert_eq!(h.bucket_of(0.73), 2);
        assert_eq!(h.bucket_of(0.64), 3);
        assert_eq!(h.bucket_of(0.53), 4);
        assert_eq!(h.bucket_of(0.41), 5);
        assert_eq!(h.bucket_of(0.35), 6);
        assert_eq!(h.bucket_of(0.05), 9);
    }

    #[test]
    fn running_example_bucket_assignment() {
        // Every tuple of Fig. 1 lands in the bucket Fig. 5 shows.
        let h = ScoreHistogram::new(10);
        let r1 = [
            (0.82, 1),
            (0.93, 0),
            (0.67, 3),
            (0.82, 1),
            (0.73, 2),
            (0.79, 2),
            (0.82, 1),
            (0.70, 2),
            (0.68, 3),
            (1.00, 0),
            (0.64, 3),
        ];
        let r2 = [
            (0.51, 4),
            (0.91, 0),
            (0.64, 3),
            (0.53, 4),
            (0.41, 5),
            (0.50, 4),
            (0.35, 6),
            (0.38, 6),
            (0.37, 6),
            (0.31, 6),
            (0.92, 0),
        ];
        for (score, bucket) in r1.iter().chain(&r2) {
            assert_eq!(h.bucket_of(*score), *bucket, "score {score}");
        }
    }

    #[test]
    fn bounds_are_consistent() {
        let h = ScoreHistogram::new(10);
        assert_eq!(h.bounds(0), (0.9, 1.0));
        let (lo, hi) = h.bounds(3);
        assert!((lo - 0.6).abs() < 1e-12);
        assert!((hi - 0.7).abs() < 1e-12);
        assert_eq!(h.lower_bound(9), 0.0);
    }

    #[test]
    fn extreme_scores_are_clamped() {
        let h = ScoreHistogram::new(100);
        assert_eq!(h.bucket_of(2.0), 0);
        assert_eq!(h.bucket_of(-1.0), 99);
        assert_eq!(h.bucket_of(0.0), 99);
        assert_eq!(h.bucket_of(f64::NAN), 99);
    }

    #[test]
    fn single_bucket_swallows_everything() {
        let h = ScoreHistogram::new(1);
        for s in [0.0, 0.3, 1.0] {
            assert_eq!(h.bucket_of(s), 0);
        }
        assert_eq!(h.bounds(0), (0.0, 1.0));
    }

    #[test]
    fn scores_fall_within_their_bucket_bounds() {
        let h = ScoreHistogram::new(37);
        let mut s = 0.0005;
        while s < 1.0 {
            let b = h.bucket_of(s);
            let (lo, hi) = h.bounds(b);
            // Allow boundary-epsilon tolerance: equality at the closed end.
            assert!(
                s > lo - 1e-9 && s <= hi + 1e-9,
                "score {s} escaped bucket {b} ({lo}, {hi}]"
            );
            s += 0.0013;
        }
    }
}
