//! Deterministic, seedable 64-bit hashing for sketch structures.
//!
//! The Bloom filters in this crate must map the same join value to the same
//! bit position in every process, on every platform, forever: the bit
//! position is part of the *persistent* BFHM index layout (reverse-mapping
//! rows are keyed by `bucket|bitpos`, paper §5.1). `std::hash` offers no such
//! stability guarantee, so we implement a small FNV-1a/splitmix64 hybrid:
//! FNV-1a absorbs the bytes, a splitmix64 finalizer provides avalanche so
//! that reductions modulo small `m` stay uniform.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finalizer: full-avalanche bijective mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `bytes` under `seed`, producing a well-mixed 64-bit digest.
///
/// Different seeds yield (practically) independent hash functions, which is
/// how [`crate::bloom::ClassicBloom`] derives its k functions.
#[inline]
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ mix64(seed);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Reduces a 64-bit hash onto `[0, m)` without modulo bias worth caring
/// about (Lemire's multiply-shift reduction).
#[inline]
pub fn reduce(hash: u64, m: usize) -> usize {
    debug_assert!(m > 0, "cannot reduce onto an empty range");
    (((u128::from(hash)) * (m as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_bytes(7, b"part-42"), hash_bytes(7, b"part-42"));
    }

    #[test]
    fn hash_depends_on_seed() {
        assert_ne!(hash_bytes(1, b"x"), hash_bytes(2, b"x"));
    }

    #[test]
    fn hash_depends_on_input() {
        assert_ne!(hash_bytes(1, b"x"), hash_bytes(1, b"y"));
        assert_ne!(hash_bytes(1, b""), hash_bytes(1, b"\0"));
    }

    #[test]
    fn hash_is_stable_across_releases() {
        // Pinned digests: the BFHM index layout depends on these never
        // changing. If this test fails, persisted indices are invalidated.
        assert_eq!(hash_bytes(0, b""), 0x5b21_f68f_fa77_f14c);
        assert_eq!(hash_bytes(0, b"a"), 0x2a5a_3f02_a610_14a9);
        assert_eq!(hash_bytes(42, b"lineitem"), 0x7a1c_cd1c_1c0f_e1f8);
    }

    #[test]
    fn reduce_is_in_range() {
        for m in [1usize, 2, 3, 17, 1024, 1_000_003] {
            for x in [0u64, 1, u64::MAX, 0xdead_beef, 1 << 63] {
                assert!(reduce(x, m) < m);
            }
        }
    }

    #[test]
    fn reduce_spreads_uniformly() {
        let m = 16;
        let mut counts = vec![0u32; m];
        for i in 0..16_000u64 {
            counts[reduce(mix64(i), m)] += 1;
        }
        for &c in &counts {
            // Expected 1000 per cell; allow generous slack.
            assert!((800..1200).contains(&c), "skewed cell: {c}");
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Spot check: distinct inputs yield distinct outputs.
        let outs: std::collections::HashSet<u64> = (0..10_000).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
