//! Property tests for the sketch substrate: every invariant the BFHM's
//! correctness argument leans on.

use proptest::prelude::*;

use rj_sketch::blob::{BfhmBlob, BlobCodec};
use rj_sketch::bloom::SingleHashBloom;
use rj_sketch::golomb::{decode_sorted_positions, encode_sorted_positions};
use rj_sketch::histogram::ScoreHistogram;
use rj_sketch::hybrid::{AlphaMode, HybridFilter};

proptest! {
    /// Golomb gap coding is lossless for any strictly increasing list.
    #[test]
    fn golomb_positions_roundtrip(position_set in prop::collection::btree_set(0u64..1_000_000, 0..300)) {
        let positions: Vec<u64> = position_set.into_iter().collect();
        let (k, bytes) = encode_sorted_positions(&positions);
        let decoded = decode_sorted_positions(&bytes, positions.len(), k).unwrap();
        prop_assert_eq!(decoded, positions);
    }

    /// Blob serialization is lossless under both codecs.
    #[test]
    fn blob_roundtrip(
        items in prop::collection::vec(0u64..500, 0..200),
        m_exp in 6u32..16,
        golomb in any::<bool>(),
    ) {
        let m = 1usize << m_exp;
        let mut filter = HybridFilter::new(m);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, item) in items.iter().enumerate() {
            filter.insert(&item.to_be_bytes());
            let score = (i % 100) as f64 / 100.0;
            min = min.min(score);
            max = max.max(score);
        }
        let blob = BfhmBlob::new(filter, min, max);
        let codec = if golomb { BlobCodec::Golomb } else { BlobCodec::Raw };
        let decoded = BfhmBlob::decode(&blob.encode(codec)).unwrap();
        prop_assert_eq!(decoded, blob);
    }

    /// Bloom filters never produce false negatives.
    #[test]
    fn bloom_no_false_negatives(
        items in prop::collection::vec(any::<u64>(), 1..300),
        m_exp in 3u32..16,
    ) {
        let mut f = SingleHashBloom::new(1 << m_exp);
        for it in &items {
            f.insert(&it.to_be_bytes());
        }
        for it in &items {
            prop_assert!(f.contains(&it.to_be_bytes()));
        }
    }

    /// Every score lands inside its bucket's bounds, and bucket indices
    /// are monotonically decreasing in score.
    #[test]
    fn histogram_bucket_contains_score(
        score in 0.0f64..=1.0,
        buckets in 1u32..500,
    ) {
        let h = ScoreHistogram::new(buckets);
        let b = h.bucket_of(score);
        prop_assert!(b < buckets);
        let (lo, hi) = h.bounds(b);
        prop_assert!(score >= lo - 1e-9 && score <= hi + 1e-9,
            "score {score} outside bucket {b} [{lo}, {hi})");
    }

    #[test]
    fn histogram_monotone(
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
        buckets in 1u32..200,
    ) {
        let h = ScoreHistogram::new(buckets);
        if a > b {
            prop_assert!(h.bucket_of(a) <= h.bucket_of(b));
        }
    }

    /// Lemma 1: the uncompensated bucket-join estimate is always an upper
    /// bound on the true join cardinality.
    #[test]
    fn hybrid_join_estimate_is_upper_bound(
        left in prop::collection::vec(0u64..64, 0..120),
        right in prop::collection::vec(0u64..64, 0..120),
        m_exp in 4u32..12,
    ) {
        let m = 1usize << m_exp;
        let mut fl = HybridFilter::new(m);
        let mut fr = HybridFilter::new(m);
        for v in &left {
            fl.insert(&v.to_be_bytes());
        }
        for v in &right {
            fr.insert(&v.to_be_bytes());
        }
        let truth: u64 = left
            .iter()
            .map(|l| right.iter().filter(|r| *r == l).count() as u64)
            .sum();
        let est = fl.estimate_join_cardinality(&fr, AlphaMode::Off);
        prop_assert!(est >= truth as f64,
            "estimate {est} below true cardinality {truth}");
    }

    /// Removing everything inserted returns the filter to empty.
    #[test]
    fn hybrid_remove_inverts_insert(items in prop::collection::vec(0u64..50, 0..100)) {
        let mut f = HybridFilter::new(1 << 10);
        for v in &items {
            f.insert(&v.to_be_bytes());
        }
        for v in &items {
            prop_assert!(f.remove(&v.to_be_bytes()).is_some());
        }
        prop_assert_eq!(f.set_bit_count(), 0);
        prop_assert_eq!(f.n_inserted(), 0);
    }
}
