//! Micro-benchmarks of the PR-6 execution core: `FlatMultiMap` against a
//! `HashMap<Vec<u8>, Vec<u32>>` reference on build and probe, and batch
//! submission on the work-stealing pool against per-batch scoped threads.
//!
//! The probe shape mirrors the HRJN inner loop: for each incoming tuple,
//! look up every previously-seen partner with the same join value and
//! walk the group.

use std::collections::HashMap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use rj_sketch::FlatMultiMap;
use rj_store::WorkStealingPool;

const GROUPS: usize = 4_000;
const PER_GROUP: usize = 12;

fn pairs() -> Vec<(Vec<u8>, u32)> {
    (0..GROUPS * PER_GROUP)
        .map(|i| {
            let g = i % GROUPS;
            (format!("join-value-{g:06}").into_bytes(), i as u32)
        })
        .collect()
}

fn benches(c: &mut Criterion) {
    let pairs = pairs();

    c.bench_function("flatmap_build_48k", |bch| {
        bch.iter(|| FlatMultiMap::from_pairs(pairs.iter().map(|(k, v)| (k.as_slice(), *v))).len())
    });
    c.bench_function("hashmap_build_48k", |bch| {
        bch.iter(|| {
            let mut m: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
            for (k, v) in &pairs {
                m.entry(k.clone()).or_default().push(*v);
            }
            m.len()
        })
    });

    let flat = FlatMultiMap::from_pairs(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
    let mut hash: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
    for (k, v) in &pairs {
        hash.entry(k.clone()).or_default().push(*v);
    }
    c.bench_function("flatmap_probe_48k", |bch| {
        bch.iter(|| {
            let mut acc = 0u32;
            for (k, _) in pairs.iter().step_by(7) {
                acc = acc.wrapping_add(flat.get(k).copied().sum::<u32>());
            }
            acc
        })
    });
    c.bench_function("hashmap_probe_48k", |bch| {
        bch.iter(|| {
            let mut acc = 0u32;
            for (k, _) in pairs.iter().step_by(7) {
                if let Some(vs) = hash.get(k) {
                    acc = acc.wrapping_add(vs.iter().sum::<u32>());
                }
            }
            acc
        })
    });

    // Batch of 8 tiny tasks: persistent pool vs spawn-per-batch scope.
    let pool = WorkStealingPool::global();
    c.bench_function("pool_batch_8_tasks", |bch| {
        bch.iter(|| {
            let jobs: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..8u64)
                .map(|i| {
                    Box::new(move || black_box(i).wrapping_mul(0x9e37_79b9))
                        as Box<dyn FnOnce() -> u64 + Send + '_>
                })
                .collect();
            pool.run_batch(jobs).into_iter().sum::<u64>()
        })
    });
    c.bench_function("scoped_batch_8_tasks", |bch| {
        bch.iter(|| {
            let mut out = [0u64; 8];
            std::thread::scope(|scope| {
                for (i, slot) in out.iter_mut().enumerate() {
                    scope.spawn(move || {
                        *slot = black_box(i as u64).wrapping_mul(0x9e37_79b9);
                    });
                }
            });
            out.iter().sum::<u64>()
        })
    });
}

criterion_group!(flat_structures, benches);
criterion_main!(flat_structures);
