//! Ablation: Golomb compression of the BFHM blob (§5.1 calls it "an
//! integral part of our data structure").
//!
//! Measures encode/decode throughput and — via `iter_custom`-free
//! assertions printed once — the byte-size ratio between the Golomb and
//! raw wire formats at several bucket populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rj_sketch::blob::{BfhmBlob, BlobCodec};
use rj_sketch::hybrid::HybridFilter;

fn sample_blob(m: usize, items: u64) -> BfhmBlob {
    let mut f = HybridFilter::new(m);
    for i in 0..items {
        f.insert(&(i % (items / 2 + 1)).to_be_bytes());
    }
    BfhmBlob::new(f, 0.62, 0.69)
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_golomb");
    for &items in &[100u64, 1_000, 10_000] {
        let m = (items as usize) * 20; // 5% FPP sizing
        let blob = sample_blob(m, items);
        let golomb_len = blob.encode(BlobCodec::Golomb).len();
        let raw_len = blob.encode(BlobCodec::Raw).len();
        println!(
            "blob n={items} m={m}: golomb {golomb_len} B vs raw {raw_len} B ({:.1}x)",
            raw_len as f64 / golomb_len as f64
        );
        assert!(golomb_len < raw_len, "compression must pay off");

        group.bench_with_input(
            BenchmarkId::new("encode_golomb", items),
            &blob,
            |b, blob| b.iter(|| blob.encode(BlobCodec::Golomb).len()),
        );
        group.bench_with_input(BenchmarkId::new("encode_raw", items), &blob, |b, blob| {
            b.iter(|| blob.encode(BlobCodec::Raw).len())
        });
        let encoded = blob.encode(BlobCodec::Golomb);
        group.bench_with_input(
            BenchmarkId::new("decode_golomb", items),
            &encoded,
            |b, bytes| b.iter(|| BfhmBlob::decode(bytes).unwrap().filter.set_bit_count()),
        );
    }
    group.finish();
}

criterion_group!(ablation_golomb, benches);
criterion_main!(ablation_golomb);
