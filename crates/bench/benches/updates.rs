//! Online-update benchmarks (§6/§7.2): maintained-write throughput and
//! the eager-write-back query overhead.

use criterion::{criterion_group, criterion_main, Criterion};

use rj_bench::fixture::{Fixture, FixtureConfig, QuerySpec};
use rj_core::bfhm::maintenance::{BfhmMaintainer, WriteBackPolicy};
use rj_core::bfhm::{self, BfhmConfig};
use rj_core::maintenance::MaintainedSide;
use rj_store::keys;
use rj_tpch::loader;

const SF: f64 = 0.001;

fn benches(c: &mut Criterion) {
    let mut fixture = Fixture::load(FixtureConfig::lab(SF));
    fixture.prepare(QuerySpec::Q2);
    let query = QuerySpec::Q2.query(20);
    let bfhm_table = bfhm::index_table_name(&query);
    let isl_table = rj_core::isl::index_table_name(&query);

    let side = MaintainedSide::new(&fixture.cluster, query.left.clone())
        .with_isl(&isl_table)
        .with_bfhm(BfhmMaintainer::attach(&fixture.cluster, &bfhm_table, "O").unwrap());

    let mut group = c.benchmark_group("updates");
    group.sample_size(20);
    let mut next_key = 10_000_000u64;
    group.bench_function("maintained_insert(base+ISL+BFHM)", |b| {
        b.iter(|| {
            next_key += 1;
            side.insert(
                &loader::rowkeys::order(next_key),
                &keys::encode_u64(next_key),
                0.5,
                vec![],
            )
            .unwrap()
        })
    });
    group.bench_function("bfhm_query_eager_writeback", |b| {
        b.iter(|| {
            bfhm::run(
                &fixture.cluster,
                &query,
                &bfhm_table,
                &BfhmConfig::with_buckets(fixture.config.bfhm_buckets),
                WriteBackPolicy::Eager,
            )
            .unwrap()
            .results
            .len()
        })
    });
    group.finish();
}

criterion_group!(updates, benches);
criterion_main!(updates);
