//! Ablation: single-hash vs classic k-hash Bloom filters (§5.1).
//!
//! The BFHM pays a false-positive premium for single-hash filters because
//! only those admit position→value reverse mapping. This bench quantifies
//! the premium: insert/query throughput plus (printed) measured FPP at
//! equal space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rj_sketch::bloom::{ClassicBloom, SingleHashBloom};

fn benches(c: &mut Criterion) {
    let n = 10_000u64;
    let m = 200_000; // 20 bits/key

    // Measured FPP at equal space.
    let mut single = SingleHashBloom::new(m);
    let mut classic = ClassicBloom::new(m, 7);
    for i in 0..n {
        single.insert(&i.to_be_bytes());
        classic.insert(&i.to_be_bytes());
    }
    let probes = 100_000u64;
    let fp_single = (0..probes)
        .filter(|i| single.contains(&(i + (1 << 40)).to_be_bytes()))
        .count() as f64
        / probes as f64;
    let fp_classic = (0..probes)
        .filter(|i| classic.contains(&(i + (1 << 40)).to_be_bytes()))
        .count() as f64
        / probes as f64;
    println!(
        "equal space m={m}, n={n}: single-hash FPP {fp_single:.4} vs 7-hash FPP {fp_classic:.6} \
         (the reverse-mapping premium)"
    );

    let mut group = c.benchmark_group("ablation_bloom");
    for (name, k) in [("single_hash", 1u32), ("classic_k7", 7)] {
        group.bench_with_input(BenchmarkId::new("insert", name), &k, |b, &k| {
            b.iter(|| {
                if k == 1 {
                    let mut f = SingleHashBloom::new(m);
                    for i in 0..1000u64 {
                        f.insert(&i.to_be_bytes());
                    }
                    f.m()
                } else {
                    let mut f = ClassicBloom::new(m, k);
                    for i in 0..1000u64 {
                        f.insert(&i.to_be_bytes());
                    }
                    f.m()
                }
            })
        });
    }
    group.bench_function("contains/single_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            single.contains(&i.to_be_bytes())
        })
    });
    group.bench_function("contains/classic_k7", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            classic.contains(&i.to_be_bytes())
        })
    });
    group.finish();
}

criterion_group!(ablation_bloom, benches);
criterion_main!(ablation_bloom);
