//! Wall-clock query-time benchmarks — the Criterion counterpart of the
//! simulated-time columns of Figures 7(a,d) and 8(a,d).
//!
//! One Criterion group per (query, profile); one benchmark per algorithm
//! at k=50. The *simulated* metrics live in the `experiments` binary;
//! these wall-clock numbers mostly confirm that the coordinator
//! algorithms do radically less work than the MapReduce ones.

use criterion::{criterion_group, criterion_main, Criterion};

use rj_bench::fixture::{Fixture, FixtureConfig, QuerySpec};
use rj_core::executor::Algorithm;

const SF: f64 = 0.001;
const K: usize = 50;

fn bench_profile(c: &mut Criterion, label: &str, config: FixtureConfig) {
    let mut fixture = Fixture::load(config);
    fixture.prepare(QuerySpec::Q1);
    fixture.prepare(QuerySpec::Q2);
    for spec in [QuerySpec::Q1, QuerySpec::Q2] {
        let mut group = c.benchmark_group(format!("query_time/{label}/{}", spec.name()));
        group.sample_size(10);
        for algo in Algorithm::ALL {
            group.bench_function(algo.name(), |b| {
                b.iter(|| {
                    let outcome = fixture.run(spec, algo, K);
                    assert!(!outcome.results.is_empty());
                    outcome.results.len()
                })
            });
        }
        group.finish();
    }
}

fn benches(c: &mut Criterion) {
    bench_profile(c, "ec2", FixtureConfig::ec2(SF));
    bench_profile(c, "lab", FixtureConfig::lab(SF));
}

criterion_group!(query_time, benches);
criterion_main!(query_time);
