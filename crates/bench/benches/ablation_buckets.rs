//! Ablation: BFHM bucket count (the paper runs 100/500/1000 — §7.1).
//! More buckets → tighter score bounds (fewer tuples fetched) but more
//! bucket-row gets. Prints the simulated metrics per variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rj_bench::fixture::{FixtureConfig, QuerySpec};
use rj_core::bfhm::{self, maintenance::WriteBackPolicy, BfhmConfig};
use rj_mapreduce::MapReduceEngine;
use rj_store::cluster::Cluster;
use rj_tpch::{loader, TpchConfig};

const SF: f64 = 0.001;
const K: usize = 50;

fn benches(c: &mut Criterion) {
    let config = FixtureConfig::ec2(SF);
    let query = QuerySpec::Q2.query(K);

    let mut group = c.benchmark_group("ablation_bfhm_buckets");
    group.sample_size(10);
    for &buckets in &[10u32, 100, 500] {
        let cluster = Cluster::with_profile(config.cost.clone());
        loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
        let engine = MapReduceEngine::new(cluster.clone());
        let cfg = BfhmConfig::with_buckets(buckets);
        let table = format!("bfhm_{buckets}");
        bfhm::build_pair(&engine, &query, &table, &cfg).unwrap();

        let outcome = bfhm::run(&cluster, &query, &table, &cfg, WriteBackPolicy::Off).unwrap();
        println!(
            "buckets={buckets}: sim {:.4}s, {} kv reads, {} bytes, {} bucket gets, {} reverse rows",
            outcome.metrics.sim_seconds,
            outcome.metrics.kv_reads,
            outcome.metrics.network_bytes,
            outcome.extra("bucket_gets").unwrap_or(0.0),
            outcome.extra("reverse_rows_fetched").unwrap_or(0.0),
        );
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, _| {
            b.iter(|| {
                bfhm::run(&cluster, &query, &table, &cfg, WriteBackPolicy::Off)
                    .unwrap()
                    .results
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(ablation_buckets, benches);
criterion_main!(ablation_buckets);
