//! Wall-clock index-build benchmarks — the Criterion counterpart of
//! Figure 9.

use criterion::{criterion_group, criterion_main, Criterion};

use rj_bench::fixture::{FixtureConfig, QuerySpec};
use rj_core::bfhm::BfhmConfig;
use rj_core::drjn::DrjnConfig;
use rj_core::{bfhm, drjn, ijlmr, isl};
use rj_mapreduce::MapReduceEngine;
use rj_store::cluster::Cluster;
use rj_tpch::{loader, TpchConfig};

const SF: f64 = 0.001;

fn benches(c: &mut Criterion) {
    let config = FixtureConfig::ec2(SF);
    let query = QuerySpec::Q1.query(10);
    let mut group = c.benchmark_group("indexing/Q1");
    group.sample_size(10);

    // Each iteration builds onto a fresh cluster: include the load so the
    // measured unit is self-contained, but report per-build names.
    group.bench_function("IJLMR", |b| {
        b.iter(|| {
            let cluster = Cluster::with_profile(config.cost.clone());
            loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
            let engine = MapReduceEngine::new(cluster);
            ijlmr::build(&engine, &query, "idx").unwrap().index_bytes
        })
    });
    group.bench_function("ISL", |b| {
        b.iter(|| {
            let cluster = Cluster::with_profile(config.cost.clone());
            loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
            let engine = MapReduceEngine::new(cluster);
            isl::build(&engine, &query, "idx").unwrap().index_bytes
        })
    });
    group.bench_function("BFHM", |b| {
        b.iter(|| {
            let cluster = Cluster::with_profile(config.cost.clone());
            loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
            let engine = MapReduceEngine::new(cluster);
            bfhm::build_pair(&engine, &query, "idx", &BfhmConfig::with_buckets(100))
                .unwrap()
                .0
                .index_bytes
        })
    });
    group.bench_function("DRJN", |b| {
        b.iter(|| {
            let cluster = Cluster::with_profile(config.cost.clone());
            loader::load_all(&cluster, &TpchConfig::new(SF)).unwrap();
            let engine = MapReduceEngine::new(cluster);
            drjn::build_pair(&engine, &query, "idx", &DrjnConfig::with_buckets(100))
                .unwrap()
                .index_bytes
        })
    });
    group.finish();
}

criterion_group!(indexing, benches);
criterion_main!(indexing);
