//! Ablation: ISL batch (row-cache) size — the §4.2.3 time vs
//! bandwidth/dollar trade-off. Also prints the simulated metrics per
//! batch size so the trade-off direction is visible in the bench log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rj_bench::fixture::{Fixture, FixtureConfig, QuerySpec};
use rj_core::isl::{self, IslConfig};

const SF: f64 = 0.001;
const K: usize = 50;

fn benches(c: &mut Criterion) {
    let mut fixture = Fixture::load(FixtureConfig::ec2(SF));
    fixture.prepare(QuerySpec::Q2);
    let query = QuerySpec::Q2.query(K);
    let table = isl::index_table_name(&query);

    let mut group = c.benchmark_group("ablation_isl_batch");
    group.sample_size(10);
    for &batch in &[1usize, 8, 64, 512] {
        let outcome =
            isl::run(&fixture.cluster, &query, &table, IslConfig::uniform(batch)).unwrap();
        println!(
            "batch={batch}: sim {:.4}s, {} rpc, {} kv reads, {} bytes",
            outcome.metrics.sim_seconds,
            outcome.metrics.rpc_calls,
            outcome.metrics.kv_reads,
            outcome.metrics.network_bytes
        );
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                isl::run(&fixture.cluster, &query, &table, IslConfig::uniform(batch))
                    .unwrap()
                    .results
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(ablation_batch, benches);
criterion_main!(ablation_batch);
