//! Micro-benchmarks of the sketch substrate: bit vectors, Golomb coding,
//! hybrid-filter bucket joins — the inner loops of BFHM query processing.

use criterion::{criterion_group, criterion_main, Criterion};

use rj_sketch::bitvec::BitVec;
use rj_sketch::golomb::{decode_sorted_positions, encode_sorted_positions};
use rj_sketch::hybrid::{AlphaMode, HybridFilter};

fn benches(c: &mut Criterion) {
    // Bitwise AND of two 1Mbit vectors (Algorithm 7 line 4).
    let mut a = BitVec::new(1 << 20);
    let mut b = BitVec::new(1 << 20);
    for i in (0..1 << 20).step_by(37) {
        a.set(i);
    }
    for i in (0..1 << 20).step_by(53) {
        b.set(i);
    }
    c.bench_function("bitvec_and_1Mbit", |bch| {
        bch.iter(|| a.and(&b).count_ones())
    });

    // Golomb round trip of 10k positions.
    let positions: Vec<u64> = (0..10_000u64).map(|i| i * 97 + (i % 13)).collect();
    c.bench_function("golomb_encode_10k", |bch| {
        bch.iter(|| encode_sorted_positions(&positions).1.len())
    });
    let (k, bytes) = encode_sorted_positions(&positions);
    c.bench_function("golomb_decode_10k", |bch| {
        bch.iter(|| {
            decode_sorted_positions(&bytes, positions.len(), k)
                .unwrap()
                .len()
        })
    });

    // Hybrid-filter bucket join (cardinality estimation).
    let mut left = HybridFilter::new(1 << 18);
    let mut right = HybridFilter::new(1 << 18);
    for i in 0..5_000u64 {
        left.insert(&i.to_be_bytes());
        right.insert(&(i + 2_500).to_be_bytes());
    }
    c.bench_function("hybrid_bucket_join_5k", |bch| {
        bch.iter(|| left.estimate_join_cardinality(&right, AlphaMode::Compensated))
    });

    c.bench_function("hybrid_insert", |bch| {
        let mut f = HybridFilter::new(1 << 18);
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            f.insert(&i.to_be_bytes())
        })
    });
}

criterion_group!(sketch_micro, benches);
criterion_main!(sketch_micro);
