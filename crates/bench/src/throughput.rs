//! Concurrent-query throughput harness.
//!
//! Ranked-enumeration work (Tziavelis et al.; "Optimal Join Algorithms
//! Meet Top-k") treats top-k join processing as a *serving* problem: the
//! interesting number is sustained result throughput under concurrent
//! load, not one query's latency. This harness spawns N client threads
//! firing a mixed rank-join workload — both evaluation queries (sum and
//! product score functions, different join selectivities), a `k` sweep,
//! both coordinator algorithms (ISL and BFHM), and a planner-driven AUTO
//! lane — against **one shared cluster**, once per execution mode.
//!
//! Clients run as tasks on the process-wide
//! [`rj_store::WorkStealingPool`] — the same scheduler their queries fan
//! out on — so the harness measures the execution core it ships: client
//! tasks submit nested parallel rounds from inside pool workers, and the
//! pool's help-first join keeps the whole mix deadlock-free at machine
//! width. Each client forks the cluster's metric ledger
//! ([`rj_store::Cluster::fork_metrics`]), so per-query latency is measured
//! on an isolated ledger while the data and region servers are shared.
//! Time is the simulator's modelled time: a thread's busy time is the sum
//! of its queries' wall-clock latencies, the harness wall-clock is the
//! busiest thread, and queries/sec follows from that — deterministic
//! across runs, unlike host-machine timing. Every query result is checked
//! against the oracle, so the harness doubles as a concurrency stress
//! test.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use rj_core::bfhm::{self, maintenance::WriteBackPolicy, BfhmConfig};
use rj_core::executor::{Algorithm, RankJoinExecutor};
use rj_core::isl::{self, IslConfig};
use rj_core::oracle;
use rj_core::result::JoinTuple;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_store::parallel::{default_lane_backend, set_default_lane_backend, ExecutionMode};
use rj_store::{LaneBackend, WorkStealingPool};

use crate::fixture::{Fixture, FixtureConfig, QuerySpec};
use crate::report::{fmt_dollars, fmt_seconds, json_escape, Table};

/// Harness parameters.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// TPC-H scale factor (laptop-scaled).
    pub scale_factor: f64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Queries each client fires.
    pub queries_per_client: usize,
    /// Worker-pool width of the parallel execution mode under test.
    pub workers: usize,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            scale_factor: 0.001,
            clients: 8,
            queries_per_client: 16,
            workers: 4,
        }
    }
}

/// One workload item: which query, which k, which algorithm.
#[derive(Clone, Copy, Debug)]
struct WorkItem {
    spec: QuerySpec,
    k: usize,
    algo: Algorithm,
}

/// The `k` that stands for "enumerate every result in rank order" — the
/// any-k workload of the ranked-enumeration literature. Large enough that
/// no join can ever fill the top-k buffer, which is also what lets the
/// parallel ISL path prove all reads unconditional and fan them out.
pub const K_ENUMERATE: usize = usize::MAX / 2;

/// The mixed workload, a deterministic cycle over every (query, k,
/// algorithm) combination: Q1/Q2 (product vs sum scoring, Part-key vs
/// Order-key join selectivity) × k in point lookups {1, 10, 50} plus
/// full ranked enumeration × {ISL, BFHM, AUTO}. The AUTO lane exercises
/// the cost-based planner under concurrency: each client plans through
/// its own executor (plan cache and all) and runs whatever the planner
/// picks. Positions walk the 24-combo space through a bijective scramble
/// (`n * 11 mod 24`; 11 is coprime to 24), so any 24 consecutive items
/// cover all combinations exactly once and even short windows mix
/// algorithms and k values.
fn workload(queries: usize, offset: usize) -> Vec<WorkItem> {
    const K_MIX: [usize; 4] = [1, 10, 50, K_ENUMERATE];
    const ALGO_MIX: [Algorithm; 3] = [Algorithm::Isl, Algorithm::Bfhm, Algorithm::Auto];
    (0..queries)
        .map(|i| {
            let m = ((offset + i) * 11) % 24;
            WorkItem {
                spec: if m.is_multiple_of(2) {
                    QuerySpec::Q1
                } else {
                    QuerySpec::Q2
                },
                k: K_MIX[(m / 2) % K_MIX.len()],
                algo: ALGO_MIX[m / 8],
            }
        })
        .collect()
}

/// Aggregated results of one mode's run.
#[derive(Clone, Debug)]
pub struct ModeStats {
    /// Execution-mode label ("serial", "parallel(4)").
    pub mode: String,
    /// Total queries completed (all of them oracle-verified).
    pub queries: usize,
    /// Queries per simulated second: `queries / wall_sim_seconds`.
    pub qps: f64,
    /// Simulated harness wall-clock: the busiest client thread's total.
    pub wall_sim_seconds: f64,
    /// Median per-query simulated latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query simulated latency, milliseconds.
    pub p99_ms: f64,
    /// Total node-seconds across all queries (mode-independent).
    pub node_seconds: f64,
    /// Total KV read units (the dollar-cost driver). Equal across modes
    /// for the pinned-algorithm lanes; the AUTO lane's mode-aware planner
    /// may legitimately choose a different algorithm per mode, shifting
    /// the total.
    pub kv_reads: u64,
    /// Total cross-node bytes (same caveat as `kv_reads`).
    pub network_bytes: u64,
    /// KV read units of the pinned-algorithm (non-AUTO) lanes only —
    /// these lanes run the *same* algorithm in both modes, so this is the
    /// observable the counted-metric equivalence contract is asserted on.
    pub pinned_kv_reads: u64,
    /// Cross-node bytes of the pinned-algorithm lanes only.
    pub pinned_network_bytes: u64,
    /// Dollar cost of the run's reads.
    pub dollars: f64,
    /// Host-machine seconds the run took (informational only).
    pub real_seconds: f64,
}

/// Before/after comparison of the parallel mode on the shipped
/// work-stealing pool vs the previous per-round scoped-thread lane
/// structure. Simulated numbers (`qps_delta`, `p99_delta_ms`) must be ~0
/// — modelled time is substrate-independent by construction, and this
/// field is the per-PR regression proof of that; the `real_seconds` pair
/// shows what the host actually paid on each substrate.
#[derive(Clone, Debug)]
pub struct PoolComparison {
    /// Simulated qps of the parallel run on the work-stealing pool.
    pub pool_qps: f64,
    /// Simulated qps of the same run on per-round scoped threads.
    pub scoped_qps: f64,
    /// `pool_qps - scoped_qps` — ~0 unless the substrate leaked into the
    /// model.
    pub qps_delta: f64,
    /// Simulated p99 latency on the pool, milliseconds.
    pub pool_p99_ms: f64,
    /// `pool_p99_ms - scoped_p99_ms` — same invariant as `qps_delta`.
    pub p99_delta_ms: f64,
    /// Host seconds of the pool-backed run (informational).
    pub pool_real_seconds: f64,
    /// Host seconds of the scoped-thread run (informational).
    pub scoped_real_seconds: f64,
}

impl PoolComparison {
    fn new(pool: &ModeStats, scoped: &ModeStats) -> Self {
        PoolComparison {
            pool_qps: pool.qps,
            scoped_qps: scoped.qps,
            qps_delta: pool.qps - scoped.qps,
            pool_p99_ms: pool.p99_ms,
            p99_delta_ms: pool.p99_ms - scoped.p99_ms,
            pool_real_seconds: pool.real_seconds,
            scoped_real_seconds: scoped.real_seconds,
        }
    }
}

/// The full harness report.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Parameters the harness ran with.
    pub config: ThroughputConfig,
    /// Worker nodes in the simulated cluster.
    pub cluster_nodes: usize,
    /// Per-mode aggregates, serial first (both on the shipped pool).
    pub modes: Vec<ModeStats>,
    /// Parallel mode re-run on the previous scoped-thread lane structure.
    pub pool_vs_scoped: PoolComparison,
}

impl ThroughputReport {
    /// Parallel-over-serial queries/sec ratio.
    pub fn speedup(&self) -> f64 {
        match (self.modes.first(), self.modes.last()) {
            (Some(serial), Some(parallel)) if self.modes.len() == 2 && serial.qps > 0.0 => {
                parallel.qps / serial.qps
            }
            _ => f64::NAN,
        }
    }

    /// Renders the report as an experiment table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Concurrent-query throughput ({} clients x {} queries, {} nodes, SF={})",
                self.config.clients,
                self.config.queries_per_client,
                self.cluster_nodes,
                self.config.scale_factor
            ),
            &[
                "mode", "queries", "qps(sim)", "p50", "p99", "sim wall", "node-sec", "kv reads",
                "dollars",
            ],
        );
        for m in &self.modes {
            t.row(vec![
                m.mode.clone(),
                m.queries.to_string(),
                format!("{:.2}", m.qps),
                fmt_seconds(m.p50_ms / 1e3),
                fmt_seconds(m.p99_ms / 1e3),
                fmt_seconds(m.wall_sim_seconds),
                fmt_seconds(m.node_seconds),
                m.kv_reads.to_string(),
                fmt_dollars(m.dollars),
            ]);
        }
        t
    }

    /// Machine-readable JSON (the `BENCH_throughput.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"throughput\",\n");
        out.push_str(&format!(
            "  \"scale_factor\": {}, \"clients\": {}, \"queries_per_client\": {}, \
             \"workers\": {}, \"cluster_nodes\": {},\n",
            self.config.scale_factor,
            self.config.clients,
            self.config.queries_per_client,
            self.config.workers,
            self.cluster_nodes
        ));
        let speedup = if self.speedup().is_finite() {
            format!("{:.4}", self.speedup())
        } else {
            "null".to_owned() // NaN is not valid JSON
        };
        out.push_str(&format!("  \"speedup\": {speedup},\n"));
        let c = &self.pool_vs_scoped;
        out.push_str(&format!(
            "  \"pool_vs_scoped\": {{\"pool_qps\": {:.4}, \"scoped_qps\": {:.4}, \
             \"qps_delta\": {:.4}, \"pool_p99_ms\": {:.4}, \"p99_delta_ms\": {:.4}, \
             \"pool_real_seconds\": {:.3}, \"scoped_real_seconds\": {:.3}}},\n",
            c.pool_qps,
            c.scoped_qps,
            c.qps_delta,
            c.pool_p99_ms,
            c.p99_delta_ms,
            c.pool_real_seconds,
            c.scoped_real_seconds
        ));
        out.push_str("  \"modes\": [\n");
        let rows: Vec<String> = self
            .modes
            .iter()
            .map(|m| {
                format!(
                    "    {{\"mode\": \"{}\", \"queries\": {}, \"qps\": {:.4}, \
                     \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"wall_sim_seconds\": {:.6}, \
                     \"node_seconds\": {:.6}, \"kv_reads\": {}, \"network_bytes\": {}, \
                     \"pinned_kv_reads\": {}, \"pinned_network_bytes\": {}, \
                     \"dollars\": {:.8}, \"real_seconds\": {:.3}}}",
                    json_escape(&m.mode),
                    m.queries,
                    m.qps,
                    m.p50_ms,
                    m.p99_ms,
                    m.wall_sim_seconds,
                    m.node_seconds,
                    m.kv_reads,
                    m.network_bytes,
                    m.pinned_kv_reads,
                    m.pinned_network_bytes,
                    m.dollars,
                    m.real_seconds
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Builds the AUTO-lane executor for one spec on a forked ledger: adopts
/// the fixture's shared ISL and BFHM indices (no rebuild) and the
/// fixture executor's shared statistics handle, then lets the cost-based
/// planner choose per query. Sharing the handle means the whole harness
/// collects statistics once per query pair instead of once per client
/// thread — and maintained writes (if any) invalidate every fork's plans
/// coherently. Planning statistics come from the metric-free admin path,
/// so the lane's measured latency is the chosen algorithm's latency.
fn auto_executor(
    fork: &Cluster,
    fixture: &Fixture,
    spec: QuerySpec,
    mode: ExecutionMode,
) -> RankJoinExecutor {
    let query = spec.query(10);
    let mut ex = RankJoinExecutor::new(fork, query.clone());
    ex.isl_config = IslConfig::uniform(fixture.config.isl_batch);
    ex.execution_mode = mode;
    ex.attach_isl(&isl::index_table_name(&query)).expect("isl");
    ex.attach_bfhm(
        &bfhm::index_table_name(&query),
        BfhmConfig::with_buckets(fixture.config.bfhm_buckets),
    )
    .expect("bfhm");
    ex.attach_stats(fixture.executor(spec).stats_handle())
        .expect("stats handle describes the same query pair");
    ex
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One client's share of the workload: fires `queries_per_client` queries
/// at the shared cluster on a forked ledger, verifying each against the
/// oracle. Returns `(latencies, ledger snapshot, pinned reads, pinned
/// bytes)`.
fn run_client(
    fixture: &Fixture,
    cfg: &ThroughputConfig,
    mode: ExecutionMode,
    oracles: &[((QuerySpec, usize), Vec<JoinTuple>)],
    client_id: usize,
) -> (Vec<f64>, rj_store::MetricsSnapshot, u64, u64) {
    let fork = fixture.cluster.fork_metrics();
    let mut auto_execs: HashMap<QuerySpec, RankJoinExecutor> = HashMap::new();
    let mut latencies = Vec::with_capacity(cfg.queries_per_client);
    let (mut pinned_reads, mut pinned_bytes) = (0u64, 0u64);
    for item in workload(cfg.queries_per_client, client_id) {
        let query = item.spec.query(item.k);
        let outcome = match item.algo {
            Algorithm::Isl => isl::run_with_mode(
                &fork,
                &query,
                &isl::index_table_name(&query),
                IslConfig::uniform(fixture.config.isl_batch),
                mode,
            ),
            Algorithm::Bfhm => bfhm::run_with_mode(
                &fork,
                &query,
                &bfhm::index_table_name(&query),
                &BfhmConfig::with_buckets(fixture.config.bfhm_buckets),
                WriteBackPolicy::Off,
                mode,
            ),
            Algorithm::Auto => auto_execs
                .entry(item.spec)
                .or_insert_with(|| auto_executor(&fork, fixture, item.spec, mode))
                .execute_with_k(Algorithm::Auto, item.k),
            other => unreachable!("workload never schedules {other:?}"),
        }
        .unwrap_or_else(|e| panic!("{:?} {item:?}: {e}", mode));
        let want = &oracles
            .iter()
            .find(|(key, _)| *key == (item.spec, item.k))
            .expect("oracle precomputed")
            .1;
        assert_eq!(
            &outcome.results, want,
            "client {client_id} got a wrong answer for {item:?} under {mode:?}"
        );
        latencies.push(outcome.metrics.sim_seconds);
        if item.algo != Algorithm::Auto {
            pinned_reads += outcome.metrics.kv_reads;
            pinned_bytes += outcome.metrics.network_bytes;
        }
    }
    (
        latencies,
        fork.metrics().snapshot(),
        pinned_reads,
        pinned_bytes,
    )
}

/// Runs the full workload once under `mode` against a prepared fixture,
/// with real execution (clients *and* their queries' lane fan-out) on the
/// given substrate.
fn run_mode(
    fixture: &Fixture,
    cfg: &ThroughputConfig,
    mode: ExecutionMode,
    oracles: &[((QuerySpec, usize), Vec<JoinTuple>)],
    backend: LaneBackend,
) -> ModeStats {
    let started = Instant::now();
    // Route the queries' inner `run_lanes` rounds through the same
    // substrate as the clients for the duration of this run. Harmless to
    // anything running concurrently: both substrates are result- and
    // metric-identical.
    let previous_backend = default_lane_backend();
    set_default_lane_backend(backend);
    // What one client hands back: per-query latencies, its forked metric
    // ledger, and the pinned-lane read/byte totals.
    type ClientOut = (Vec<f64>, rj_store::MetricsSnapshot, u64, u64);
    let per_thread: Vec<ClientOut> = match backend {
        LaneBackend::Pool => {
            // Clients are tasks on the shared pool — the serving shape the
            // harness ships: nested submits (a client's parallel query
            // fanning out from inside a pool worker) are the normal case.
            let jobs = (0..cfg.clients)
                .map(|client_id| {
                    let job: Box<dyn FnOnce() -> ClientOut + Send + '_> =
                        Box::new(move || run_client(fixture, cfg, mode, oracles, client_id));
                    job
                })
                .collect();
            WorkStealingPool::global().run_batch(jobs)
        }
        LaneBackend::ScopedThreads => {
            // The pre-pool client loop: one OS thread per client.
            let results: Mutex<Vec<(usize, ClientOut)>> = Mutex::new(Vec::new());
            // rjlint: allow(thread-discipline) — this lane IS the scoped-thread
            // baseline the pool is benchmarked against; keep it off-pool.
            std::thread::scope(|scope| {
                for client_id in 0..cfg.clients {
                    let results = &results;
                    scope.spawn(move || {
                        let out = run_client(fixture, cfg, mode, oracles, client_id);
                        results
                            .lock()
                            .expect("per-thread results poisoned")
                            .push((client_id, out));
                    });
                }
            });
            let mut results = results.into_inner().expect("per-thread results poisoned");
            results.sort_by_key(|(id, _)| *id);
            results.into_iter().map(|(_, out)| out).collect()
        }
    };
    set_default_lane_backend(previous_backend);

    let mut all: Vec<f64> = Vec::new();
    let mut wall = 0.0f64;
    let mut node_seconds = 0.0f64;
    let mut kv_reads = 0u64;
    let mut network_bytes = 0u64;
    let mut pinned_kv_reads = 0u64;
    let mut pinned_network_bytes = 0u64;
    for (latencies, snapshot, pinned_reads, pinned_bytes) in &per_thread {
        wall = wall.max(latencies.iter().sum());
        all.extend(latencies);
        node_seconds += snapshot.node_seconds;
        kv_reads += snapshot.kv_reads;
        network_bytes += snapshot.network_bytes;
        pinned_kv_reads += pinned_reads;
        pinned_network_bytes += pinned_bytes;
    }
    all.sort_by(f64::total_cmp);
    let queries = all.len();
    ModeStats {
        mode: mode.label(),
        queries,
        qps: if wall > 0.0 {
            queries as f64 / wall
        } else {
            0.0
        },
        wall_sim_seconds: wall,
        p50_ms: percentile(&all, 0.50) * 1e3,
        p99_ms: percentile(&all, 0.99) * 1e3,
        node_seconds,
        kv_reads,
        network_bytes,
        pinned_kv_reads,
        pinned_network_bytes,
        dollars: fixture.config.cost.dollars(kv_reads),
        real_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Loads the fixture, builds indices, and runs the workload under
/// `Serial` and `Parallel { workers }`, returning the comparison.
pub fn run_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let mut fixture_config = FixtureConfig::ec2(cfg.scale_factor);
    fixture_config.cost = CostModel::ec2(4);
    let mut fixture = Fixture::load(fixture_config);
    fixture.prepare(QuerySpec::Q1);
    fixture.prepare(QuerySpec::Q2);

    // Precompute the expected answer of every (query, k) combination once;
    // worker threads verify against it.
    let mut oracles = Vec::new();
    for item in workload(cfg.clients.max(6) * cfg.queries_per_client, 0) {
        if !oracles.iter().any(|(key, _)| *key == (item.spec, item.k)) {
            let want = oracle::topk(&fixture.cluster, &item.spec.query(item.k)).expect("oracle");
            oracles.push(((item.spec, item.k), want));
        }
    }

    let cluster_nodes = fixture.cluster.num_nodes();
    let parallel = ExecutionMode::Parallel {
        workers: cfg.workers,
    };
    let modes = vec![
        run_mode(
            &fixture,
            cfg,
            ExecutionMode::Serial,
            &oracles,
            LaneBackend::Pool,
        ),
        run_mode(&fixture, cfg, parallel, &oracles, LaneBackend::Pool),
    ];
    // Before/after: the same parallel workload on the previous per-round
    // scoped-thread lane structure. Its simulated numbers must match the
    // pool run's — the comparison field in the JSON artifact is the
    // regression gate for that.
    let scoped = run_mode(
        &fixture,
        cfg,
        parallel,
        &oracles,
        LaneBackend::ScopedThreads,
    );
    let pool_vs_scoped = PoolComparison::new(&modes[1], &scoped);
    ThroughputReport {
        config: cfg.clone(),
        cluster_nodes,
        modes,
        pool_vs_scoped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_covers_every_combination() {
        // One full cycle hits all 2 x 4 x 3 (query, k, algorithm) combos —
        // in particular ISL with k = K_ENUMERATE (the parallel fast path),
        // BFHM at every point-lookup k, and the planner-driven AUTO lane
        // on both queries.
        let combos: std::collections::BTreeSet<(String, usize, &str)> = workload(24, 0)
            .iter()
            .map(|i| (i.spec.name().to_owned(), i.k, i.algo.name()))
            .collect();
        assert_eq!(combos.len(), 24, "workload axes must be decorrelated");
        assert!(combos.contains(&("Q1".to_owned(), K_ENUMERATE, "ISL")));
        assert!(combos.contains(&("Q2".to_owned(), 1, "BFHM")));
        assert!(combos.contains(&("Q1".to_owned(), 10, "AUTO")));
        assert!(combos.contains(&("Q2".to_owned(), K_ENUMERATE, "AUTO")));
        // Different offsets shift the cycle so threads interleave kinds.
        assert_ne!(workload(1, 0)[0].spec, workload(1, 1)[0].spec);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// The PR's acceptance criterion: at tiny scale on a 4-node cluster,
    /// `Parallel { workers: 4 }` sustains at least 2x the queries/sec of
    /// `Serial`, with identical aggregate reads and bytes.
    #[test]
    fn parallel_at_least_doubles_throughput() {
        let cfg = ThroughputConfig {
            scale_factor: 0.0005,
            clients: 4,
            // One full 24-combo cycle per client, so every thread carries a
            // balanced mix of point lookups, enumerations, and AUTO lanes.
            queries_per_client: 24,
            workers: 4,
        };
        let report = run_throughput(&cfg);
        let serial = &report.modes[0];
        let parallel = &report.modes[1];
        assert_eq!(serial.queries, 96);
        assert_eq!(parallel.queries, 96);
        // The counted-metric equivalence contract holds per algorithm:
        // lanes pinned to ISL/BFHM read and ship exactly the same in both
        // modes. The AUTO lane's planner is mode-aware (parallel fan-out
        // makes BFHM's reverse gets cheaper in predicted *time*), so it
        // may legitimately pick a different algorithm per mode and shift
        // the aggregate totals.
        assert_eq!(
            parallel.pinned_kv_reads, serial.pinned_kv_reads,
            "mode must not change what a pinned algorithm reads"
        );
        assert_eq!(
            parallel.pinned_network_bytes, serial.pinned_network_bytes,
            "mode must not change what a pinned algorithm ships"
        );
        assert!(
            report.speedup() >= 2.0,
            "parallel(4) qps {:.2} is less than 2x serial qps {:.2} (speedup {:.2})",
            parallel.qps,
            serial.qps,
            report.speedup()
        );
        // The substrate swap must be invisible in simulated numbers: the
        // pool-vs-scoped comparison is the per-PR proof that the
        // work-stealing pool changed host time only.
        let c = &report.pool_vs_scoped;
        assert!(
            c.qps_delta.abs() < 1e-6,
            "pool qps {:.4} diverged from scoped qps {:.4}",
            c.pool_qps,
            c.scoped_qps
        );
        assert!(
            c.p99_delta_ms.abs() < 1e-6,
            "pool p99 {:.4}ms diverged from scoped p99 {:.4}ms",
            c.pool_p99_ms,
            c.pool_p99_ms - c.p99_delta_ms
        );
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"throughput\""));
        assert!(json.contains("\"modes\""));
        assert!(json.contains("\"pool_vs_scoped\""));
        assert!(json.contains("\"qps_delta\""));
    }
}
