//! The `pool` experiment: host-time microbenchmarks of the execution
//! core, so substrate regressions are visible per PR.
//!
//! Two measurements, both on the real machine clock (everything else in
//! the harness is simulated time; the execution core is precisely the
//! part whose *host* cost the pool refactor changes):
//!
//! * **lane substrate** — the same multi-region `run_lanes` round driven
//!   on the persistent work-stealing pool vs the previous per-round
//!   `std::thread::scope` lane pool, reporting host rounds/sec for each.
//!   The simulated wall-clock of both runs is also emitted and must be
//!   equal — modelled time is substrate-independent by construction.
//! * **flat structures** — `FlatMultiMap` vs `HashMap<Vec<u8>, Vec<u64>>`
//!   build and probe over the same key distribution, reporting host
//!   milliseconds per pass (the criterion micros in
//!   `benches/flat_structures.rs` measure the same pair with proper
//!   statistics; this is the quick per-PR smoke number).

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use rj_sketch::FlatMultiMap;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_store::parallel::{run_lanes_on, LaneTask};
use rj_store::{keys, LaneBackend, Mutation, Scan, WorkStealingPool};

use crate::report::Table;

/// `pool` experiment results.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Worker threads in the process-wide pool.
    pub pool_threads: usize,
    /// Lane rounds driven per measurement.
    pub rounds: usize,
    /// Host rounds/sec on the work-stealing pool.
    pub pool_rounds_per_sec: f64,
    /// Host rounds/sec on per-round scoped threads.
    pub scoped_rounds_per_sec: f64,
    /// `pool_rounds_per_sec / scoped_rounds_per_sec`.
    pub substrate_speedup: f64,
    /// Simulated wall-clock charged by the pool-backed rounds.
    pub sim_wall_pool: f64,
    /// Simulated wall-clock charged by the scoped-thread rounds — must
    /// equal `sim_wall_pool`.
    pub sim_wall_scoped: f64,
    /// Host ms to build the `FlatMultiMap` (two-pass, contiguous groups).
    pub flat_build_ms: f64,
    /// Host ms to build the `HashMap` reference.
    pub hash_build_ms: f64,
    /// Host ms to probe every key once through the `FlatMultiMap`.
    pub flat_probe_ms: f64,
    /// Host ms for the same probes through the `HashMap`.
    pub hash_probe_ms: f64,
}

impl PoolReport {
    /// Renders the report as experiment tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut lanes = Table::new(
            &format!(
                "Lane substrate: {} rounds of multi-region fan-out ({} pool threads)",
                self.rounds, self.pool_threads
            ),
            &["substrate", "rounds/sec (host)", "sim wall (s)"],
        );
        lanes.row(vec![
            "work-stealing pool".to_owned(),
            format!("{:.0}", self.pool_rounds_per_sec),
            format!("{:.6}", self.sim_wall_pool),
        ]);
        lanes.row(vec![
            "scoped threads".to_owned(),
            format!("{:.0}", self.scoped_rounds_per_sec),
            format!("{:.6}", self.sim_wall_scoped),
        ]);
        let mut flat = Table::new(
            "Flat structures: FlatMultiMap vs HashMap<Vec<u8>, Vec<u64>>",
            &["structure", "build (ms)", "probe (ms)"],
        );
        flat.row(vec![
            "FlatMultiMap".to_owned(),
            format!("{:.3}", self.flat_build_ms),
            format!("{:.3}", self.flat_probe_ms),
        ]);
        flat.row(vec![
            "HashMap".to_owned(),
            format!("{:.3}", self.hash_build_ms),
            format!("{:.3}", self.hash_probe_ms),
        ]);
        vec![lanes, flat]
    }

    /// Machine-readable JSON (the `BENCH_pool.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"experiment\": \"pool\",\n  \"pool_threads\": {},\n  \"rounds\": {},\n  \
             \"lanes\": {{\"pool_rounds_per_sec\": {:.1}, \"scoped_rounds_per_sec\": {:.1}, \
             \"substrate_speedup\": {:.3}, \"sim_wall_pool\": {:.6}, \
             \"sim_wall_scoped\": {:.6}}},\n  \
             \"flatmap\": {{\"flat_build_ms\": {:.3}, \"hash_build_ms\": {:.3}, \
             \"flat_probe_ms\": {:.3}, \"hash_probe_ms\": {:.3}}}\n}}\n",
            self.pool_threads,
            self.rounds,
            self.pool_rounds_per_sec,
            self.scoped_rounds_per_sec,
            self.substrate_speedup,
            self.sim_wall_pool,
            self.sim_wall_scoped,
            self.flat_build_ms,
            self.hash_build_ms,
            self.flat_probe_ms,
            self.hash_probe_ms,
        )
    }
}

/// A 4-node cluster with one 8-region table of 64 rows — the same shape
/// the `rj_store::parallel` unit tests fan out over.
fn lane_cluster() -> Cluster {
    let c = Cluster::new(4, CostModel::ec2(4));
    let splits: Vec<Vec<u8>> = (1..8u64)
        .map(|i| keys::encode_u64(i * 8).to_vec())
        .collect();
    c.create_table_with_splits("t", &["cf"], &splits)
        .expect("bench table");
    let client = c.client();
    for i in 0..64u64 {
        client
            .put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"q", i.to_string().into_bytes()),
            )
            .expect("bench row");
    }
    c
}

/// Drives `rounds` identical 8-task fan-out rounds on one substrate,
/// returning `(host seconds, simulated wall seconds)`.
fn drive_lanes(cluster: &Cluster, rounds: usize, backend: LaneBackend) -> (f64, f64) {
    let fork = cluster.fork_metrics();
    let started = Instant::now();
    for _ in 0..rounds {
        let tasks: Vec<LaneTask<'_, usize>> = (0..8u64)
            .map(|i| {
                LaneTask::new((i % 4) as usize, move |client: &rj_store::Client| {
                    Ok(client
                        .scan(
                            "t",
                            Scan::new()
                                .start(keys::encode_u64(i * 8).to_vec())
                                .stop(keys::encode_u64((i + 1) * 8).to_vec()),
                        )?
                        .count())
                })
            })
            .collect();
        let counts = run_lanes_on(&fork, 4, tasks, backend).expect("lane round");
        black_box(counts);
    }
    (
        started.elapsed().as_secs_f64(),
        fork.metrics().snapshot().sim_seconds,
    )
}

/// Deterministic key set: `groups` distinct keys, `per_group` values each.
fn flat_pairs(groups: usize, per_group: usize) -> Vec<(Vec<u8>, u64)> {
    (0..groups * per_group)
        .map(|i| {
            let g = i % groups;
            (format!("join-value-{g:06}").into_bytes(), i as u64)
        })
        .collect()
}

/// Runs the `pool` experiment: `rounds` lane rounds per substrate plus the
/// flat-structure micro pass.
pub fn run_poolbench(rounds: usize) -> PoolReport {
    let rounds = rounds.max(1);
    let cluster = lane_cluster();
    // Warm both substrates (pool spin-up, allocator) outside the clock.
    drive_lanes(&cluster, 2, LaneBackend::Pool);
    drive_lanes(&cluster, 2, LaneBackend::ScopedThreads);
    let (pool_host, sim_wall_pool) = drive_lanes(&cluster, rounds, LaneBackend::Pool);
    let (scoped_host, sim_wall_scoped) = drive_lanes(&cluster, rounds, LaneBackend::ScopedThreads);

    let pairs = flat_pairs(4_000, 12);
    let t = Instant::now();
    let flat = FlatMultiMap::from_pairs(pairs.iter().map(|(k, v)| (k.as_slice(), *v)));
    let flat_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mut hash: HashMap<Vec<u8>, Vec<u64>> = HashMap::new();
    for (k, v) in &pairs {
        hash.entry(k.clone()).or_default().push(*v);
    }
    let hash_build_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let mut acc = 0u64;
    for (k, _) in pairs.iter().step_by(7) {
        acc = acc.wrapping_add(flat.get(k).copied().sum::<u64>());
    }
    black_box(acc);
    let flat_probe_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mut acc = 0u64;
    for (k, _) in pairs.iter().step_by(7) {
        if let Some(vs) = hash.get(k) {
            acc = acc.wrapping_add(vs.iter().sum::<u64>());
        }
    }
    black_box(acc);
    let hash_probe_ms = t.elapsed().as_secs_f64() * 1e3;

    PoolReport {
        pool_threads: WorkStealingPool::global().threads(),
        rounds,
        pool_rounds_per_sec: rounds as f64 / pool_host.max(1e-9),
        scoped_rounds_per_sec: rounds as f64 / scoped_host.max(1e-9),
        substrate_speedup: (rounds as f64 / pool_host.max(1e-9))
            / (rounds as f64 / scoped_host.max(1e-9)),
        sim_wall_pool,
        sim_wall_scoped,
        flat_build_ms,
        hash_build_ms,
        flat_probe_ms,
        hash_probe_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poolbench_runs_and_sim_time_is_substrate_independent() {
        let report = run_poolbench(20);
        assert!(report.pool_rounds_per_sec > 0.0);
        assert!(report.scoped_rounds_per_sec > 0.0);
        assert!(
            (report.sim_wall_pool - report.sim_wall_scoped).abs() < 1e-9,
            "simulated time leaked the substrate: pool {} vs scoped {}",
            report.sim_wall_pool,
            report.sim_wall_scoped
        );
        let json = report.to_json();
        for key in [
            "\"experiment\"",
            "\"pool_threads\"",
            "\"lanes\"",
            "\"flatmap\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(report.tables().len(), 2);
    }
}
