//! Aligned-column table printing for experiment output.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the table as a JSON object (`title`, `header`, `rows`) —
    /// the building block of the `BENCH_*.json` CI artifacts.
    pub fn to_json(&self) -> String {
        let quote_row = |cells: &[String]| -> String {
            let quoted: Vec<String> = cells
                .iter()
                .map(|c| format!("\"{}\"", json_escape(c)))
                .collect();
            format!("[{}]", quoted.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| quote_row(r)).collect();
        format!(
            "{{\"title\": \"{}\", \"header\": {}, \"rows\": [{}]}}",
            json_escape(&self.title),
            quote_row(&self.header),
            rows.join(", ")
        )
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-readable seconds.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Human-readable byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

/// Scientific-ish formatting for dollar costs.
pub fn fmt_dollars(d: f64) -> String {
    if d == 0.0 {
        "$0".to_owned()
    } else if d >= 0.01 {
        format!("${d:.2}")
    } else {
        format!("${d:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["algo", "time"]);
        t.row(vec!["BFHM".into(), "1.2s".into()]);
        t.row(vec!["ISL".into(), "12.0s".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("BFHM"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "aligned rows");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_serialization_escapes() {
        let mut t = Table::new("demo \"x\"", &["a", "b"]);
        t.row(vec!["1\n2".into(), "back\\slash".into()]);
        let j = t.to_json();
        assert!(j.contains("demo \\\"x\\\""));
        assert!(j.contains("1\\n2"));
        assert!(j.contains("back\\\\slash"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_seconds(0.0123), "12.3ms");
        assert_eq!(fmt_seconds(3.21), "3.21s");
        assert_eq!(fmt_seconds(250.0), "250s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
        assert_eq!(fmt_dollars(0.0), "$0");
        assert_eq!(fmt_dollars(1.5), "$1.50");
        assert!(fmt_dollars(1e-7).contains("e-"));
    }
}
