//! Aligned-column table printing for experiment output.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Human-readable seconds.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Human-readable byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

/// Scientific-ish formatting for dollar costs.
pub fn fmt_dollars(d: f64) -> String {
    if d == 0.0 {
        "$0".to_owned()
    } else if d >= 0.01 {
        format!("${d:.2}")
    } else {
        format!("${d:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["algo", "time"]);
        t.row(vec!["BFHM".into(), "1.2s".into()]);
        t.row(vec!["ISL".into(), "12.0s".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("BFHM"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len(), "aligned rows");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_seconds(0.0123), "12.3ms");
        assert_eq!(fmt_seconds(3.21), "3.21s");
        assert_eq!(fmt_seconds(250.0), "250s");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
        assert_eq!(fmt_dollars(0.0), "$0");
        assert_eq!(fmt_dollars(1.5), "$1.50");
        assert!(fmt_dollars(1e-7).contains("e-"));
    }
}
