//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! cargo run -p rj-bench --release --bin experiments -- [experiment] [--sf X]
//!
//! experiments:
//!   example   running example (Fig. 1–6) across all algorithms
//!   fig7      Q1/Q2 time + bandwidth + dollar cost, EC2 profile (Fig. 7a–f)
//!   fig8      Q1/Q2 time + bandwidth + dollar cost, LC profile (Fig. 8a–f)
//!   fig9      index build times (Fig. 9)
//!   sizes     index disk-space table (§7.2)
//!   memory    index-build reducer memory footprints (§7.2)
//!   updates   online-updates overhead study (§7.2)
//!   scaling   EC2 cluster-size scaling note (§7.1)
//!   all       everything above
//! ```

use std::env;

use rj_bench::{
    run_example_walkthrough, run_fig7, run_fig8, run_fig9, run_memory, run_scaling,
    run_sizes, run_updates, Table,
};

struct Args {
    experiment: String,
    sf_ec2: f64,
    sf_lab: f64,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_owned(),
        sf_ec2: 0.002,
        sf_lab: 0.01,
    };
    let argv: Vec<String> = env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                let v: f64 = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--sf needs a number"));
                args.sf_ec2 = v;
                args.sf_lab = v;
            }
            "--sf-ec2" => {
                i += 1;
                args.sf_ec2 = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--sf-ec2 needs a number"));
            }
            "--sf-lab" => {
                i += 1;
                args.sf_lab = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--sf-lab needs a number"));
            }
            other if !other.starts_with('-') => args.experiment = other.to_owned(),
            other => die(&format!("unknown flag: {other}")),
        }
        i += 1;
    }
    args
}

fn show(tables: Vec<Table>) {
    for t in tables {
        println!("{}", t.render());
    }
}

fn main() {
    let args = parse_args();
    let ran = |name: &str| args.experiment == name || args.experiment == "all";
    println!(
        "# Rank Join Queries in NoSQL Databases — experiment runs\n\
         # (simulated metrics; SF_ec2={}, SF_lab={})\n",
        args.sf_ec2, args.sf_lab
    );
    let mut matched = false;
    if ran("example") {
        matched = true;
        show(run_example_walkthrough());
    }
    if ran("fig7") {
        matched = true;
        show(run_fig7(args.sf_ec2));
    }
    if ran("fig8") {
        matched = true;
        show(run_fig8(args.sf_lab));
    }
    if ran("fig9") {
        matched = true;
        show(run_fig9(args.sf_ec2, args.sf_lab));
    }
    if ran("sizes") {
        matched = true;
        show(run_sizes(args.sf_lab));
    }
    if ran("memory") {
        matched = true;
        show(run_memory(args.sf_lab, &[100, 500]));
    }
    if ran("updates") {
        matched = true;
        // The paper applies ≈750 mutations per measured query (§7.2).
        show(run_updates(args.sf_lab, 750));
    }
    if ran("scaling") {
        matched = true;
        // Larger scale factor so per-node data work (which is what shrinks
        // with more workers) is visible over the fixed job startup.
        show(run_scaling(args.sf_ec2 * 10.0));
    }
    if !matched {
        eprintln!(
            "unknown experiment {:?}; run with one of: example fig7 fig8 fig9 sizes memory updates scaling all",
            args.experiment
        );
        std::process::exit(2);
    }
}
