//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation section, plus the concurrent-query throughput
//! harness.
//!
//! ```text
//! cargo run -p rj_bench --release --bin experiments -- [experiment] [flags]
//!
//! experiments:
//!   example     running example (Fig. 1–6) across all algorithms
//!   fig7        Q1/Q2 time + bandwidth + dollar cost, EC2 profile (Fig. 7a–f)
//!   fig8        Q1/Q2 time + bandwidth + dollar cost, LC profile (Fig. 8a–f)
//!   fig9        index build times (Fig. 9)
//!   sizes       index disk-space table (§7.2)
//!   memory      index-build reducer memory footprints (§7.2)
//!   updates     online-updates overhead study (§7.2)
//!   scaling     EC2 cluster-size scaling note (§7.1)
//!   throughput  concurrent-query throughput, serial vs parallel execution
//!   planner     cost-based planner: predicted vs measured cost per algorithm,
//!               planner agreement with the measured-cheapest choice
//!   updates-planner  interleaved refresh sets vs Auto planning: maintained
//!                    statistics against a fresh-stats oracle per round
//!   adaptive    mid-query adaptive re-planning: abort-and-switch vs
//!               never-switch vs hindsight-oracle lanes, with and without
//!               a planted histogram lie
//!   pool        execution-core microbench: work-stealing pool vs scoped
//!               threads (host rounds/sec) and FlatMultiMap vs HashMap
//!               build/probe times
//!   serve       multi-tenant serving front-end: open-loop zipf-tenant
//!               workload replayed with cross-query work sharing off/on,
//!               qps + sojourn percentiles + per-tenant metering
//!   cursor      pull-based cursors: paging a top-k answer through
//!               pause/resume vs re-running per page, plus the
//!               warm-start donor-depth sweep
//!   multiway    3-way rank joins: planner's per-side access choice vs
//!               the measured-cheapest assignment over a (shape, k)
//!               grid, plus the two-side-spec-equals-binary pin
//!   all         everything above
//!
//!   check-json DIR   validate every DIR/BENCH_*.json artifact against its
//!                    experiment's required keys (CI schema gate); exits 2
//!                    on any missing key
//!
//! flags:
//!   --sf X            scale factor for both profiles
//!   --sf-ec2 X        EC2-profile scale factor
//!   --sf-lab X        lab-profile scale factor
//!   --clients N       throughput: concurrent client threads (default 8)
//!   --queries N       throughput: queries per client (default 16)
//!   --workers N       throughput: parallel pool width (default 4)
//!   --json-out DIR    also write each experiment's output as
//!                     DIR/BENCH_<experiment>.json (machine-readable)
//! ```

use std::env;

use rj_bench::{
    run_adaptive, run_cursor, run_example_walkthrough, run_fig7, run_fig8, run_fig9, run_memory,
    run_multiway, run_planner, run_poolbench, run_scaling, run_serve, run_sizes, run_throughput,
    run_updates, run_updates_planner, CursorBenchConfig, MultiwayBenchConfig, ServeBenchConfig,
    Table, ThroughputConfig,
};

/// Every runnable experiment name (usage text and up-front validation).
const EXPERIMENTS: &[&str] = &[
    "example",
    "fig7",
    "fig8",
    "fig9",
    "sizes",
    "memory",
    "updates",
    "scaling",
    "throughput",
    "planner",
    "updates-planner",
    "adaptive",
    "pool",
    "serve",
    "cursor",
    "multiway",
    "all",
];

struct Args {
    experiment: String,
    /// Positional argument after the experiment name (check-json's DIR).
    operand: Option<String>,
    sf_ec2: f64,
    sf_lab: f64,
    clients: usize,
    queries: usize,
    workers: usize,
    json_out: Option<std::path::PathBuf>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_owned(),
        operand: None,
        sf_ec2: 0.002,
        sf_lab: 0.01,
        clients: 8,
        queries: 16,
        workers: 4,
        json_out: None,
    };
    let mut saw_experiment = false;
    let argv: Vec<String> = env::args().skip(1).collect();
    let mut i = 0;
    let parse_f64 = |argv: &[String], i: usize, flag: &str| -> f64 {
        argv.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs a number")))
    };
    let parse_usize = |argv: &[String], i: usize, flag: &str| -> usize {
        argv.get(i)
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                let v = parse_f64(&argv, i, "--sf");
                args.sf_ec2 = v;
                args.sf_lab = v;
            }
            "--sf-ec2" => {
                i += 1;
                args.sf_ec2 = parse_f64(&argv, i, "--sf-ec2");
            }
            "--sf-lab" => {
                i += 1;
                args.sf_lab = parse_f64(&argv, i, "--sf-lab");
            }
            "--clients" => {
                i += 1;
                args.clients = parse_usize(&argv, i, "--clients");
            }
            "--queries" => {
                i += 1;
                args.queries = parse_usize(&argv, i, "--queries");
            }
            "--workers" => {
                i += 1;
                args.workers = parse_usize(&argv, i, "--workers");
            }
            "--json-out" => {
                i += 1;
                let dir = argv
                    .get(i)
                    .unwrap_or_else(|| die("--json-out needs a directory"));
                args.json_out = Some(std::path::PathBuf::from(dir));
            }
            other if !other.starts_with('-') => {
                if saw_experiment {
                    args.operand = Some(other.to_owned());
                } else {
                    args.experiment = other.to_owned();
                    saw_experiment = true;
                }
            }
            other => die(&format!("unknown flag: {other}")),
        }
        i += 1;
    }
    args
}

/// Writes `content` to `DIR/BENCH_<name>.json` when `--json-out` is set.
fn emit_json(json_out: &Option<std::path::PathBuf>, name: &str, content: &str) {
    let Some(dir) = json_out else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        die(&format!("cannot create {}: {e}", dir.display()));
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, content) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
    eprintln!("wrote {}", path.display());
}

/// Serializes a table list as one JSON document.
fn tables_json(name: &str, tables: &[Table]) -> String {
    let body: Vec<String> = tables.iter().map(Table::to_json).collect();
    format!(
        "{{\"experiment\": \"{name}\", \"tables\": [\n  {}\n]}}\n",
        body.join(",\n  ")
    )
}

/// Required top-level JSON keys per `BENCH_<name>.json` artifact. Every
/// tables-shaped experiment shares one schema; the structured reports
/// (throughput, planner) carry their own.
fn required_keys(name: &str) -> Vec<&'static str> {
    match name {
        "throughput" => vec!["experiment", "modes", "speedup", "pool_vs_scoped"],
        "pool" => vec!["experiment", "pool_threads", "lanes", "flatmap"],
        "serve" => vec![
            "experiment",
            "arms",
            "sharing_speedup",
            "per_tenant",
            "conserved",
        ],
        "planner" => vec!["experiment", "grid", "agreement_time", "agreement_dollars"],
        "updates_planner" => vec!["experiment", "cells", "agreement", "collections"],
        "cursor" => vec!["experiment", "paging", "cold_kv_reads", "warm_sweep"],
        "multiway" => vec!["experiment", "grid", "auto_worst_ratio", "binary_identical"],
        "adaptive" => vec!["experiment", "cells", "lie_speedup", "no_lie_switches"],
        _ => vec!["experiment", "tables"],
    }
}

/// Structural sanity: braces/brackets balance outside string literals
/// and the document is a single `{...}` object. Catches truncated or
/// concatenated artifacts that a substring key check would wave through.
fn json_is_balanced(content: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut closed_at_root = false;
    for c in content.chars() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                if closed_at_root {
                    return false; // trailing second document
                }
                depth += 1;
            }
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
                if depth == 0 {
                    closed_at_root = true;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string && closed_at_root && content.trim_start().starts_with('{')
}

/// The CI schema gate: every `BENCH_*.json` in `dir` must be non-empty,
/// structurally balanced JSON, and contain its experiment's required
/// top-level keys. Exits 2 on the first violation.
fn check_json(dir: &std::path::Path) {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", dir.display())));
    let mut checked = 0usize;
    for entry in entries {
        let path = entry.expect("dir entry").path();
        let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let Some(name) = file
            .strip_prefix("BENCH_")
            .and_then(|n| n.strip_suffix(".json"))
        else {
            continue;
        };
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
        if content.trim().is_empty() {
            die(&format!("{}: empty artifact", path.display()));
        }
        if !json_is_balanced(&content) {
            die(&format!(
                "{}: truncated or structurally invalid JSON",
                path.display()
            ));
        }
        for key in required_keys(name) {
            if !content.contains(&format!("\"{key}\"")) {
                die(&format!(
                    "{}: missing required key \"{key}\"",
                    path.display()
                ));
            }
        }
        println!(
            "ok: {} ({} keys checked)",
            path.display(),
            required_keys(name).len()
        );
        checked += 1;
    }
    if checked == 0 {
        die(&format!(
            "no BENCH_*.json artifacts found in {}",
            dir.display()
        ));
    }
    println!("{checked} artifact(s) pass the schema check");
}

fn main() {
    let args = parse_args();
    if args.experiment == "check-json" {
        let dir = args
            .operand
            .as_deref()
            .unwrap_or_else(|| die("check-json needs a directory"));
        check_json(std::path::Path::new(dir));
        return;
    }
    // Validate the subcommand up front: a typo must exit 2 with usage
    // before any experiment spends minutes running.
    if !EXPERIMENTS.contains(&args.experiment.as_str()) {
        die(&format!(
            "unknown experiment {:?}; run with one of: {} (or check-json DIR)",
            args.experiment,
            EXPERIMENTS.join(" ")
        ));
    }
    if let Some(operand) = &args.operand {
        die(&format!(
            "unexpected operand {:?} (only check-json takes one)",
            operand
        ));
    }
    let ran = |name: &str| args.experiment == name || args.experiment == "all";
    println!(
        "# Rank Join Queries in NoSQL Databases — experiment runs\n\
         # (simulated metrics; SF_ec2={}, SF_lab={})\n",
        args.sf_ec2, args.sf_lab
    );
    let show = |name: &str, tables: Vec<Table>| {
        emit_json(&args.json_out, name, &tables_json(name, &tables));
        for t in tables {
            println!("{}", t.render());
        }
    };
    if ran("example") {
        show("example", run_example_walkthrough());
    }
    if ran("fig7") {
        show("fig7", run_fig7(args.sf_ec2));
    }
    if ran("fig8") {
        show("fig8", run_fig8(args.sf_lab));
    }
    if ran("fig9") {
        show("fig9", run_fig9(args.sf_ec2, args.sf_lab));
    }
    if ran("sizes") {
        show("sizes", run_sizes(args.sf_lab));
    }
    if ran("memory") {
        show("memory", run_memory(args.sf_lab, &[100, 500]));
    }
    if ran("updates") {
        // The paper applies ≈750 mutations per measured query (§7.2).
        show("updates", run_updates(args.sf_lab, 750));
    }
    if ran("scaling") {
        // Larger scale factor so per-node data work (which is what shrinks
        // with more workers) is visible over the fixed job startup.
        show("scaling", run_scaling(args.sf_ec2 * 10.0));
    }
    if ran("throughput") {
        let report = run_throughput(&ThroughputConfig {
            scale_factor: args.sf_ec2,
            clients: args.clients,
            queries_per_client: args.queries,
            workers: args.workers,
        });
        emit_json(&args.json_out, "throughput", &report.to_json());
        println!("{}", report.table().render());
        println!("# parallel-over-serial speedup: {:.2}x\n", report.speedup());
    }
    if ran("planner") {
        let report = run_planner(args.sf_ec2, args.sf_lab);
        emit_json(&args.json_out, "planner", &report.to_json());
        for t in report.tables() {
            println!("{}", t.render());
        }
        println!(
            "# planner agreement: time {:.0}%, dollars {:.0}%\n",
            report.agreement_time * 100.0,
            report.agreement_dollars * 100.0
        );
    }
    if ran("updates-planner") {
        let report = run_updates_planner(args.sf_lab, 4);
        emit_json(&args.json_out, "updates_planner", &report.to_json());
        println!("{}", report.table().render());
        println!(
            "# updates-planner agreement: {:.0}% over {} mutations ({} full stats pass(es))\n",
            report.agreement * 100.0,
            report.mutations,
            report.collections
        );
    }
    if ran("adaptive") {
        // Rows per side scale with the lab scale factor so the CI smoke
        // stays quick while `--sf` sweeps still bite (SF 0.002 → 1500).
        let rows = ((args.sf_lab * 750_000.0) as usize).clamp(400, 20_000);
        let report = run_adaptive(rows);
        emit_json(&args.json_out, "adaptive", &report.to_json());
        println!("{}", report.table().render());
        println!(
            "# adaptive: lie speedup {:.2}x, switches lie/no-lie {}/{}\n",
            report.lie_speedup, report.lie_switches, report.no_lie_switches
        );
    }
    if ran("pool") {
        let report = run_poolbench(200);
        emit_json(&args.json_out, "pool", &report.to_json());
        for t in report.tables() {
            println!("{}", t.render());
        }
        println!(
            "# execution core: pool/scoped host speedup {:.2}x, sim wall delta {:.1e}s\n",
            report.substrate_speedup,
            (report.sim_wall_pool - report.sim_wall_scoped).abs()
        );
    }
    if ran("serve") {
        let report = run_serve(&ServeBenchConfig::default());
        emit_json(&args.json_out, "serve", &report.to_json());
        for t in report.tables() {
            println!("{}", t.render());
        }
        println!(
            "# serving: sharing qps speedup {:.2}x (p99 {:.6}s -> {:.6}s), work conserved: {}\n",
            report.sharing_speedup(),
            report.off.p99,
            report.on.p99,
            report.conserved
        );
    }
    if ran("cursor") {
        let report = run_cursor(&CursorBenchConfig::default());
        emit_json(&args.json_out, "cursor", &report.to_json());
        for t in report.tables() {
            println!("{}", t.render());
        }
        println!(
            "# cursors: paged/one-shot reads {}/{}, re-run penalty {:.2}x, \
             deepest warm start pays {} of {} cold reads\n",
            report.paging.paged_kv_reads,
            report.paging.oneshot_kv_reads,
            report.paging.rerun_penalty(),
            report
                .warm_sweep
                .last()
                .map(|p| p.warm_kv_reads)
                .unwrap_or(0),
            report.cold_kv_reads
        );
    }
    if ran("multiway") {
        let report = run_multiway(&MultiwayBenchConfig::default());
        emit_json(&args.json_out, "multiway", &report.to_json());
        for t in report.tables() {
            println!("{}", t.render());
        }
        println!(
            "# multiway: auto within {:.2}x of measured-cheapest, two-side spec == binary: {}\n",
            report.auto_worst_ratio(),
            report.binary_identical()
        );
    }
}
