//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation section, plus the concurrent-query throughput
//! harness.
//!
//! ```text
//! cargo run -p rj_bench --release --bin experiments -- [experiment] [flags]
//!
//! experiments:
//!   example     running example (Fig. 1–6) across all algorithms
//!   fig7        Q1/Q2 time + bandwidth + dollar cost, EC2 profile (Fig. 7a–f)
//!   fig8        Q1/Q2 time + bandwidth + dollar cost, LC profile (Fig. 8a–f)
//!   fig9        index build times (Fig. 9)
//!   sizes       index disk-space table (§7.2)
//!   memory      index-build reducer memory footprints (§7.2)
//!   updates     online-updates overhead study (§7.2)
//!   scaling     EC2 cluster-size scaling note (§7.1)
//!   throughput  concurrent-query throughput, serial vs parallel execution
//!   all         everything above
//!
//! flags:
//!   --sf X            scale factor for both profiles
//!   --sf-ec2 X        EC2-profile scale factor
//!   --sf-lab X        lab-profile scale factor
//!   --clients N       throughput: concurrent client threads (default 8)
//!   --queries N       throughput: queries per client (default 16)
//!   --workers N       throughput: parallel pool width (default 4)
//!   --json-out DIR    also write each experiment's output as
//!                     DIR/BENCH_<experiment>.json (machine-readable)
//! ```

use std::env;

use rj_bench::{
    run_example_walkthrough, run_fig7, run_fig8, run_fig9, run_memory, run_scaling, run_sizes,
    run_throughput, run_updates, Table, ThroughputConfig,
};

struct Args {
    experiment: String,
    sf_ec2: f64,
    sf_lab: f64,
    clients: usize,
    queries: usize,
    workers: usize,
    json_out: Option<std::path::PathBuf>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_owned(),
        sf_ec2: 0.002,
        sf_lab: 0.01,
        clients: 8,
        queries: 16,
        workers: 4,
        json_out: None,
    };
    let argv: Vec<String> = env::args().skip(1).collect();
    let mut i = 0;
    let parse_f64 = |argv: &[String], i: usize, flag: &str| -> f64 {
        argv.get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die(&format!("{flag} needs a number")))
    };
    let parse_usize = |argv: &[String], i: usize, flag: &str| -> usize {
        argv.get(i)
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| die(&format!("{flag} needs a positive integer")))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                let v = parse_f64(&argv, i, "--sf");
                args.sf_ec2 = v;
                args.sf_lab = v;
            }
            "--sf-ec2" => {
                i += 1;
                args.sf_ec2 = parse_f64(&argv, i, "--sf-ec2");
            }
            "--sf-lab" => {
                i += 1;
                args.sf_lab = parse_f64(&argv, i, "--sf-lab");
            }
            "--clients" => {
                i += 1;
                args.clients = parse_usize(&argv, i, "--clients");
            }
            "--queries" => {
                i += 1;
                args.queries = parse_usize(&argv, i, "--queries");
            }
            "--workers" => {
                i += 1;
                args.workers = parse_usize(&argv, i, "--workers");
            }
            "--json-out" => {
                i += 1;
                let dir = argv
                    .get(i)
                    .unwrap_or_else(|| die("--json-out needs a directory"));
                args.json_out = Some(std::path::PathBuf::from(dir));
            }
            other if !other.starts_with('-') => args.experiment = other.to_owned(),
            other => die(&format!("unknown flag: {other}")),
        }
        i += 1;
    }
    args
}

/// Writes `content` to `DIR/BENCH_<name>.json` when `--json-out` is set.
fn emit_json(json_out: &Option<std::path::PathBuf>, name: &str, content: &str) {
    let Some(dir) = json_out else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        die(&format!("cannot create {}: {e}", dir.display()));
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, content) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
    eprintln!("wrote {}", path.display());
}

/// Serializes a table list as one JSON document.
fn tables_json(name: &str, tables: &[Table]) -> String {
    let body: Vec<String> = tables.iter().map(Table::to_json).collect();
    format!(
        "{{\"experiment\": \"{name}\", \"tables\": [\n  {}\n]}}\n",
        body.join(",\n  ")
    )
}

fn main() {
    let args = parse_args();
    let ran = |name: &str| args.experiment == name || args.experiment == "all";
    println!(
        "# Rank Join Queries in NoSQL Databases — experiment runs\n\
         # (simulated metrics; SF_ec2={}, SF_lab={})\n",
        args.sf_ec2, args.sf_lab
    );
    let mut matched = false;
    let mut show = |name: &str, tables: Vec<Table>| {
        matched = true;
        emit_json(&args.json_out, name, &tables_json(name, &tables));
        for t in tables {
            println!("{}", t.render());
        }
    };
    if ran("example") {
        show("example", run_example_walkthrough());
    }
    if ran("fig7") {
        show("fig7", run_fig7(args.sf_ec2));
    }
    if ran("fig8") {
        show("fig8", run_fig8(args.sf_lab));
    }
    if ran("fig9") {
        show("fig9", run_fig9(args.sf_ec2, args.sf_lab));
    }
    if ran("sizes") {
        show("sizes", run_sizes(args.sf_lab));
    }
    if ran("memory") {
        show("memory", run_memory(args.sf_lab, &[100, 500]));
    }
    if ran("updates") {
        // The paper applies ≈750 mutations per measured query (§7.2).
        show("updates", run_updates(args.sf_lab, 750));
    }
    if ran("scaling") {
        // Larger scale factor so per-node data work (which is what shrinks
        // with more workers) is visible over the fixed job startup.
        show("scaling", run_scaling(args.sf_ec2 * 10.0));
    }
    if ran("throughput") {
        matched = true;
        let report = run_throughput(&ThroughputConfig {
            scale_factor: args.sf_ec2,
            clients: args.clients,
            queries_per_client: args.queries,
            workers: args.workers,
        });
        emit_json(&args.json_out, "throughput", &report.to_json());
        println!("{}", report.table().render());
        println!("# parallel-over-serial speedup: {:.2}x\n", report.speedup());
    }
    if !matched {
        eprintln!(
            "unknown experiment {:?}; run with one of: example fig7 fig8 fig9 sizes memory updates scaling throughput all",
            args.experiment
        );
        std::process::exit(2);
    }
}
