//! The experiment implementations, one per paper table/figure.

use rj_core::bfhm::maintenance::WriteBackPolicy;
use rj_core::bfhm::BfhmConfig;
use rj_core::error::RankJoinError;
use rj_core::executor::{Algorithm, RankJoinExecutor};
use rj_core::maintenance::MaintainedSide;
use rj_core::oracle;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_tpch::{generate_update_set, loader, TpchConfig, UpdateSet};

use crate::fixture::{Fixture, FixtureConfig, QuerySpec};
use crate::report::{fmt_bytes, fmt_dollars, fmt_seconds, Table};

/// The k values swept on the figures' x-axes.
pub const K_SWEEP: [usize; 4] = [1, 10, 50, 100];

/// Renders one metric table (algorithms × k) for one query.
fn metric_tables(fixture: &Fixture, spec: QuerySpec, label: &str) -> Vec<Table> {
    let header: Vec<String> = std::iter::once("algo".to_owned())
        .chain(K_SWEEP.iter().map(|k| format!("k={k}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut time = Table::new(
        &format!("{label}: {} query processing time", spec.name()),
        &header_refs,
    );
    let mut net = Table::new(
        &format!("{label}: {} network bandwidth", spec.name()),
        &header_refs,
    );
    let mut cost = Table::new(
        &format!("{label}: {} dollar cost (KV read units)", spec.name()),
        &header_refs,
    );
    let dollar_unit = fixture.config.cost.dollar_per_read_unit;

    for algo in Algorithm::ALL {
        let mut t_row = vec![algo.name().to_owned()];
        let mut n_row = vec![algo.name().to_owned()];
        let mut c_row = vec![algo.name().to_owned()];
        for &k in &K_SWEEP {
            let outcome = fixture.run(spec, algo, k);
            // Cross-check against the oracle at every point.
            let want = oracle::topk(&fixture.cluster, &spec.query(k)).expect("oracle");
            assert_eq!(
                outcome.results,
                want,
                "{} {} k={k} returned wrong answer",
                spec.name(),
                algo.name()
            );
            t_row.push(fmt_seconds(outcome.metrics.sim_seconds));
            n_row.push(fmt_bytes(outcome.metrics.network_bytes));
            c_row.push(format!(
                "{} ({})",
                outcome.metrics.kv_reads,
                fmt_dollars(outcome.dollar_cost(dollar_unit))
            ));
        }
        time.row(t_row);
        net.row(n_row);
        cost.row(c_row);
    }
    vec![time, net, cost]
}

/// Figure 7 (a–f): Q1 and Q2 on the EC2 profile.
pub fn run_fig7(scale_factor: f64) -> Vec<Table> {
    let mut fixture = Fixture::load(FixtureConfig::ec2(scale_factor));
    fixture.prepare(QuerySpec::Q1);
    fixture.prepare(QuerySpec::Q2);
    let mut out = metric_tables(&fixture, QuerySpec::Q1, "Fig.7 EC2 (1+8)");
    out.extend(metric_tables(&fixture, QuerySpec::Q2, "Fig.7 EC2 (1+8)"));
    out
}

/// Figure 8 (a–f): Q1 and Q2 on the lab-cluster profile.
pub fn run_fig8(scale_factor: f64) -> Vec<Table> {
    let mut fixture = Fixture::load(FixtureConfig::lab(scale_factor));
    fixture.prepare(QuerySpec::Q1);
    fixture.prepare(QuerySpec::Q2);
    let mut out = metric_tables(&fixture, QuerySpec::Q1, "Fig.8 LC (5 nodes)");
    out.extend(metric_tables(&fixture, QuerySpec::Q2, "Fig.8 LC (5 nodes)"));
    out
}

/// Figure 9: index build times per index type on both profiles.
pub fn run_fig9(ec2_sf: f64, lab_sf: f64) -> Vec<Table> {
    let mut table = Table::new(
        "Fig.9: indexing time (per index, per query pair)",
        &["profile", "query", "IJLMR", "ISL", "BFHM", "DRJN"],
    );
    for (label, config) in [
        ("EC2", FixtureConfig::ec2(ec2_sf)),
        ("LC", FixtureConfig::lab(lab_sf)),
    ] {
        let mut fixture = Fixture::load(config);
        for spec in [QuerySpec::Q1, QuerySpec::Q2] {
            let report = fixture.prepare(spec);
            table.row(vec![
                label.to_owned(),
                spec.name().to_owned(),
                fmt_seconds(report.ijlmr.build_seconds),
                fmt_seconds(report.isl.build_seconds),
                fmt_seconds(report.bfhm.build_seconds),
                fmt_seconds(report.drjn.build_seconds),
            ]);
        }
    }
    vec![table]
}

/// §7.2 index disk-space list.
pub fn run_sizes(scale_factor: f64) -> Vec<Table> {
    let mut fixture = Fixture::load(FixtureConfig::lab(scale_factor));
    let base = fixture.base_bytes();
    let mut table = Table::new(
        "Index disk space (vs base data)",
        &["query", "base", "IJLMR", "ISL", "BFHM", "DRJN"],
    );
    for spec in [QuerySpec::Q1, QuerySpec::Q2] {
        let report = fixture.prepare(spec);
        table.row(vec![
            spec.name().to_owned(),
            fmt_bytes(base),
            fmt_bytes(report.ijlmr.index_bytes),
            fmt_bytes(report.isl.index_bytes),
            fmt_bytes(report.bfhm.index_bytes),
            fmt_bytes(report.drjn.index_bytes),
        ]);
    }
    vec![table]
}

/// §7.2 reducer memory-footprint list.
pub fn run_memory(scale_factor: f64, bucket_variants: &[u32]) -> Vec<Table> {
    let mut table = Table::new(
        "Index-build reducer memory footprint (max state bytes)",
        &["index", "buckets", "max reducer state"],
    );
    for &buckets in bucket_variants {
        let mut config = FixtureConfig::lab(scale_factor);
        config.bfhm_buckets = buckets;
        config.drjn_buckets = buckets;
        let mut fixture = Fixture::load(config);
        let report = fixture.prepare(QuerySpec::Q2);
        table.row(vec![
            "BFHM".to_owned(),
            buckets.to_string(),
            fmt_bytes(report.bfhm.max_reducer_state_bytes),
        ]);
        table.row(vec![
            "DRJN".to_owned(),
            buckets.to_string(),
            fmt_bytes(
                report
                    .drjn
                    .max_reducer_state_bytes
                    .max(report.drjn.max_reducer_input_bytes),
            ),
        ]);
        table.row(vec![
            "ISL/IJLMR".to_owned(),
            buckets.to_string(),
            "negligible (map-only)".to_owned(),
        ]);
    }
    vec![table]
}

/// Applies one refresh set through the maintained write paths, returning
/// how many mutations actually landed. Deletes of rows already gone (the
/// expected no-op when refresh sets wrap the loaded order range at tiny
/// scale factors) are skipped; any other failure propagates.
pub fn apply_update_set(
    orders: &MaintainedSide,
    lineitems: &MaintainedSide,
    set: &UpdateSet,
) -> rj_core::error::Result<usize> {
    let mut applied = 0usize;
    for o in &set.insert_orders {
        orders.insert(
            &loader::rowkeys::order(o.order_key),
            &rj_store::keys::encode_u64(o.order_key),
            o.total_score,
            vec![],
        )?;
        applied += 1;
    }
    for l in &set.insert_lineitems {
        lineitems.insert(
            &loader::rowkeys::lineitem(l.order_key, l.line_number),
            &rj_store::keys::encode_u64(l.order_key),
            l.extended_score,
            vec![],
        )?;
        applied += 1;
    }
    for l in &set.delete_lineitems {
        match lineitems.delete(&loader::rowkeys::lineitem(l.order_key, l.line_number)) {
            Ok(_) => applied += 1,
            Err(RankJoinError::MissingRow) => {}
            Err(e) => return Err(e),
        }
    }
    for o in &set.delete_orders {
        match orders.delete(&loader::rowkeys::order(o.order_key)) {
            Ok(_) => applied += 1,
            Err(RankJoinError::MissingRow) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(applied)
}

/// §7.2 online-updates study: apply refresh sets until at least
/// `target_mutations` rows changed (the paper applies ≈750 per set at its
/// scale), then measure the BFHM query with eager write-back against a
/// clean-index query.
pub fn run_updates(scale_factor: f64, target_mutations: usize) -> Vec<Table> {
    let tpch_cfg = TpchConfig::new(scale_factor);
    let k = 50;

    // Baseline: clean index, no pending mutations.
    let mut clean = Fixture::load(FixtureConfig::lab(scale_factor));
    clean.prepare(QuerySpec::Q2);
    let clean_outcome = clean.run(QuerySpec::Q2, Algorithm::Bfhm, k);

    // Updated: same fixture shape, apply refresh sets through the
    // maintained write path, then query with eager write-back.
    let mut updated = Fixture::load(FixtureConfig::lab(scale_factor));
    updated.prepare(QuerySpec::Q2);
    let query = QuerySpec::Q2.query(k);
    let bfhm_table = rj_core::bfhm::index_table_name(&query);
    let isl_table = rj_core::isl::index_table_name(&query);
    let ijlmr_table = rj_core::ijlmr::index_table_name(&query);

    let orders_side = MaintainedSide::new(&updated.cluster, query.left.clone())
        .with_isl(&isl_table)
        .with_ijlmr(&ijlmr_table)
        .with_bfhm(
            rj_core::bfhm::maintenance::BfhmMaintainer::attach(
                &updated.cluster,
                &bfhm_table,
                &query.left.label,
            )
            .expect("attach O"),
        );
    let lineitem_side = MaintainedSide::new(&updated.cluster, query.right.clone())
        .with_isl(&isl_table)
        .with_ijlmr(&ijlmr_table)
        .with_bfhm(
            rj_core::bfhm::maintenance::BfhmMaintainer::attach(
                &updated.cluster,
                &bfhm_table,
                &query.right.label,
            )
            .expect("attach L"),
        );

    let mut mutations = 0usize;
    let mut set_idx = 0u64;
    while mutations < target_mutations {
        let set = generate_update_set(&tpch_cfg, set_idx);
        set_idx += 1;
        mutations +=
            apply_update_set(&orders_side, &lineitem_side, &set).expect("apply refresh set");
    }

    // Query with eager write-back (the paper's worst case): reconstruct
    // pending buckets at the start of query processing and write them
    // back inline.
    let eager_outcome = rj_core::bfhm::run(
        &updated.cluster,
        &query,
        &bfhm_table,
        &BfhmConfig::with_buckets(updated.config.bfhm_buckets),
        WriteBackPolicy::Eager,
    )
    .expect("eager bfhm query");
    // Correctness under updates.
    let want = oracle::topk(&updated.cluster, &query).expect("oracle");
    assert_eq!(eager_outcome.results, want, "BFHM wrong after updates");

    // Second query: records now compacted — overhead should vanish.
    let compacted_outcome = rj_core::bfhm::run(
        &updated.cluster,
        &query,
        &bfhm_table,
        &BfhmConfig::with_buckets(updated.config.bfhm_buckets),
        WriteBackPolicy::Eager,
    )
    .expect("compacted bfhm query");

    let overhead = |t: f64| -> String {
        format!(
            "{:+.1}%",
            (t / clean_outcome.metrics.sim_seconds - 1.0) * 100.0
        )
    };
    let mut table = Table::new(
        &format!("Online updates: BFHM query time after {mutations} mutations (eager write-back)"),
        &["scenario", "sim time", "vs clean"],
    );
    table.row(vec![
        "clean index".into(),
        fmt_seconds(clean_outcome.metrics.sim_seconds),
        "—".into(),
    ]);
    table.row(vec![
        "pending mutations, eager write-back".into(),
        fmt_seconds(eager_outcome.metrics.sim_seconds),
        overhead(eager_outcome.metrics.sim_seconds),
    ]);
    table.row(vec![
        "after compaction (2nd query)".into(),
        fmt_seconds(compacted_outcome.metrics.sim_seconds),
        overhead(compacted_outcome.metrics.sim_seconds),
    ]);
    vec![table]
}

/// §7.1 cluster-size scaling note: 1+2 → 1+8 EC2 workers.
pub fn run_scaling(scale_factor: f64) -> Vec<Table> {
    let mut table = Table::new(
        "EC2 cluster-size scaling (Q1, k=50, sim time)",
        &["workers", "HIVE", "PIG", "IJLMR", "ISL", "BFHM"],
    );
    for workers in [2usize, 4, 8] {
        let mut config = FixtureConfig::ec2(scale_factor);
        config.cost = CostModel::ec2(workers);
        let mut fixture = Fixture::load(config);
        fixture.prepare(QuerySpec::Q1);
        let mut row = vec![format!("1+{workers}")];
        for algo in [
            Algorithm::Hive,
            Algorithm::Pig,
            Algorithm::Ijlmr,
            Algorithm::Isl,
            Algorithm::Bfhm,
        ] {
            let outcome = fixture.run(QuerySpec::Q1, algo, 50);
            row.push(fmt_seconds(outcome.metrics.sim_seconds));
        }
        table.row(row);
    }
    vec![table]
}

/// The running example (Fig. 1–6) as an experiment: every algorithm on
/// the 11+11-tuple input.
pub fn run_example_walkthrough() -> Vec<Table> {
    let cluster = Cluster::new(3, CostModel::ec2(3));
    cluster.create_table("r1", &["d"]).expect("table r1");
    cluster.create_table("r2", &["d"]).expect("table r2");
    let client = cluster.client();
    let r1: &[(&str, &[u8], f64)] = &[
        ("r1_01", b"d", 0.82),
        ("r1_02", b"c", 0.93),
        ("r1_03", b"c", 0.67),
        ("r1_04", b"d", 0.82),
        ("r1_05", b"a", 0.73),
        ("r1_06", b"c", 0.79),
        ("r1_07", b"b", 0.82),
        ("r1_08", b"b", 0.70),
        ("r1_09", b"d", 0.68),
        ("r1_10", b"a", 1.00),
        ("r1_11", b"b", 0.64),
    ];
    let r2: &[(&str, &[u8], f64)] = &[
        ("r2_01", b"a", 0.51),
        ("r2_02", b"b", 0.91),
        ("r2_03", b"c", 0.64),
        ("r2_04", b"d", 0.53),
        ("r2_05", b"d", 0.41),
        ("r2_06", b"d", 0.50),
        ("r2_07", b"a", 0.35),
        ("r2_08", b"a", 0.38),
        ("r2_09", b"a", 0.37),
        ("r2_10", b"c", 0.31),
        ("r2_11", b"b", 0.92),
    ];
    for (rows, table) in [(r1, "r1"), (r2, "r2")] {
        for &(key, join, score) in rows {
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        rj_store::cell::Mutation::put("d", b"jk", join.to_vec()),
                        rj_store::cell::Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .expect("load row");
        }
    }
    let query = rj_core::query::RankJoinQuery::new(
        rj_core::query::JoinSide::new("r1", "R1", ("d", b"jk"), ("d", b"score")),
        rj_core::query::JoinSide::new("r2", "R2", ("d", b"jk"), ("d", b"score")),
        3,
        rj_core::score::ScoreFn::Sum,
    );
    let mut executor = RankJoinExecutor::new(&cluster, query.clone());
    executor.prepare_ijlmr().expect("ijlmr");
    executor.prepare_isl().expect("isl");
    executor
        .prepare_bfhm(BfhmConfig {
            num_buckets: 10,
            ..Default::default()
        })
        .expect("bfhm");
    executor
        .prepare_drjn(rj_core::drjn::DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        })
        .expect("drjn");

    let mut table = Table::new(
        "Running example (Fig. 1): top-3 sum-scored rank join",
        &["algo", "sim time", "net bytes", "kv reads", "top-3 scores"],
    );
    let want = oracle::topk(&cluster, &query).expect("oracle");
    for algo in Algorithm::ALL {
        let outcome = executor.execute(algo).expect("execute");
        assert_eq!(outcome.results, want, "{} disagrees", algo.name());
        table.row(vec![
            outcome.algorithm.to_owned(),
            fmt_seconds(outcome.metrics.sim_seconds),
            outcome.metrics.network_bytes.to_string(),
            outcome.metrics.kv_reads.to_string(),
            outcome
                .results
                .iter()
                .map(|t| format!("{:.2}", t.score))
                .collect::<Vec<_>>()
                .join(", "),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_walkthrough_runs() {
        let tables = run_example_walkthrough();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 6, "six algorithms");
        let rendered = tables[0].render();
        assert!(rendered.contains("1.74, 1.73, 1.62"));
    }

    #[test]
    fn tiny_fig7_runs_and_verifies() {
        // Microscopic scale factor to keep the test fast; the oracle
        // cross-check inside metric_tables does the heavy lifting.
        let tables = run_fig7(0.0002);
        assert_eq!(tables.len(), 6);
    }
}
