//! The `serve` experiment: multi-tenant serving throughput with and
//! without cross-query work sharing.
//!
//! An open-loop workload — Poisson-ish arrivals over Zipf-distributed
//! tenants, all querying the same join pair at varying depths — is
//! generated once and replayed against two identically configured
//! [`RankJoinService`] instances: the control arm with sharing disabled
//! (every session pays for its own execution) and the treatment arm with
//! coalescing and the result-prefix cache enabled. Both arms run the
//! exact same arrival trace on the exact same data, so the qps and
//! sojourn-percentile deltas are attributable to sharing alone.
//!
//! The report also carries the metering story the serving layer promises:
//! per-tenant fork-ledger totals, the billing-record totals, and a
//! `conserved` flag asserting they match (every KV read the cluster
//! performed was charged to exactly one session).

use rj_core::executor::RankJoinExecutor;
use rj_core::isl::IslConfig;
use rj_core::query::{JoinSide, RankJoinQuery};
use rj_core::score::ScoreFn;
use rj_serve::{
    QueryPriority, RankJoinService, ServeConfig, SessionId, SessionStatus, SubmitOptions,
};
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;

use crate::report::Table;

/// `serve` experiment knobs.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Registered tenants; arrivals pick one Zipf(`zipf_s`)-distributed.
    pub tenants: usize,
    /// Total query arrivals in the trace.
    pub queries: usize,
    /// Zipf skew across tenants (1.0 = classic, higher = more skewed).
    pub zipf_s: f64,
    /// Sessions dispatched per scheduling round.
    pub round_width: usize,
    /// Rows per base-table side of the synthetic join.
    pub rows_per_side: usize,
    /// LCG seed for the trace.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            tenants: 4,
            queries: 240,
            zipf_s: 1.1,
            round_width: 8,
            rows_per_side: 96,
            seed: 0x5eed_cafe_f00d_u64,
        }
    }
}

/// One arm (sharing on or off) of the experiment.
#[derive(Clone, Debug)]
pub struct ServeArm {
    /// `true` for the work-sharing arm.
    pub sharing: bool,
    /// Sessions that reached a terminal state.
    pub completed: u64,
    /// Queries served per simulated second (`completed / clock`).
    pub qps: f64,
    /// Sojourn percentiles (submit → terminal, simulated seconds).
    pub p50: f64,
    /// 99th percentile sojourn.
    pub p99: f64,
    /// 99.9th percentile sojourn.
    pub p999: f64,
    /// Query executions actually run (a coalesced group counts one).
    pub executions: u64,
    /// Sessions served by coalescing onto a concurrent execution.
    pub coalesced: u64,
    /// Sessions served from the result-prefix cache.
    pub cache_hits: u64,
    /// Cluster-side KV reads summed over every tenant fork ledger.
    pub ledger_kv_reads: u64,
    /// KV reads summed over the per-session billing records.
    pub billed_kv_reads: u64,
    /// Final simulated clock of the arm.
    pub clock: f64,
    /// Per-tenant `(name, ledger kv_reads, billed kv_reads)`.
    pub per_tenant: Vec<(String, u64, u64)>,
}

/// `serve` experiment results: both arms plus the conservation verdict.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The configuration the trace was generated under.
    pub config: ServeBenchConfig,
    /// Control arm: sharing disabled.
    pub off: ServeArm,
    /// Treatment arm: coalescing + prefix cache enabled.
    pub on: ServeArm,
    /// Every arm's ledgers match its billing records exactly on KV reads
    /// (and within float-sum epsilon on simulated seconds).
    pub conserved: bool,
}

/// One arrival in the replayable trace.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    at: f64,
    tenant: usize,
    k: usize,
    priority: QueryPriority,
}

/// Deterministic 64-bit LCG (same constants as the store's tests); the
/// harness takes no RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `(0, 1]` — safe as a log argument.
    fn next_unit(&mut self) -> f64 {
        (((self.next_u64() >> 33) + 1) as f64) / (1u64 << 31) as f64
    }
}

/// The synthetic base data: `rows` rows per side, eight join values,
/// deterministic LCG scores.
fn build_cluster(rows: usize, seed: u64) -> (Cluster, RankJoinQuery) {
    let c = Cluster::new(3, CostModel::test());
    c.create_table("l", &["d"]).expect("bench table");
    c.create_table("r", &["d"]).expect("bench table");
    let client = c.client();
    let mut rng = Lcg(seed);
    for (table, n) in [("l", rows), ("r", rows + 4)] {
        for i in 0..n {
            let key = format!("{table}_{i:05}");
            let jv = vec![b'a' + (i % 8) as u8];
            let score = rng.next_unit();
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        rj_store::cell::Mutation::put("d", b"jk", jv),
                        rj_store::cell::Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .expect("bench row");
        }
    }
    let q = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );
    (c, q)
}

/// A service over a fresh copy of the base data with one ISL backend.
fn build_service(
    config: &ServeBenchConfig,
    sharing: bool,
) -> (RankJoinService, rj_serve::BackendId) {
    let (c, q) = build_cluster(config.rows_per_side, config.seed);
    let mut executor = RankJoinExecutor::new(&c, q);
    executor.isl_config = IslConfig::uniform(8);
    executor.prepare_isl().expect("isl build");
    let service = RankJoinService::new(ServeConfig {
        round_width: config.round_width,
        max_queue_per_tenant: usize::MAX,
        sharing,
        pool_threads: None,
        coalesce_hold_rounds: 0,
    });
    let backend = service.register_backend(executor).expect("backend");
    (service, backend)
}

/// Zipf CDF over `n` tenants with skew `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Generates the replayable arrival trace. The mean interarrival is
/// calibrated to half the measured cost of one mid-depth query, so the
/// service runs saturated (queues form, sharing has something to share).
fn generate_trace(config: &ServeBenchConfig) -> Vec<Arrival> {
    let mean_cost = probe_query_cost(config);
    let mean_dt = mean_cost / 2.0;
    let cdf = zipf_cdf(config.tenants, config.zipf_s);
    let ks = [1usize, 2, 2, 3, 3, 4, 6, 8];
    let mut rng = Lcg(config.seed ^ 0x9e3779b97f4a7c15);
    let mut at = 0.0;
    (0..config.queries)
        .map(|i| {
            at += -rng.next_unit().ln() * mean_dt;
            let u = rng.next_unit();
            let tenant = cdf
                .iter()
                .position(|&c| u <= c)
                .unwrap_or(config.tenants - 1);
            let k = ks[(rng.next_u64() >> 7) as usize % ks.len()];
            let priority = if i % 8 == 7 {
                QueryPriority::Batch
            } else {
                QueryPriority::Interactive
            };
            Arrival {
                at,
                tenant,
                k,
                priority,
            }
        })
        .collect()
}

/// Measures one k=4 query's simulated cost on a throwaway service.
fn probe_query_cost(config: &ServeBenchConfig) -> f64 {
    let (service, backend) = build_service(config, false);
    let tenant = service.register_tenant("probe", 1.0).expect("tenant");
    service
        .submit(tenant, backend, SubmitOptions::topk(4))
        .expect("probe submit");
    service.run_until_idle().expect("probe run");
    service
        .tenant_usage(tenant)
        .expect("probe usage")
        .sim_seconds
        .max(1e-12)
}

/// Replays the trace against one service arm.
fn run_arm(config: &ServeBenchConfig, trace: &[Arrival], sharing: bool) -> ServeArm {
    let (service, backend) = build_service(config, sharing);
    let tenants: Vec<_> = (0..config.tenants)
        .map(|i| {
            service
                .register_tenant(&format!("t{i}"), 1.0)
                .expect("tenant")
        })
        .collect();
    let mut ids: Vec<SessionId> = Vec::with_capacity(trace.len());
    let mut next = 0usize;
    loop {
        while next < trace.len() && trace[next].at <= service.clock() {
            let a = trace[next];
            let opts = SubmitOptions::topk(a.k).with_priority(a.priority);
            ids.push(
                service
                    .submit(tenants[a.tenant], backend, opts)
                    .expect("unbounded queue"),
            );
            next += 1;
        }
        let c = service.counters();
        let terminal = c.completed + c.cancelled + c.deadline_expired + c.failed;
        if c.submitted == terminal {
            if next >= trace.len() {
                break;
            }
            // Idle gap: jump the clock to the next arrival.
            service.advance_clock_to(trace[next].at);
            continue;
        }
        service.run_round().expect("round");
    }
    let mut sojourns: Vec<f64> = ids
        .iter()
        .map(|id| match service.poll(*id).expect("session") {
            SessionStatus::Done(result) => result.sojourn(),
            other => panic!("trace session not terminal: {other:?}"),
        })
        .collect();
    sojourns.sort_by(f64::total_cmp);
    let counters = service.counters();
    let mut per_tenant = Vec::with_capacity(tenants.len());
    let mut ledger_kv = 0u64;
    for (i, t) in tenants.iter().enumerate() {
        let usage = service.tenant_usage(*t).expect("usage");
        let charged = service.tenant_charged(*t).expect("charged");
        ledger_kv += usage.kv_reads;
        per_tenant.push((format!("t{i}"), usage.kv_reads, charged.kv_reads));
    }
    let clock = service.clock();
    ServeArm {
        sharing,
        completed: counters.completed,
        qps: counters.completed as f64 / clock.max(1e-12),
        p50: percentile(&sojourns, 0.50),
        p99: percentile(&sojourns, 0.99),
        p999: percentile(&sojourns, 0.999),
        executions: counters.executions,
        coalesced: counters.coalesced,
        cache_hits: counters.cache_hits,
        ledger_kv_reads: ledger_kv,
        billed_kv_reads: service.charged_total().kv_reads,
        clock,
        per_tenant,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn arm_conserved(arm: &ServeArm) -> bool {
    arm.ledger_kv_reads == arm.billed_kv_reads
        && arm
            .per_tenant
            .iter()
            .all(|(_, usage, billed)| usage == billed)
}

/// Runs the `serve` experiment: generate the trace once, replay it with
/// sharing off then on.
pub fn run_serve(config: &ServeBenchConfig) -> ServeReport {
    let trace = generate_trace(config);
    let off = run_arm(config, &trace, false);
    let on = run_arm(config, &trace, true);
    let conserved = arm_conserved(&off) && arm_conserved(&on);
    ServeReport {
        config: config.clone(),
        off,
        on,
        conserved,
    }
}

impl ServeReport {
    /// `on.qps / off.qps` — what sharing buys.
    pub fn sharing_speedup(&self) -> f64 {
        self.on.qps / self.off.qps.max(1e-12)
    }

    /// Renders the report as experiment tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut arms = Table::new(
            &format!(
                "Multi-tenant serving: {} queries, {} tenants (zipf s={}), width {}",
                self.config.queries,
                self.config.tenants,
                self.config.zipf_s,
                self.config.round_width
            ),
            &[
                "sharing",
                "qps",
                "p50 (s)",
                "p99 (s)",
                "p999 (s)",
                "execs",
                "coalesced",
                "cache hits",
                "KV reads",
            ],
        );
        for arm in [&self.off, &self.on] {
            arms.row(vec![
                if arm.sharing { "on" } else { "off" }.to_owned(),
                format!("{:.1}", arm.qps),
                format!("{:.6}", arm.p50),
                format!("{:.6}", arm.p99),
                format!("{:.6}", arm.p999),
                arm.executions.to_string(),
                arm.coalesced.to_string(),
                arm.cache_hits.to_string(),
                arm.ledger_kv_reads.to_string(),
            ]);
        }
        let mut tenants = Table::new(
            "Per-tenant metering, sharing-on arm (ledger == billed ⇒ conserved)",
            &["tenant", "ledger KV reads", "billed KV reads"],
        );
        for (name, usage, billed) in &self.on.per_tenant {
            tenants.row(vec![name.clone(), usage.to_string(), billed.to_string()]);
        }
        vec![arms, tenants]
    }

    /// Machine-readable JSON (the `BENCH_serve.json` artifact).
    pub fn to_json(&self) -> String {
        let arm_json = |arm: &ServeArm| -> String {
            format!(
                "{{\"sharing\": {}, \"completed\": {}, \"qps\": {:.3}, \"p50\": {:.9}, \
                 \"p99\": {:.9}, \"p999\": {:.9}, \"executions\": {}, \"coalesced\": {}, \
                 \"cache_hits\": {}, \"ledger_kv_reads\": {}, \"billed_kv_reads\": {}, \
                 \"clock\": {:.9}}}",
                arm.sharing,
                arm.completed,
                arm.qps,
                arm.p50,
                arm.p99,
                arm.p999,
                arm.executions,
                arm.coalesced,
                arm.cache_hits,
                arm.ledger_kv_reads,
                arm.billed_kv_reads,
                arm.clock,
            )
        };
        let per_tenant: Vec<String> = self
            .on
            .per_tenant
            .iter()
            .map(|(name, usage, billed)| {
                format!(
                    "{{\"tenant\": \"{name}\", \"ledger_kv_reads\": {usage}, \
                     \"billed_kv_reads\": {billed}}}"
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"serve\",\n  \"queries\": {},\n  \"tenants\": {},\n  \
             \"zipf_s\": {},\n  \"arms\": {{\"off\": {}, \"on\": {}}},\n  \
             \"sharing_speedup\": {:.3},\n  \"per_tenant\": [{}],\n  \"conserved\": {}\n}}\n",
            self.config.queries,
            self.config.tenants,
            self.config.zipf_s,
            arm_json(&self.off),
            arm_json(&self.on),
            self.sharing_speedup(),
            per_tenant.join(", "),
            self.conserved,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_sharing_wins_and_work_is_conserved() {
        let report = run_serve(&ServeBenchConfig {
            queries: 60,
            rows_per_side: 48,
            ..ServeBenchConfig::default()
        });
        assert_eq!(report.off.completed, 60);
        assert_eq!(report.on.completed, 60);
        assert!(report.conserved, "ledgers must equal billing records");
        assert!(
            report.on.executions < report.off.executions,
            "sharing must eliminate executions ({} vs {})",
            report.on.executions,
            report.off.executions
        );
        assert!(report.on.coalesced + report.on.cache_hits > 0);
        assert!(
            report.sharing_speedup() >= 1.0,
            "sharing-on qps must not regress: {:.3}",
            report.sharing_speedup()
        );
        assert!(
            report.on.p99 <= report.off.p99 * 1.001,
            "sharing-on p99 must be equal or better: {} vs {}",
            report.on.p99,
            report.off.p99
        );
        let json = report.to_json();
        for key in [
            "\"experiment\"",
            "\"arms\"",
            "\"sharing_speedup\"",
            "\"per_tenant\"",
            "\"conserved\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(report.tables().len(), 2);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.50), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.5], 0.999), 7.5);
    }
}
