//! The planner experiment: predicted vs measured cost for `Auto` and
//! every fixed algorithm over a `k` × cost-profile × query grid.
//!
//! For every grid cell the experiment (i) measures each fixed algorithm's
//! simulated turnaround time and KV-read dollar cost, (ii) asks the
//! cost-based planner for its prediction and choice under both
//! objectives, (iii) runs `Algorithm::Auto` end-to-end and cross-checks
//! its results against the oracle. The JSON artifact
//! (`BENCH_planner.json`) records the full grid plus the planner's
//! *agreement rate* — the fraction of cells where the planner picked the
//! measured-cheapest algorithm — which the acceptance test holds at ≥
//! 90%.

use rj_core::executor::Algorithm;
use rj_core::oracle;
use rj_core::planner::Objective;
use rj_core::stats::QueryOutcome;

use crate::experiments::K_SWEEP;
use crate::fixture::{Fixture, FixtureConfig, QuerySpec};
use crate::report::{fmt_seconds, json_escape, Table};

/// One algorithm's predicted and measured costs in one grid cell.
#[derive(Clone, Debug)]
pub struct AlgoCosts {
    /// Algorithm name.
    pub algo: &'static str,
    /// Planner-predicted turnaround seconds.
    pub pred_seconds: f64,
    /// Measured simulated turnaround seconds.
    pub meas_seconds: f64,
    /// Planner-predicted KV read units.
    pub pred_reads: f64,
    /// Measured KV read units.
    pub meas_reads: u64,
}

/// One cell of the planner grid.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Cost-model profile name ("EC2", "LC").
    pub profile: String,
    /// Query name ("Q1", "Q2").
    pub query: String,
    /// Result size.
    pub k: usize,
    /// Planner choice under [`Objective::Time`].
    pub chosen_time: &'static str,
    /// Planner choice under [`Objective::Dollars`].
    pub chosen_dollars: &'static str,
    /// Measured-fastest fixed algorithm.
    pub cheapest_time: &'static str,
    /// Measured-cheapest (fewest KV reads) fixed algorithm.
    pub cheapest_dollars: &'static str,
    /// Did the time-objective choice match the measured-fastest (ties on
    /// measured cost count as a match)?
    pub agree_time: bool,
    /// Did the dollar-objective choice match the measured-cheapest?
    pub agree_dollars: bool,
    /// Per-algorithm predicted/measured costs.
    pub algos: Vec<AlgoCosts>,
}

/// The full planner-experiment report.
#[derive(Clone, Debug)]
pub struct PlannerReport {
    /// Every grid cell.
    pub grid: Vec<GridCell>,
    /// Fraction of cells where the time-objective choice was measured-fastest.
    pub agreement_time: f64,
    /// Fraction of cells where the dollar-objective choice was measured-cheapest.
    pub agreement_dollars: f64,
}

impl PlannerReport {
    /// Renders per-profile/query prediction-vs-measurement tables plus an
    /// agreement summary.
    pub fn tables(&self) -> Vec<Table> {
        let mut out = Vec::new();
        let mut keys: Vec<(String, String)> = self
            .grid
            .iter()
            .map(|c| (c.profile.clone(), c.query.clone()))
            .collect();
        keys.dedup();
        for (profile, query) in keys {
            let header: Vec<String> = std::iter::once("algo".to_owned())
                .chain(K_SWEEP.iter().map(|k| format!("k={k} pred/meas")))
                .collect();
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut t = Table::new(
                &format!("Planner {profile} {query}: predicted vs measured time"),
                &header_refs,
            );
            let algo_names: Vec<&'static str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
            for name in algo_names {
                let mut row = vec![name.to_owned()];
                for cell in self
                    .grid
                    .iter()
                    .filter(|c| c.profile == profile && c.query == query)
                {
                    let a = cell.algos.iter().find(|a| a.algo == name).expect("algo");
                    row.push(format!(
                        "{}/{}",
                        fmt_seconds(a.pred_seconds),
                        fmt_seconds(a.meas_seconds)
                    ));
                }
                t.row(row);
            }
            let mut chosen_row = vec!["AUTO→".to_owned()];
            for cell in self
                .grid
                .iter()
                .filter(|c| c.profile == profile && c.query == query)
            {
                chosen_row.push(format!(
                    "{}{}",
                    cell.chosen_time,
                    if cell.agree_time { " ✓" } else { " ✗" }
                ));
            }
            t.row(chosen_row);
            out.push(t);
        }
        let mut summary = Table::new(
            "Planner agreement with measured-cheapest",
            &["objective", "agreement"],
        );
        summary.row(vec![
            "time".into(),
            format!("{:.0}%", self.agreement_time * 100.0),
        ]);
        summary.row(vec![
            "dollars".into(),
            format!("{:.0}%", self.agreement_dollars * 100.0),
        ]);
        out.push(summary);
        out
    }

    /// Machine-readable JSON (the `BENCH_planner.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"planner\",\n");
        out.push_str(&format!(
            "  \"agreement_time\": {:.4}, \"agreement_dollars\": {:.4},\n  \"grid\": [\n",
            self.agreement_time, self.agreement_dollars
        ));
        let cells: Vec<String> = self
            .grid
            .iter()
            .map(|c| {
                let algos: Vec<String> = c
                    .algos
                    .iter()
                    .map(|a| {
                        format!(
                            "{{\"algo\": \"{}\", \"pred_seconds\": {:.6}, \"meas_seconds\": {:.6}, \
                             \"pred_reads\": {:.1}, \"meas_reads\": {}}}",
                            json_escape(a.algo),
                            a.pred_seconds,
                            a.meas_seconds,
                            a.pred_reads,
                            a.meas_reads
                        )
                    })
                    .collect();
                format!(
                    "    {{\"profile\": \"{}\", \"query\": \"{}\", \"k\": {}, \
                     \"chosen_time\": \"{}\", \"chosen_dollars\": \"{}\", \
                     \"cheapest_time\": \"{}\", \"cheapest_dollars\": \"{}\", \
                     \"agree_time\": {}, \"agree_dollars\": {},\n     \"algos\": [{}]}}",
                    json_escape(&c.profile),
                    json_escape(&c.query),
                    c.k,
                    c.chosen_time,
                    c.chosen_dollars,
                    c.cheapest_time,
                    c.cheapest_dollars,
                    c.agree_time,
                    c.agree_dollars,
                    algos.join(", ")
                )
            })
            .collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Measured cost of `outcome` under one objective.
fn measured(outcome: &QueryOutcome, objective: Objective) -> f64 {
    match objective {
        Objective::Time => outcome.metrics.sim_seconds,
        Objective::Dollars => outcome.metrics.kv_reads as f64,
    }
}

/// Runs one profile's share of the grid into `grid`.
fn run_profile(label: &str, config: FixtureConfig, grid: &mut Vec<GridCell>) {
    let mut fixture = Fixture::load(config);
    fixture.prepare(QuerySpec::Q1);
    fixture.prepare(QuerySpec::Q2);
    for spec in [QuerySpec::Q1, QuerySpec::Q2] {
        for &k in &K_SWEEP {
            // Measure every fixed algorithm once.
            let outcomes: Vec<(Algorithm, QueryOutcome)> = Algorithm::ALL
                .into_iter()
                .map(|algo| (algo, fixture.run(spec, algo, k)))
                .collect();
            // Auto must agree with the oracle on every cell.
            let auto = fixture
                .executor(spec)
                .execute_with_k(Algorithm::Auto, k)
                .expect("auto");
            let want = oracle::topk(&fixture.cluster, &spec.query(k)).expect("oracle");
            assert_eq!(auto.results, want, "AUTO wrong on {label} {spec:?} k={k}");

            let ex = fixture.executor_mut(spec);
            ex.objective = Objective::Time;
            let plan_time = ex.plan_with_k(k).expect("time plan");
            ex.objective = Objective::Dollars;
            let plan_dollars = ex.plan_with_k(k).expect("dollar plan");
            ex.objective = Objective::Time;

            let cheapest_by = |objective: Objective| -> &'static str {
                outcomes
                    .iter()
                    .min_by(|(_, a), (_, b)| {
                        measured(a, objective).total_cmp(&measured(b, objective))
                    })
                    .map(|(algo, _)| algo.name())
                    .expect("six algorithms")
            };
            // A choice "agrees" when its measured cost equals the best
            // measured cost (tie epsilon only — algorithms can tie on
            // identical read counts, making the cheapest *name*
            // ambiguous while the cheapest *cost* is not).
            let agrees = |choice: Algorithm, objective: Objective| -> bool {
                let best = outcomes
                    .iter()
                    .map(|(_, o)| measured(o, objective))
                    .fold(f64::INFINITY, f64::min);
                let chosen = outcomes
                    .iter()
                    .find(|(a, _)| *a == choice)
                    .map(|(_, o)| measured(o, objective))
                    .expect("choice was measured");
                chosen <= best * (1.0 + 1e-9) + 1e-12
            };
            let chosen_time = plan_time.best().expect("candidates");
            let chosen_dollars = plan_dollars.best().expect("candidates");
            grid.push(GridCell {
                profile: label.to_owned(),
                query: spec.name().to_owned(),
                k,
                chosen_time: chosen_time.name(),
                chosen_dollars: chosen_dollars.name(),
                cheapest_time: cheapest_by(Objective::Time),
                cheapest_dollars: cheapest_by(Objective::Dollars),
                agree_time: agrees(chosen_time, Objective::Time),
                agree_dollars: agrees(chosen_dollars, Objective::Dollars),
                algos: outcomes
                    .iter()
                    .map(|(algo, o)| AlgoCosts {
                        algo: algo.name(),
                        pred_seconds: plan_time
                            .estimate(*algo)
                            .map(|e| e.seconds)
                            .unwrap_or(f64::NAN),
                        meas_seconds: o.metrics.sim_seconds,
                        pred_reads: plan_time
                            .estimate(*algo)
                            .map(|e| e.kv_reads)
                            .unwrap_or(f64::NAN),
                        meas_reads: o.metrics.kv_reads,
                    })
                    .collect(),
            });
        }
    }
}

/// Runs the full planner grid: both cost profiles × both queries × the
/// figure `k` sweep.
pub fn run_planner(sf_ec2: f64, sf_lab: f64) -> PlannerReport {
    let mut grid = Vec::new();
    run_profile("EC2", FixtureConfig::ec2(sf_ec2), &mut grid);
    run_profile("LC", FixtureConfig::lab(sf_lab), &mut grid);
    let frac = |f: fn(&GridCell) -> bool| -> f64 {
        grid.iter().filter(|c| f(c)).count() as f64 / grid.len().max(1) as f64
    };
    PlannerReport {
        agreement_time: frac(|c| c.agree_time),
        agreement_dollars: frac(|c| c.agree_dollars),
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: on the benchmark grid the planner
    /// picks the measured-cheapest prepared algorithm (per objective) on
    /// at least 90% of cells, and `Auto` is oracle-exact everywhere
    /// (asserted inside `run_profile`).
    #[test]
    fn planner_agreement_is_at_least_90_percent() {
        let report = run_planner(0.0005, 0.002);
        assert_eq!(report.grid.len(), 16, "2 profiles × 2 queries × 4 k");
        assert!(
            report.agreement_time >= 0.9,
            "time agreement {:.2} < 0.9:\n{:#?}",
            report.agreement_time,
            report
                .grid
                .iter()
                .filter(|c| !c.agree_time)
                .map(|c| format!(
                    "{} {} k={}: chose {}, fastest {}",
                    c.profile, c.query, c.k, c.chosen_time, c.cheapest_time
                ))
                .collect::<Vec<_>>()
        );
        assert!(
            report.agreement_dollars >= 0.9,
            "dollar agreement {:.2} < 0.9",
            report.agreement_dollars
        );
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"planner\""));
        assert!(json.contains("\"grid\""));
        assert!(json.contains("\"agreement_time\""));
    }
}
