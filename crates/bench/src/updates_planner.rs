//! The updates-planner experiment: does `Algorithm::Auto` keep agreeing
//! with a fresh-statistics oracle while TPC-H refresh sets stream through
//! the §6 maintained write path?
//!
//! Before the incremental statistics-maintenance subsystem
//! (`rj_core::statsmaint`), the answer was no: the executor snapshotted
//! statistics once, so every plan after the first refresh set was priced
//! against histograms that no longer described the data. This experiment
//! regression-guards the fix. Each round applies one refresh set through
//! [`MaintainedSide`]s registered on the executor's shared statistics
//! handle, then compares the executor's (incrementally-maintained) plan
//! against an oracle plan computed from a freshly collected
//! [`rj_core::planner::TableStats`] pass, for a small `k` sweep. The JSON artifact
//! (`BENCH_updates_planner.json`) records per-cell staleness, which
//! statistics path the plan took, and the overall *plan-agreement* rate —
//! plus how many full statistics passes the handle ran, which stays at
//! the initial one as long as staleness remains under the bound.

use rj_core::executor::Algorithm;
use rj_core::maintenance::MaintainedSide;
use rj_core::oracle;
use rj_core::planner::{self, Objective};
use rj_tpch::{generate_update_set, TpchConfig};

use crate::experiments::apply_update_set;
use crate::fixture::{Fixture, FixtureConfig, QuerySpec};
use crate::report::{json_escape, Table};

/// The `k` values planned per round (small sweep — the interesting axis
/// here is rounds of mutations, not `k`).
const K_SWEEP: [usize; 3] = [1, 10, 50];

/// One `(round, k)` cell: the maintained plan vs the fresh-stats oracle.
#[derive(Clone, Debug)]
pub struct UpdateCell {
    /// Refresh-set rounds applied before this plan (1-based).
    pub round: usize,
    /// Result size planned for.
    pub k: usize,
    /// Mutated fraction recorded by the statistics handle at plan time.
    pub staleness: f64,
    /// Statistics path the plan took ("exact" / "maintained" /
    /// "recollected").
    pub source: &'static str,
    /// Algorithm the maintained plan chose.
    pub chosen: &'static str,
    /// Algorithm a plan over freshly collected statistics chooses.
    pub oracle: &'static str,
    /// `chosen == oracle`.
    pub agree: bool,
}

/// The full experiment report.
#[derive(Clone, Debug)]
pub struct UpdatesPlannerReport {
    /// TPC-H scale factor the fixture loaded.
    pub scale_factor: f64,
    /// Refresh-set rounds applied.
    pub rounds: usize,
    /// Total mutations that landed through the maintained write path.
    pub mutations: usize,
    /// Full statistics passes the shared handle ran over the whole
    /// experiment (1 = the initial pass; every re-collection adds one).
    pub collections: u64,
    /// Fraction of cells where the maintained plan agreed with the
    /// fresh-stats oracle.
    pub agreement: f64,
    /// Every `(round, k)` cell.
    pub cells: Vec<UpdateCell>,
}

impl UpdatesPlannerReport {
    /// Renders the per-round agreement table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Updates-planner: maintained plans vs fresh-stats oracle \
                 (SF={}, {} refresh rounds, {} mutations)",
                self.scale_factor, self.rounds, self.mutations
            ),
            &[
                "round",
                "k",
                "staleness",
                "stats path",
                "chosen",
                "oracle",
                "agree",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.round.to_string(),
                c.k.to_string(),
                format!("{:.2}%", c.staleness * 100.0),
                c.source.to_owned(),
                c.chosen.to_owned(),
                c.oracle.to_owned(),
                if c.agree { "✓" } else { "✗" }.to_owned(),
            ]);
        }
        t
    }

    /// Machine-readable JSON (the `BENCH_updates_planner.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"updates_planner\",\n");
        out.push_str(&format!(
            "  \"scale_factor\": {}, \"rounds\": {}, \"mutations\": {}, \
             \"collections\": {}, \"agreement\": {:.4},\n  \"cells\": [\n",
            self.scale_factor, self.rounds, self.mutations, self.collections, self.agreement
        ));
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"round\": {}, \"k\": {}, \"staleness\": {:.6}, \
                     \"source\": \"{}\", \"chosen\": \"{}\", \"oracle\": \"{}\", \
                     \"agree\": {}}}",
                    c.round,
                    c.k,
                    c.staleness,
                    json_escape(c.source),
                    json_escape(c.chosen),
                    json_escape(c.oracle),
                    c.agree
                )
            })
            .collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Runs the sweep: load Q2, register maintained sides on the executor's
/// statistics handle, then interleave refresh sets with `Auto` planning
/// and compare every plan against a fresh-stats oracle.
pub fn run_updates_planner(scale_factor: f64, rounds: usize) -> UpdatesPlannerReport {
    let tpch_cfg = TpchConfig::new(scale_factor);
    let fixture = Fixture::load(FixtureConfig::lab(scale_factor));
    let query = QuerySpec::Q2.query(10);
    // Prepare only the three indices the §6 write path maintains (ISL,
    // IJLMR, BFHM) — DRJN has no maintained write path, so offering it
    // to the planner under a mutating workload would let `Auto` run a
    // stale index. (This is why the experiment builds its own executor
    // instead of using `Fixture::prepare`, which builds all four.)
    let mut ex = rj_core::executor::RankJoinExecutor::new(&fixture.cluster, query.clone());
    ex.isl_config = rj_core::isl::IslConfig::uniform(fixture.config.isl_batch);
    ex.prepare_ijlmr().expect("ijlmr build");
    ex.prepare_isl().expect("isl build");
    ex.prepare_bfhm(rj_core::bfhm::BfhmConfig::with_buckets(
        fixture.config.bfhm_buckets,
    ))
    .expect("bfhm build");
    let handle = ex.stats_handle();

    let isl_table = rj_core::isl::index_table_name(&query);
    let ijlmr_table = rj_core::ijlmr::index_table_name(&query);
    let bfhm_table = rj_core::bfhm::index_table_name(&query);
    let maintained = |side: &rj_core::query::JoinSide| {
        MaintainedSide::new(&fixture.cluster, side.clone())
            .with_isl(&isl_table)
            .with_ijlmr(&ijlmr_table)
            .with_bfhm(
                rj_core::bfhm::maintenance::BfhmMaintainer::attach(
                    &fixture.cluster,
                    &bfhm_table,
                    &side.label,
                )
                .expect("attach bfhm maintainer"),
            )
            .with_stats(handle.clone())
    };
    let orders = maintained(&query.left);
    let lineitems = maintained(&query.right);

    // Prime the handle so round 1 exercises the maintained path, not the
    // first-ever collection.
    let _ = ex.plan().expect("prime plan");

    let mut cells = Vec::new();
    let mut mutations = 0usize;
    for round in 1..=rounds {
        let set = generate_update_set(&tpch_cfg, round as u64);
        mutations += apply_update_set(&orders, &lineitems, &set).expect("apply refresh set");

        // Fresh-stats oracle on a forked ledger (its admin reads must not
        // blur the handle's below-bound "no full pass" accounting).
        let oracle_fork = fixture.cluster.fork_metrics();
        let fresh = planner::collect_stats(&oracle_fork, &query).expect("fresh stats");
        for k in K_SWEEP {
            let staleness = handle.staleness();
            let plan = ex.plan_with_k(k).expect("maintained plan");
            let oracle_plan = planner::plan(
                &fresh,
                &query,
                k,
                fixture.cluster.cost_model(),
                Objective::Time,
                &ex.candidates(),
                rj_core::ExecutionMode::Serial,
            );
            let chosen = plan.best().expect("candidates").name();
            let oracle_best = oracle_plan.best().expect("candidates").name();
            cells.push(UpdateCell {
                round,
                k,
                staleness,
                source: plan.stats_source.name(),
                chosen,
                oracle: oracle_best,
                agree: chosen == oracle_best,
            });
        }
        // And the chosen plan must still *answer* correctly: Auto vs the
        // result oracle, once per round.
        let auto = ex.execute_with_k(Algorithm::Auto, 10).expect("auto");
        let want = oracle::topk(&fixture.cluster, &query).expect("oracle");
        assert_eq!(auto.results, want, "AUTO wrong after round {round}");
    }

    let agreement = cells.iter().filter(|c| c.agree).count() as f64 / cells.len().max(1) as f64;
    UpdatesPlannerReport {
        scale_factor,
        rounds,
        mutations,
        collections: handle.collections(),
        agreement,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's bench-side acceptance: under interleaved refresh sets the
    /// maintained plans agree with the fresh-stats oracle (the maintained
    /// snapshot is exact in everything the estimators read, modulo
    /// bucket-granular `max_score`), and as long as staleness stays under
    /// the bound the handle never re-runs the full statistics pass.
    #[test]
    fn maintained_plans_agree_with_fresh_stats_oracle() {
        let report = run_updates_planner(0.002, 3);
        assert_eq!(report.cells.len(), 9, "3 rounds × 3 k values");
        assert!(report.mutations > 0);
        assert!(
            report.agreement >= 0.9,
            "plan agreement {:.2} < 0.9:\n{:#?}",
            report.agreement,
            report.cells
        );
        // Every below-bound cell must have planned from maintained stats;
        // collections can only grow past the initial pass by crossing the
        // bound.
        let recollects = report
            .cells
            .iter()
            .filter(|c| c.source == "recollected")
            .count() as u64;
        assert!(report.collections <= 1 + recollects);
        assert!(report
            .cells
            .iter()
            .all(|c| c.source == "maintained" || c.source == "recollected"));
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"updates_planner\""));
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"agreement\""));
        assert!(json.contains("\"collections\""));
    }
}
