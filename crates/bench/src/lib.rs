//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7).
//!
//! The harness builds a cluster under one of the paper's two testbed
//! profiles (EC2 / lab cluster), loads TPC-H-style data at a laptop-scaled
//! scale factor, builds all indices, runs every algorithm over a `k`
//! sweep, and prints figure-shaped tables of the three metrics: simulated
//! turnaround time, network bytes, and KV read units (dollar cost).
//!
//! Absolute numbers are not comparable to the paper's testbed (our
//! substrate is a simulator and the scale factors are thousands of times
//! smaller); the *shape* — who wins, by roughly what factor, where the
//! crossovers fall — is what EXPERIMENTS.md tracks.

#![warn(missing_docs)]

pub mod adaptive;
pub mod cursor;
pub mod experiments;
pub mod fixture;
pub mod multiway;
pub mod planner;
pub mod poolbench;
pub mod report;
pub mod serve;
pub mod throughput;
pub mod updates_planner;

pub use adaptive::{run_adaptive, AdaptiveReport};
pub use cursor::{run_cursor, CursorBenchConfig, CursorReport};
pub use experiments::{
    apply_update_set, run_example_walkthrough, run_fig7, run_fig8, run_fig9, run_memory,
    run_scaling, run_sizes, run_updates,
};
pub use fixture::{Fixture, FixtureConfig, QuerySpec};
pub use multiway::{run_multiway, MultiwayBenchConfig, MultiwayReport};
pub use planner::{run_planner, PlannerReport};
pub use poolbench::{run_poolbench, PoolReport};
pub use report::Table;
pub use serve::{run_serve, ServeBenchConfig, ServeReport};
pub use throughput::{run_throughput, ThroughputConfig, ThroughputReport};
pub use updates_planner::{run_updates_planner, UpdatesPlannerReport};
