//! The `multiway` experiment: N-ary rank joins through the
//! [`rj_core::multiway::SpecExecutor`].
//!
//! Two lanes, all metered on private fork ledgers:
//!
//! * **Plan grid** — a 3-way path join over two dataset shapes (a
//!   *bottleneck* shape with a small selective interior side between two
//!   big outer sides, and a *uniform* shape) swept over `k`. Every cell
//!   measures the KV reads of **all** `2^3` per-side access assignments
//!   (descend vs. materialize) plus the planner's own choice; the
//!   planner's cost-model pick must stay within a small factor of the
//!   measured-cheapest assignment across the grid.
//! * **Binary pin** — the two-side degenerate spec next to the binary
//!   ISL executor on identical data: the spec path must charge exactly
//!   the binary reads (the compatibility pin, surfaced as a benchmark
//!   artifact).

use rj_core::multiway::{SideAccess, SpecExecutor};
use rj_core::query::{JoinSide, JoinSpec, RankJoinQuery};
use rj_core::score::ScoreFn;
use rj_core::{Algorithm, RankJoinExecutor};
use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;

use crate::report::Table;

/// `multiway` experiment knobs.
#[derive(Clone, Debug)]
pub struct MultiwayBenchConfig {
    /// Rows in each outer side of the bottleneck shape.
    pub outer_rows: usize,
    /// Rows in the bottleneck shape's interior side.
    pub interior_rows: usize,
    /// Rows per side of the uniform shape.
    pub uniform_rows: usize,
    /// Join-value alphabet size (controls fan-out).
    pub join_values: usize,
    /// Answer depths swept per shape.
    pub ks: Vec<usize>,
    /// LCG seed for the synthetic scores.
    pub seed: u64,
}

impl Default for MultiwayBenchConfig {
    fn default() -> Self {
        MultiwayBenchConfig {
            outer_rows: 240,
            interior_rows: 30,
            uniform_rows: 90,
            join_values: 12,
            ks: vec![1, 10, 25],
            seed: 0x3a11_ce5e_u64,
        }
    }
}

/// One grid cell: the planner's pick vs the measured-cheapest of all
/// access assignments at one `(shape, k)`.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Dataset shape name (`bottleneck` / `uniform`).
    pub shape: &'static str,
    /// Answer depth.
    pub k: usize,
    /// The planner's access choice, one letter per side (`D`/`M`).
    pub auto_plan: String,
    /// KV reads of the planner's choice.
    pub auto_kv_reads: u64,
    /// The measured-cheapest assignment.
    pub best_plan: String,
    /// KV reads of the measured-cheapest assignment.
    pub best_kv_reads: u64,
}

impl GridCell {
    /// `auto / cheapest` — 1.0 means the planner picked the winner.
    pub fn ratio(&self) -> f64 {
        self.auto_kv_reads as f64 / self.best_kv_reads.max(1) as f64
    }
}

/// `multiway` experiment results.
#[derive(Clone, Debug)]
pub struct MultiwayReport {
    /// The configuration the lanes ran under.
    pub config: MultiwayBenchConfig,
    /// One cell per `(shape, k)`.
    pub grid: Vec<GridCell>,
    /// Binary pin: KV reads of the binary ISL executor.
    pub binary_kv_reads: u64,
    /// Binary pin: KV reads of the two-side spec execution.
    pub spec_kv_reads: u64,
}

impl MultiwayReport {
    /// The worst `auto / cheapest` ratio across the grid.
    pub fn auto_worst_ratio(&self) -> f64 {
        self.grid.iter().map(GridCell::ratio).fold(1.0, f64::max)
    }

    /// Whether the two-side spec charged exactly the binary reads.
    pub fn binary_identical(&self) -> bool {
        self.binary_kv_reads == self.spec_kv_reads
    }
}

/// Deterministic 64-bit LCG (same constants as the store's tests).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((self.0 >> 33) + 1) as f64) / (1u64 << 31) as f64
    }
}

/// Loads one table per side and returns the 3-way path spec over them.
fn load_three_way(rows: [usize; 3], join_values: usize, seed: u64) -> (Cluster, JoinSpec) {
    let c = Cluster::new(3, CostModel::test());
    let names = ["t0", "t1", "t2"];
    let labels = ["S0", "S1", "S2"];
    let client = c.client();
    let mut rng = Lcg(seed);
    let mut sides = Vec::with_capacity(3);
    for (i, n) in rows.into_iter().enumerate() {
        c.create_table(names[i], &["d"]).expect("bench table");
        for r in 0..n {
            let key = format!("{}_{r:05}", names[i]);
            let jv = format!("j{:03}", r % join_values.max(1));
            let score = rng.next_unit();
            client
                .mutate_row(
                    names[i],
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", jv.into_bytes()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .expect("bench row");
        }
        sides.push(JoinSide::new(
            names[i],
            labels[i],
            ("d", b"jk"),
            ("d", b"score"),
        ));
    }
    let spec = JoinSpec::path(sides, 1, ScoreFn::Sum).expect("path spec");
    (c, spec)
}

/// `D`/`M` string for an access assignment.
fn plan_name(access: &[SideAccess]) -> String {
    access
        .iter()
        .map(|a| match a {
            SideAccess::Descend => 'D',
            SideAccess::Materialize => 'M',
        })
        .collect()
}

/// KV-read delta of executing `proto` at `k` with the given override
/// (`None` = the planner's own choice) on a fresh fork ledger.
fn metered_run(
    cluster: &Cluster,
    proto: &SpecExecutor,
    k: usize,
    access: Option<Vec<SideAccess>>,
) -> u64 {
    let fork = cluster.fork_metrics();
    let mut ex = proto.fork_onto(&fork).expect("fork");
    ex.access_override = access;
    let before = fork.metrics().snapshot();
    ex.execute_with_k(k).expect("multiway run");
    fork.metrics().snapshot().delta_since(&before).kv_reads
}

/// The plan grid over one dataset shape.
fn run_grid(
    shape: &'static str,
    rows: [usize; 3],
    config: &MultiwayBenchConfig,
    out: &mut Vec<GridCell>,
) {
    let (cluster, spec) = load_three_way(rows, config.join_values, config.seed);
    let mut proto = SpecExecutor::new(&cluster, spec);
    proto.prepare().expect("multiway index");
    for &k in &config.ks {
        // Prime the statistics snapshot (and read off the planner's
        // choice) before any fork is metered.
        let auto_access = proto.plan_access(k).expect("plan");
        let auto_kv_reads = metered_run(&cluster, &proto, k, None);
        let mut best: Option<(u64, Vec<SideAccess>)> = None;
        for mask in 0u32..8 {
            let access: Vec<SideAccess> = (0..3)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        SideAccess::Materialize
                    } else {
                        SideAccess::Descend
                    }
                })
                .collect();
            let reads = metered_run(&cluster, &proto, k, Some(access.clone()));
            if best.as_ref().is_none_or(|(r, _)| reads < *r) {
                best = Some((reads, access));
            }
        }
        let (best_kv_reads, best_access) = best.expect("eight assignments measured");
        out.push(GridCell {
            shape,
            k,
            auto_plan: plan_name(&auto_access),
            auto_kv_reads,
            best_plan: plan_name(&best_access),
            best_kv_reads,
        });
    }
}

/// The binary pin: identical data, binary ISL executor vs two-side spec.
fn run_binary_pin(config: &MultiwayBenchConfig) -> (u64, u64) {
    let k = config.ks.iter().copied().max().unwrap_or(10);
    let build = || {
        let c = Cluster::new(3, CostModel::test());
        let client = c.client();
        let mut rng = Lcg(config.seed);
        let mut sides = Vec::with_capacity(2);
        for (name, label) in [("l", "L"), ("r", "R")] {
            c.create_table(name, &["d"]).expect("bench table");
            for r in 0..config.uniform_rows {
                let jv = format!("j{:03}", r % config.join_values.max(1));
                client
                    .mutate_row(
                        name,
                        format!("{name}_{r:05}").as_bytes(),
                        vec![
                            Mutation::put("d", b"jk", jv.into_bytes()),
                            Mutation::put("d", b"score", rng.next_unit().to_be_bytes().to_vec()),
                        ],
                    )
                    .expect("bench row");
            }
            sides.push(JoinSide::new(name, label, ("d", b"jk"), ("d", b"score")));
        }
        let query = RankJoinQuery::new(sides[0].clone(), sides[1].clone(), k, ScoreFn::Sum);
        (c, query)
    };

    let (c1, q1) = build();
    let mut binary = RankJoinExecutor::new(&c1, q1.clone());
    binary.prepare_isl().expect("isl build");
    let before1 = c1.metrics().snapshot();
    binary
        .execute_with_k(Algorithm::Isl, k)
        .expect("binary run");
    let binary_kv_reads = c1.metrics().snapshot().delta_since(&before1).kv_reads;

    let (c2, q2) = build();
    let mut spec_exec = SpecExecutor::new(&c2, q2.to_spec());
    spec_exec.prepare().expect("spec prepare");
    let before2 = c2.metrics().snapshot();
    spec_exec.execute_with_k(k).expect("spec run");
    let spec_kv_reads = c2.metrics().snapshot().delta_since(&before2).kv_reads;

    (binary_kv_reads, spec_kv_reads)
}

/// Runs the `multiway` experiment.
pub fn run_multiway(config: &MultiwayBenchConfig) -> MultiwayReport {
    let mut grid = Vec::new();
    run_grid(
        "bottleneck",
        [config.outer_rows, config.interior_rows, config.outer_rows],
        config,
        &mut grid,
    );
    run_grid("uniform", [config.uniform_rows; 3], config, &mut grid);
    let (binary_kv_reads, spec_kv_reads) = run_binary_pin(config);
    MultiwayReport {
        config: config.clone(),
        grid,
        binary_kv_reads,
        spec_kv_reads,
    }
}

impl MultiwayReport {
    /// Renders the report as experiment tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut grid = Table::new(
            "3-way rank join: planner's access choice vs measured-cheapest (KV reads)",
            &[
                "shape",
                "k",
                "auto plan",
                "auto reads",
                "best plan",
                "best reads",
                "ratio",
            ],
        );
        for cell in &self.grid {
            grid.row(vec![
                cell.shape.to_owned(),
                cell.k.to_string(),
                cell.auto_plan.clone(),
                cell.auto_kv_reads.to_string(),
                cell.best_plan.clone(),
                cell.best_kv_reads.to_string(),
                format!("{:.2}x", cell.ratio()),
            ]);
        }
        let mut pin = Table::new(
            "Two-side spec vs binary ISL on identical data (KV reads)",
            &["path", "KV reads"],
        );
        pin.row(vec![
            "binary ISL".to_owned(),
            self.binary_kv_reads.to_string(),
        ]);
        pin.row(vec![
            "two-side spec".to_owned(),
            self.spec_kv_reads.to_string(),
        ]);
        vec![grid, pin]
    }

    /// Machine-readable JSON (the `BENCH_multiway.json` artifact).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .grid
            .iter()
            .map(|c| {
                format!(
                    "{{\"shape\": \"{}\", \"k\": {}, \"auto_plan\": \"{}\", \
                     \"auto_kv_reads\": {}, \"best_plan\": \"{}\", \"best_kv_reads\": {}, \
                     \"ratio\": {:.3}}}",
                    c.shape,
                    c.k,
                    c.auto_plan,
                    c.auto_kv_reads,
                    c.best_plan,
                    c.best_kv_reads,
                    c.ratio()
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"multiway\",\n  \"grid\": [\n    {}\n  ],\n  \
             \"auto_worst_ratio\": {:.3},\n  \"binary_identical\": {},\n  \
             \"binary_kv_reads\": {},\n  \"spec_kv_reads\": {}\n}}\n",
            cells.join(",\n    "),
            self.auto_worst_ratio(),
            self.binary_identical(),
            self.binary_kv_reads,
            self.spec_kv_reads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiway_bench_planner_stays_near_cheapest_and_binary_pins() {
        let report = run_multiway(&MultiwayBenchConfig::default());
        assert_eq!(report.grid.len(), 6, "two shapes x three ks");
        for cell in &report.grid {
            assert!(cell.auto_kv_reads > 0 && cell.best_kv_reads > 0);
            assert!(
                cell.auto_kv_reads >= cell.best_kv_reads,
                "cheapest can't lose to auto: {cell:?}"
            );
        }
        // The acceptance bound: the planner's pick is never worse than
        // 1.5x the measured-cheapest assignment anywhere in the grid.
        assert!(
            report.auto_worst_ratio() <= 1.5,
            "auto plan {:.2}x worse than measured-cheapest: {:?}",
            report.auto_worst_ratio(),
            report.grid
        );
        assert!(
            report.binary_identical(),
            "two-side spec must charge the binary reads: {} vs {}",
            report.spec_kv_reads,
            report.binary_kv_reads
        );
        let json = report.to_json();
        for key in [
            "\"experiment\"",
            "\"grid\"",
            "\"auto_worst_ratio\"",
            "\"binary_identical\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(report.tables().len(), 2);
    }
}
