//! Reusable experiment fixture: cluster + data + indices + queries.

use rj_core::bfhm::BfhmConfig;
use rj_core::drjn::DrjnConfig;
use rj_core::executor::{Algorithm, RankJoinExecutor};
use rj_core::indexutil::BuildStats;
use rj_core::isl::IslConfig;
use rj_core::query::{JoinSide, RankJoinQuery};
use rj_core::score::ScoreFn;
use rj_core::stats::QueryOutcome;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_tpch::{loader, TpchConfig};

/// The paper's two evaluation queries (§7.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuerySpec {
    /// `Part ⋈ Lineitem ON PartKey ORDER BY RetailPrice * ExtendedPrice`.
    Q1,
    /// `Orders ⋈ Lineitem ON OrderKey ORDER BY TotalPrice + ExtendedPrice`.
    Q2,
}

impl QuerySpec {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QuerySpec::Q1 => "Q1",
            QuerySpec::Q2 => "Q2",
        }
    }

    /// Builds the query descriptor with the given `k`.
    pub fn query(&self, k: usize) -> RankJoinQuery {
        match self {
            QuerySpec::Q1 => RankJoinQuery::new(
                JoinSide::new(
                    loader::PART_TABLE,
                    "P",
                    (loader::FAMILY, loader::cols::JK),
                    (loader::FAMILY, loader::cols::SCORE),
                ),
                JoinSide::new(
                    loader::LINEITEM_TABLE,
                    "L",
                    (loader::FAMILY, loader::cols::JK_PART),
                    (loader::FAMILY, loader::cols::SCORE),
                ),
                k,
                ScoreFn::Product,
            ),
            QuerySpec::Q2 => RankJoinQuery::new(
                JoinSide::new(
                    loader::ORDERS_TABLE,
                    "O",
                    (loader::FAMILY, loader::cols::JK),
                    (loader::FAMILY, loader::cols::SCORE),
                ),
                JoinSide::new(
                    loader::LINEITEM_TABLE,
                    "L2",
                    (loader::FAMILY, loader::cols::JK_ORDER),
                    (loader::FAMILY, loader::cols::SCORE),
                ),
                k,
                ScoreFn::Sum,
            ),
        }
    }
}

/// Fixture parameters.
#[derive(Clone, Debug)]
pub struct FixtureConfig {
    /// Cost-model profile (nodes come from it).
    pub cost: CostModel,
    /// TPC-H scale factor (laptop-scaled).
    pub scale_factor: f64,
    /// BFHM bucket count.
    pub bfhm_buckets: u32,
    /// DRJN score-bucket count.
    pub drjn_buckets: u32,
    /// DRJN join partitions.
    pub drjn_partitions: u32,
    /// ISL batch (row-cache) size.
    pub isl_batch: usize,
}

impl FixtureConfig {
    /// The Fig. 7 setup: 1+8 EC2 nodes, small scale factor, 100 buckets.
    pub fn ec2(scale_factor: f64) -> Self {
        FixtureConfig {
            cost: CostModel::ec2(8),
            scale_factor,
            bfhm_buckets: 100,
            drjn_buckets: 100,
            drjn_partitions: 256,
            isl_batch: 64,
        }
    }

    /// The Fig. 8 setup: 5-node lab cluster, larger scale factor.
    pub fn lab(scale_factor: f64) -> Self {
        FixtureConfig {
            cost: CostModel::lab(),
            scale_factor,
            bfhm_buckets: 100,
            drjn_buckets: 100,
            drjn_partitions: 256,
            isl_batch: 128,
        }
    }
}

/// Per-index build report for one query pair.
#[derive(Clone, Debug, Default)]
pub struct IndexBuildReport {
    /// IJLMR build stats.
    pub ijlmr: BuildStats,
    /// ISL build stats.
    pub isl: BuildStats,
    /// BFHM build stats.
    pub bfhm: BuildStats,
    /// DRJN build stats.
    pub drjn: BuildStats,
}

/// A loaded cluster with executors for Q1 and Q2.
pub struct Fixture {
    /// The cluster under test.
    pub cluster: Cluster,
    /// Fixture parameters.
    pub config: FixtureConfig,
    /// Loaded row counts.
    pub load: rj_tpch::LoadStats,
    q1: Option<RankJoinExecutor>,
    q2: Option<RankJoinExecutor>,
    /// Build reports per query (filled by [`Fixture::prepare`]).
    pub builds: Vec<(QuerySpec, IndexBuildReport)>,
}

impl Fixture {
    /// Creates the cluster and loads TPC-H data (no indices yet).
    pub fn load(config: FixtureConfig) -> Self {
        let cluster = Cluster::with_profile(config.cost.clone());
        let load = loader::load_all(&cluster, &TpchConfig::new(config.scale_factor))
            .expect("fixture load");
        Fixture {
            cluster,
            config,
            load,
            q1: None,
            q2: None,
            builds: Vec::new(),
        }
    }

    /// Builds all four indices for one query pair.
    pub fn prepare(&mut self, spec: QuerySpec) -> IndexBuildReport {
        let query = spec.query(10);
        let mut executor = RankJoinExecutor::new(&self.cluster, query);
        executor.isl_config = IslConfig::uniform(self.config.isl_batch);
        let report = IndexBuildReport {
            ijlmr: executor.prepare_ijlmr().expect("ijlmr build"),
            isl: executor.prepare_isl().expect("isl build"),
            bfhm: executor
                .prepare_bfhm(BfhmConfig::with_buckets(self.config.bfhm_buckets))
                .expect("bfhm build"),
            drjn: executor
                .prepare_drjn(DrjnConfig {
                    num_buckets: self.config.drjn_buckets,
                    num_partitions: self.config.drjn_partitions,
                })
                .expect("drjn build"),
        };
        match spec {
            QuerySpec::Q1 => self.q1 = Some(executor),
            QuerySpec::Q2 => self.q2 = Some(executor),
        }
        self.builds.push((spec, report.clone()));
        report
    }

    /// The executor for a query (must be [`Fixture::prepare`]d).
    pub fn executor(&self, spec: QuerySpec) -> &RankJoinExecutor {
        match spec {
            QuerySpec::Q1 => self.q1.as_ref().expect("prepare(Q1) first"),
            QuerySpec::Q2 => self.q2.as_ref().expect("prepare(Q2) first"),
        }
    }

    /// Mutable executor access (planner experiments flip the objective).
    pub fn executor_mut(&mut self, spec: QuerySpec) -> &mut RankJoinExecutor {
        match spec {
            QuerySpec::Q1 => self.q1.as_mut().expect("prepare(Q1) first"),
            QuerySpec::Q2 => self.q2.as_mut().expect("prepare(Q2) first"),
        }
    }

    /// Runs one algorithm at one `k`.
    pub fn run(&self, spec: QuerySpec, algorithm: Algorithm, k: usize) -> QueryOutcome {
        self.executor(spec)
            .execute_with_k(algorithm, k)
            .unwrap_or_else(|e| panic!("{} {:?} k={k}: {e}", spec.name(), algorithm))
    }

    /// Base-table disk size in bytes (Part + Orders + Lineitem).
    pub fn base_bytes(&self) -> u64 {
        [
            loader::PART_TABLE,
            loader::ORDERS_TABLE,
            loader::LINEITEM_TABLE,
        ]
        .iter()
        .map(|t| self.cluster.table(t).expect("base table").disk_size())
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rj_core::oracle;

    #[test]
    fn fixture_end_to_end_small() {
        let mut config = FixtureConfig::ec2(0.0004);
        config.cost = CostModel::test();
        let mut fx = Fixture::load(config);
        assert!(fx.load.lineitems > 0);
        fx.prepare(QuerySpec::Q1);
        let want = oracle::topk(&fx.cluster, &QuerySpec::Q1.query(5)).unwrap();
        for algo in Algorithm::ALL {
            let got = fx.run(QuerySpec::Q1, algo, 5);
            assert_eq!(got.results, want, "{}", algo.name());
        }
    }

    #[test]
    fn q1_q2_have_distinct_score_functions() {
        assert_eq!(QuerySpec::Q1.query(3).score_fn, ScoreFn::Product);
        assert_eq!(QuerySpec::Q2.query(3).score_fn, ScoreFn::Sum);
        assert_eq!(QuerySpec::Q1.name(), "Q1");
    }
}
