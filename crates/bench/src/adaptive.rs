//! The adaptive-execution experiment: does mid-query abort-and-switch
//! (`rj_core::adaptive`) pay when the planner's histograms lie, and stay
//! out of the way when they don't?
//!
//! Two synthetic workloads at the same size, both top-k sum-scored joins:
//!
//! * **friendly** — scores descend over `[0,1]` and the sides share join
//!   values throughout, so the top results join near the top of both
//!   score lists and honestly-priced ISL terminates after a few batches.
//!   The statistics are truthful; the adaptive lane must never switch.
//! * **planted-lie** — the real scores live in `[0, 0.5]` and join
//!   matches exist only among the bottom-quarter tuples, so ISL must
//!   exhaust both lists while BFHM's bucket probes stay flat. The
//!   executor's statistics handle is then fed a *skewed refresh set*: a
//!   batch of insert deltas claiming high-scoring (≈0.97), join-heavy
//!   tuples whose writes never landed on the base tables (a delta stream
//!   drifted from the data — under the staleness bound, so planning
//!   trusts it). The lied histogram prices ISL as a shallow cheap descent
//!   and `Auto` picks it; the first batch of execution observes scores
//!   ≈0.5 where ≈0.97 was predicted, trips the divergence bound, corrects
//!   the statistics mid-query, and switches.
//!
//! Each workload runs three lanes: **adaptive** (default
//! `replan_divergence`), **never-switch** (`replan_divergence = ∞` — the
//! one-shot planner of PR 3/4), and **oracle** lanes that run each
//! prepared algorithm alone (the hindsight-best turnaround). The JSON
//! artifact (`BENCH_adaptive.json`) records per-cell turnaround, reads,
//! switch counts, wasted prefix reads, and the headline `lie_speedup`
//! (never-switch over adaptive turnaround on the lie cell — the measured
//! value of switching). Every lane's answer is oracle-verified.

use rj_core::executor::{Algorithm, RankJoinExecutor};
use rj_core::oracle;
use rj_core::planner::entry_bytes_of;
use rj_core::query::{JoinSide, RankJoinQuery};
use rj_core::score::ScoreFn;
use rj_core::statsmaint::{join_fingerprint, DeltaOp, StatsDelta, StatsMaintainer};
use rj_core::{bfhm, isl};
use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;

use crate::report::{json_escape, Table};

/// Result size every lane queries for.
pub const K: usize = 10;
/// ISL batch size (both sides).
pub const ISL_BATCH: usize = 32;
/// BFHM bucket count.
const BFHM_BUCKETS: u32 = 10;

/// The experiment's BFHM configuration: explicit, generous filter bits.
/// Score buckets here mix matching and side-unique join values, and at
/// auto-sized (5% FPP) filters the Bloom collisions between the unique
/// populations drag in hundreds of fruitless reverse rows — the
/// experiment is about planning, not about starving the filters.
pub fn bfhm_config() -> bfhm::BfhmConfig {
    bfhm::BfhmConfig {
        num_buckets: BFHM_BUCKETS,
        filter_bits: Some(1 << 16),
        ..Default::default()
    }
}
/// Distinct join values that actually match in the planted-lie workload.
/// Few values keep BFHM's reverse-row fan-out (≈ values × hash positions
/// × bottom buckets) small, which is exactly the regime where BFHM's
/// frugal point gets beat a full ISL descent.
const MATCH_VALUES: usize = 2;

/// One `(workload, lane)` measurement.
#[derive(Clone, Debug)]
pub struct AdaptiveCell {
    /// Workload name ("friendly" / "planted-lie").
    pub workload: &'static str,
    /// Lane name ("adaptive" / "never-switch" / "oracle-isl" /
    /// "oracle-bfhm").
    pub lane: &'static str,
    /// What actually executed (e.g. "ISL", "BFHM", "ISL→BFHM").
    pub algorithm: String,
    /// Measured simulated turnaround, seconds.
    pub turnaround: f64,
    /// Measured KV read units (wasted prefix included for switched runs).
    pub kv_reads: u64,
    /// Whether a mid-query switch happened.
    pub switched: bool,
    /// KV reads the aborted ISL prefix burned before the switch.
    pub wasted_reads: u64,
    /// Observed-vs-predicted divergence that triggered the switch (0 when
    /// none did).
    pub divergence: f64,
}

/// The full experiment report.
#[derive(Clone, Debug)]
pub struct AdaptiveReport {
    /// Rows loaded per side, per workload.
    pub rows_per_side: usize,
    /// Every `(workload, lane)` cell.
    pub cells: Vec<AdaptiveCell>,
    /// Switches observed on the truthful workload (must be 0).
    pub no_lie_switches: u64,
    /// Switches observed on the planted-lie workload (the fix fires
    /// exactly once per query).
    pub lie_switches: u64,
    /// Never-switch turnaround over adaptive turnaround on the lie cell —
    /// the measured payoff of abort-and-switch (> 1 means it paid).
    pub lie_speedup: f64,
}

impl AdaptiveReport {
    /// Renders the per-cell table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Adaptive execution: abort-and-switch vs one-shot planning \
                 ({} rows/side, k={K}, lie speedup {:.2}x)",
                self.rows_per_side, self.lie_speedup
            ),
            &[
                "workload", "lane", "ran", "sim time", "kv reads", "switched", "wasted",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.workload.to_owned(),
                c.lane.to_owned(),
                c.algorithm.clone(),
                format!("{:.3}s", c.turnaround),
                c.kv_reads.to_string(),
                if c.switched { "✓" } else { "—" }.to_owned(),
                c.wasted_reads.to_string(),
            ]);
        }
        t
    }

    /// Machine-readable JSON (the `BENCH_adaptive.json` artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"adaptive\",\n");
        out.push_str(&format!(
            "  \"rows_per_side\": {}, \"k\": {K}, \"no_lie_switches\": {}, \
             \"lie_switches\": {}, \"lie_speedup\": {:.4},\n  \"cells\": [\n",
            self.rows_per_side, self.no_lie_switches, self.lie_switches, self.lie_speedup
        ));
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"workload\": \"{}\", \"lane\": \"{}\", \"algorithm\": \"{}\", \
                     \"turnaround\": {:.6}, \"kv_reads\": {}, \"switched\": {}, \
                     \"wasted_reads\": {}, \"divergence\": {:.4}}}",
                    json_escape(c.workload),
                    json_escape(c.lane),
                    json_escape(&c.algorithm),
                    c.turnaround,
                    c.kv_reads,
                    c.switched,
                    c.wasted_reads,
                    c.divergence
                )
            })
            .collect();
        out.push_str(&cells.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Loads one workload: `rows` tuples per side on an EC2-profile cluster,
/// returning the top-[`K`] sum query over the pair. Public so the
/// workspace acceptance tests (`tests/adaptive.rs`) pin regressions on
/// exactly the workload CI measures, instead of a drifting copy.
pub fn load_workload(rows: usize, deep_joins: bool) -> (Cluster, RankJoinQuery) {
    let cluster = Cluster::new(4, CostModel::ec2(8));
    cluster.create_table("adl", &["d"]).expect("left table");
    cluster.create_table("adr", &["d"]).expect("right table");
    let client = cluster.client();
    let n = rows.max(8);
    for i in 0..n {
        let rank = i as f64 / (n + 1) as f64;
        // Friendly: scores span (0,1], matches everywhere. Deep joins:
        // scores span (0,0.5], the top ¾ of each side joins nothing, and
        // matches exist only among the bottom-quarter tuples — the HRJN
        // threshold cannot cross until both lists are exhausted.
        let score = if deep_joins {
            0.5 * (1.0 - rank)
        } else {
            1.0 - rank
        };
        for (table, prefix) in [("adl", "L"), ("adr", "R")] {
            let join = if !deep_joins {
                format!("v{}", i % 24)
            } else if i < n * 3 / 4 {
                format!("{prefix}{i}") // side-unique: never matches
            } else {
                format!("m{}", i % MATCH_VALUES)
            };
            client
                .mutate_row(
                    table,
                    format!("{prefix}{i:06}").as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", join.into_bytes()),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .expect("load row");
        }
    }
    let query = RankJoinQuery::new(
        JoinSide::new("adl", "AL", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("adr", "AR", ("d", b"jk"), ("d", b"score")),
        K,
        ScoreFn::Sum,
    );
    (cluster, query)
}

/// A lane executor on a forked ledger: adopts the builder's indices, owns
/// its own statistics handle (the lanes must not see each other's
/// corrections), and primes one plan so lies land on maintained
/// statistics.
fn lane_executor(
    cluster: &Cluster,
    query: &RankJoinQuery,
    replan_divergence: f64,
) -> RankJoinExecutor {
    let fork = cluster.fork_metrics();
    let mut ex = RankJoinExecutor::new(&fork, query.clone());
    ex.isl_config = isl::IslConfig::uniform(ISL_BATCH);
    ex.replan_divergence = replan_divergence;
    ex.attach_isl(&isl::index_table_name(query)).expect("isl");
    ex.attach_bfhm(&bfhm::index_table_name(query), bfhm_config())
        .expect("bfhm");
    let _ = ex.plan().expect("prime plan");
    ex
}

/// Plants the histogram lie: `fakes` insert deltas per side claiming
/// high-scoring tuples on a shared join value, none of which exist on the
/// base tables — a refresh-set delta stream that drifted from the data.
/// Kept under the staleness bound so planning *trusts* the lie.
pub fn plant_lie(ex: &RankJoinExecutor, query: &RankJoinQuery, fakes: usize) {
    let handle = ex.stats_handle();
    for f in 0..fakes {
        let join = format!("hot{}", f % 4).into_bytes();
        for side in [&query.left, &query.right] {
            handle.apply_delta(&StatsDelta {
                table: side.table.clone(),
                join_col: side.join_col.clone(),
                score_col: side.score_col.clone(),
                op: DeltaOp::Insert,
                join_fingerprint: join_fingerprint(&join),
                score: 0.97,
                entry_bytes: entry_bytes_of(&join, b"fake_row"),
            });
        }
    }
}

/// Runs one lane, oracle-verifies the answer, and records the cell.
fn run_lane(
    ex: &RankJoinExecutor,
    cluster: &Cluster,
    query: &RankJoinQuery,
    workload: &'static str,
    lane: &'static str,
    algo: Algorithm,
) -> AdaptiveCell {
    let outcome = ex.execute_with_k(algo, K).expect("lane execution");
    let want = oracle::topk(cluster, query).expect("oracle");
    assert_eq!(
        outcome.results, want,
        "{workload}/{lane} returned a wrong answer"
    );
    AdaptiveCell {
        workload,
        lane,
        algorithm: outcome.algorithm.to_owned(),
        turnaround: outcome.metrics.sim_seconds,
        kv_reads: outcome.metrics.kv_reads,
        switched: outcome.extra("adaptive_switched") == Some(1.0),
        wasted_reads: outcome.extra("adaptive_wasted_kv_reads").unwrap_or(0.0) as u64,
        divergence: outcome.extra("adaptive_divergence").unwrap_or(0.0),
    }
}

/// Runs the full grid: two workloads × (adaptive, never-switch, per-
/// algorithm oracle) lanes.
pub fn run_adaptive(rows_per_side: usize) -> AdaptiveReport {
    let mut cells = Vec::new();
    for (workload, deep_joins) in [("friendly", false), ("planted-lie", true)] {
        let (cluster, query) = load_workload(rows_per_side, deep_joins);
        // Build the indices once per workload through a throwaway
        // executor; lanes attach without rebuilding.
        let mut builder = RankJoinExecutor::new(&cluster, query.clone());
        builder.prepare_isl().expect("isl build");
        builder.prepare_bfhm(bfhm_config()).expect("bfhm build");
        // ~6% of a side mutated: big enough to bend the histograms, under
        // the 10% staleness bound so the lie is *trusted*.
        let fakes = (rows_per_side / 16).max(8);

        let adaptive = lane_executor(&cluster, &query, rj_core::DEFAULT_REPLAN_DIVERGENCE);
        let never = lane_executor(&cluster, &query, f64::INFINITY);
        if deep_joins {
            plant_lie(&adaptive, &query, fakes);
            plant_lie(&never, &query, fakes);
        }
        cells.push(run_lane(
            &adaptive,
            &cluster,
            &query,
            workload,
            "adaptive",
            Algorithm::Auto,
        ));
        cells.push(run_lane(
            &never,
            &cluster,
            &query,
            workload,
            "never-switch",
            Algorithm::Auto,
        ));
        // Hindsight lanes: each prepared algorithm alone, honestly.
        let oracle_ex = lane_executor(&cluster, &query, f64::INFINITY);
        cells.push(run_lane(
            &oracle_ex,
            &cluster,
            &query,
            workload,
            "oracle-isl",
            Algorithm::Isl,
        ));
        cells.push(run_lane(
            &oracle_ex,
            &cluster,
            &query,
            workload,
            "oracle-bfhm",
            Algorithm::Bfhm,
        ));
    }
    let switches = |w: &str| {
        cells
            .iter()
            .filter(|c| c.workload == w && c.switched)
            .count() as u64
    };
    let turnaround = |w: &str, l: &str| {
        cells
            .iter()
            .find(|c| c.workload == w && c.lane == l)
            .map_or(f64::NAN, |c| c.turnaround)
    };
    let adaptive_lie = turnaround("planted-lie", "adaptive");
    let lie_speedup = if adaptive_lie > 0.0 {
        turnaround("planted-lie", "never-switch") / adaptive_lie
    } else {
        f64::NAN
    };
    let no_lie_switches = switches("friendly");
    let lie_switches = switches("planted-lie");
    AdaptiveReport {
        rows_per_side,
        cells,
        no_lie_switches,
        lie_switches,
        lie_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's bench-side acceptance: on the planted-lie workload the
    /// adaptive lane switches exactly once and beats never-switch ISL on
    /// measured turnaround; on the truthful workload nothing switches.
    #[test]
    fn planted_lie_switches_once_and_pays() {
        let report = run_adaptive(1500);
        assert_eq!(report.cells.len(), 8, "2 workloads × 4 lanes");
        assert_eq!(report.no_lie_switches, 0, "{:#?}", report.cells);
        assert_eq!(report.lie_switches, 1, "{:#?}", report.cells);
        let lie_adaptive = report
            .cells
            .iter()
            .find(|c| c.workload == "planted-lie" && c.lane == "adaptive")
            .unwrap();
        assert!(lie_adaptive.switched);
        assert_eq!(lie_adaptive.algorithm, "ISL→BFHM");
        assert!(lie_adaptive.divergence > rj_core::DEFAULT_REPLAN_DIVERGENCE);
        assert!(
            report.lie_speedup > 1.0,
            "switching must beat riding the lie out: {:#?}",
            report.cells
        );
        // The never-switch lane proves the counterfactual: same lie, no
        // switch, full ISL descent.
        let lie_never = report
            .cells
            .iter()
            .find(|c| c.workload == "planted-lie" && c.lane == "never-switch")
            .unwrap();
        assert_eq!(lie_never.algorithm, "ISL");
        assert!(!lie_never.switched);
        let json = report.to_json();
        for key in [
            "\"experiment\": \"adaptive\"",
            "\"cells\"",
            "\"lie_speedup\"",
            "\"no_lie_switches\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
