//! The `cursor` experiment: what pull-based execution buys.
//!
//! Two lanes over the same data and the same ISL-prepared executor
//! prototype, all metered on private fork ledgers:
//!
//! * **Paging** — serving a depth-`k` answer in `page`-sized pages three
//!   ways: one shot (`execute_with_k`), a paused-and-resumed
//!   [`rj_core::cursor::RankedCursor`] pulling one page at a time (the
//!   serving layer's `next_page` path), and the naive
//!   re-run-per-page strategy that restarts the query at every page
//!   boundary (`k' = page, 2·page, …, k`). The cursor must charge
//!   exactly the one-shot reads; the re-run strategy must be strictly
//!   worse.
//! * **Warm-start sweep** — a donor query runs to completion at depth
//!   `d`, pauses, and its [`rj_core::cursor::CursorState`] is
//!   re-targeted to finish the full depth-`k` answer
//!   (`resume_cursor_retargeted`). The continuation's reads are compared
//!   against the cold depth-`k` cost for each donor depth: deeper donors
//!   must leave less to pay.

use rj_core::cancel::StopPolicy;
use rj_core::executor::{Algorithm, RankJoinExecutor};
use rj_core::isl::IslConfig;
use rj_core::query::{JoinSide, RankJoinQuery};
use rj_core::score::ScoreFn;
use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;

use crate::report::Table;

/// `cursor` experiment knobs.
#[derive(Clone, Debug)]
pub struct CursorBenchConfig {
    /// Rows per base-table side of the synthetic join.
    pub rows_per_side: usize,
    /// Full answer depth every lane ultimately serves.
    pub k: usize,
    /// Page size for the paging lane.
    pub page: usize,
    /// ISL index batch size.
    pub batch: usize,
    /// Donor depths for the warm-start sweep.
    pub warm_depths: Vec<usize>,
    /// LCG seed for the synthetic scores.
    pub seed: u64,
}

impl Default for CursorBenchConfig {
    fn default() -> Self {
        CursorBenchConfig {
            rows_per_side: 96,
            k: 50,
            page: 10,
            batch: 8,
            warm_depths: vec![10, 20, 30, 40],
            seed: 0xc01d_5eed_u64,
        }
    }
}

/// The paging lane: three strategies serving the same `k` results.
#[derive(Clone, Debug)]
pub struct PagingLane {
    /// KV reads of the one-shot depth-`k` run.
    pub oneshot_kv_reads: u64,
    /// KV reads of the cursor paging through with pause/resume between
    /// pages.
    pub paged_kv_reads: u64,
    /// Pages the cursor served.
    pub pages: u64,
    /// KV reads of re-running the query from scratch at every page
    /// boundary.
    pub rerun_kv_reads: u64,
}

impl PagingLane {
    /// `rerun / oneshot` — the factor the naive strategy overpays.
    pub fn rerun_penalty(&self) -> f64 {
        self.rerun_kv_reads as f64 / self.oneshot_kv_reads.max(1) as f64
    }
}

/// One donor depth of the warm-start sweep.
#[derive(Clone, Copy, Debug)]
pub struct WarmPoint {
    /// Depth the donor cursor had consumed when it paused.
    pub depth: usize,
    /// KV reads the re-targeted continuation paid to finish depth `k`.
    pub warm_kv_reads: u64,
}

/// `cursor` experiment results.
#[derive(Clone, Debug)]
pub struct CursorReport {
    /// The configuration the lanes ran under.
    pub config: CursorBenchConfig,
    /// The paging lane.
    pub paging: PagingLane,
    /// Cold depth-`k` reference cost for the warm sweep.
    pub cold_kv_reads: u64,
    /// Warm-start continuations, one per donor depth.
    pub warm_sweep: Vec<WarmPoint>,
}

/// Deterministic 64-bit LCG (same constants as the store's tests).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (((self.0 >> 33) + 1) as f64) / (1u64 << 31) as f64
    }
}

/// Synthetic base data: `rows` rows per side, eight join values, LCG
/// scores.
fn build_cluster(config: &CursorBenchConfig) -> (Cluster, RankJoinQuery) {
    let c = Cluster::new(3, CostModel::test());
    c.create_table("l", &["d"]).expect("bench table");
    c.create_table("r", &["d"]).expect("bench table");
    let client = c.client();
    let mut rng = Lcg(config.seed);
    for (table, n) in [("l", config.rows_per_side), ("r", config.rows_per_side + 4)] {
        for i in 0..n {
            let key = format!("{table}_{i:05}");
            let jv = vec![b'a' + (i % 8) as u8];
            let score = rng.next_unit();
            client
                .mutate_row(
                    table,
                    key.as_bytes(),
                    vec![
                        Mutation::put("d", b"jk", jv),
                        Mutation::put("d", b"score", score.to_be_bytes().to_vec()),
                    ],
                )
                .expect("bench row");
        }
    }
    let q = RankJoinQuery::new(
        JoinSide::new("l", "L", ("d", b"jk"), ("d", b"score")),
        JoinSide::new("r", "R", ("d", b"jk"), ("d", b"score")),
        3,
        ScoreFn::Sum,
    );
    (c, q)
}

/// ISL-prepared prototype with primed statistics, so every fork pays
/// symmetric query-path costs.
fn prototype(cluster: &Cluster, query: &RankJoinQuery, batch: usize) -> RankJoinExecutor {
    let mut proto = RankJoinExecutor::new(cluster, query.clone());
    proto.isl_config = IslConfig::uniform(batch);
    proto.prepare_isl().expect("isl build");
    let _ = proto.plan().expect("plan");
    proto
}

/// Runs `f` against a fresh executor fork and returns the fork ledger's
/// KV-read delta.
fn metered<T>(
    cluster: &Cluster,
    proto: &RankJoinExecutor,
    f: impl FnOnce(&RankJoinExecutor) -> T,
) -> (T, u64) {
    let fork = cluster.fork_metrics();
    let ex = proto.fork_onto(&fork).expect("fork");
    let before = fork.metrics().snapshot();
    let out = f(&ex);
    let reads = fork.metrics().snapshot().delta_since(&before).kv_reads;
    (out, reads)
}

/// Page boundaries `page, 2·page, …, k` (last one clamped to `k`).
fn boundaries(k: usize, page: usize) -> Vec<usize> {
    let page = page.max(1);
    let mut out = Vec::new();
    let mut at = page;
    loop {
        out.push(at.min(k));
        if at >= k {
            return out;
        }
        at += page;
    }
}

/// The paging lane: one-shot vs paused-cursor pages vs re-run-per-page.
fn run_paging(
    cluster: &Cluster,
    proto: &RankJoinExecutor,
    config: &CursorBenchConfig,
) -> PagingLane {
    let policy = StopPolicy::never();
    let k = config.k;
    let (_, oneshot_kv_reads) = metered(cluster, proto, |ex| {
        ex.execute_with_k(Algorithm::Isl, k).expect("one-shot")
    });

    // The serving layer's `next_page` path: every page boundary is a full
    // pause into a serializable `CursorState` and a resume from it.
    let mut pages = 0u64;
    let (_, paged_kv_reads) = metered(cluster, proto, |ex| {
        let mut cursor = ex.open_cursor(Algorithm::Isl, k).expect("open");
        let mut emitted = 0usize;
        loop {
            let batch = cursor
                .next_batch(config.page.min(k - emitted).max(1), &policy)
                .expect("page");
            emitted += batch.results.len();
            pages += 1;
            if batch.done || emitted >= k {
                break;
            }
            let state = cursor.pause();
            cursor = ex.resume_cursor(state).expect("resume");
        }
    });

    let (_, rerun_kv_reads) = metered(cluster, proto, |ex| {
        for depth in boundaries(k, config.page) {
            ex.execute_with_k(Algorithm::Isl, depth).expect("re-run");
        }
    });

    PagingLane {
        oneshot_kv_reads,
        paged_kv_reads,
        pages,
        rerun_kv_reads,
    }
}

/// The warm-start sweep: donor at depth `d`, re-targeted to finish `k`.
fn run_warm_sweep(
    cluster: &Cluster,
    proto: &RankJoinExecutor,
    config: &CursorBenchConfig,
) -> Vec<WarmPoint> {
    let policy = StopPolicy::never();
    config
        .warm_depths
        .iter()
        .map(|&depth| {
            let fork = cluster.fork_metrics();
            let ex = proto.fork_onto(&fork).expect("fork");
            let mut donor = ex.open_cursor(Algorithm::Isl, depth).expect("open donor");
            let mut got = 0usize;
            loop {
                let batch = donor.next_batch(depth - got, &policy).expect("donor pull");
                got += batch.results.len();
                if batch.done || got >= depth {
                    break;
                }
            }
            let state = donor.pause();
            let before = fork.metrics().snapshot();
            let mut warm = ex
                .resume_cursor_retargeted(state, config.k)
                .expect("retarget");
            let mut emitted = 0usize;
            loop {
                let batch = warm
                    .next_batch(config.k - emitted, &policy)
                    .expect("warm pull");
                emitted += batch.results.len();
                if batch.done || emitted >= config.k {
                    break;
                }
            }
            let warm_kv_reads = fork.metrics().snapshot().delta_since(&before).kv_reads;
            WarmPoint {
                depth,
                warm_kv_reads,
            }
        })
        .collect()
}

/// Runs the `cursor` experiment.
pub fn run_cursor(config: &CursorBenchConfig) -> CursorReport {
    let (cluster, query) = build_cluster(config);
    let proto = prototype(&cluster, &query, config.batch);
    let paging = run_paging(&cluster, &proto, config);
    let warm_sweep = run_warm_sweep(&cluster, &proto, config);
    CursorReport {
        config: config.clone(),
        cold_kv_reads: paging.oneshot_kv_reads,
        paging,
        warm_sweep,
    }
}

impl CursorReport {
    /// Renders the report as experiment tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut paging = Table::new(
            &format!(
                "Serving k={} in pages of {}: cursor vs re-run-per-page (KV reads)",
                self.config.k, self.config.page
            ),
            &["strategy", "KV reads", "vs one-shot"],
        );
        paging.row(vec![
            "one-shot".to_owned(),
            self.paging.oneshot_kv_reads.to_string(),
            "1.00x".to_owned(),
        ]);
        paging.row(vec![
            format!("cursor ({} pages)", self.paging.pages),
            self.paging.paged_kv_reads.to_string(),
            format!(
                "{:.2}x",
                self.paging.paged_kv_reads as f64 / self.paging.oneshot_kv_reads.max(1) as f64
            ),
        ]);
        paging.row(vec![
            "re-run per page".to_owned(),
            self.paging.rerun_kv_reads.to_string(),
            format!("{:.2}x", self.paging.rerun_penalty()),
        ]);
        let mut warm = Table::new(
            &format!(
                "Warm-starting k={} from a donor paused at depth d (cold = {} KV reads)",
                self.config.k, self.cold_kv_reads
            ),
            &["donor depth", "continuation KV reads", "saved"],
        );
        for point in &self.warm_sweep {
            warm.row(vec![
                point.depth.to_string(),
                point.warm_kv_reads.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * (1.0 - point.warm_kv_reads as f64 / self.cold_kv_reads.max(1) as f64)
                ),
            ]);
        }
        vec![paging, warm]
    }

    /// Machine-readable JSON (the `BENCH_cursor.json` artifact).
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self
            .warm_sweep
            .iter()
            .map(|p| {
                format!(
                    "{{\"depth\": {}, \"warm_kv_reads\": {}}}",
                    p.depth, p.warm_kv_reads
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"cursor\",\n  \"k\": {},\n  \"page\": {},\n  \
             \"paging\": {{\"oneshot_kv_reads\": {}, \"paged_kv_reads\": {}, \"pages\": {}, \
             \"rerun_kv_reads\": {}, \"rerun_penalty\": {:.3}}},\n  \
             \"cold_kv_reads\": {},\n  \"warm_sweep\": [{}]\n}}\n",
            self.config.k,
            self.config.page,
            self.paging.oneshot_kv_reads,
            self.paging.paged_kv_reads,
            self.paging.pages,
            self.paging.rerun_kv_reads,
            self.paging.rerun_penalty(),
            self.cold_kv_reads,
            sweep.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_bench_paging_is_free_and_reruns_are_not() {
        let report = run_cursor(&CursorBenchConfig::default());
        assert_eq!(report.paging.pages, 5, "k=50 in pages of 10");
        assert_eq!(
            report.paging.paged_kv_reads, report.paging.oneshot_kv_reads,
            "the cursor must charge exactly the one-shot reads"
        );
        assert!(
            report.paging.rerun_kv_reads > report.paging.oneshot_kv_reads,
            "re-running per page must be strictly worse: {} vs {}",
            report.paging.rerun_kv_reads,
            report.paging.oneshot_kv_reads
        );
        for point in &report.warm_sweep {
            assert!(
                point.warm_kv_reads < report.cold_kv_reads,
                "warm start from depth {} must beat cold: {} vs {}",
                point.depth,
                point.warm_kv_reads,
                report.cold_kv_reads
            );
        }
        for pair in report.warm_sweep.windows(2) {
            assert!(
                pair[1].warm_kv_reads <= pair[0].warm_kv_reads,
                "deeper donors must not leave more to pay: {:?}",
                report.warm_sweep
            );
        }
        let json = report.to_json();
        for key in ["\"experiment\"", "\"paging\"", "\"warm_sweep\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(report.tables().len(), 2);
    }

    #[test]
    fn boundaries_cover_k_exactly_once() {
        assert_eq!(boundaries(50, 10), vec![10, 20, 30, 40, 50]);
        assert_eq!(boundaries(7, 3), vec![3, 6, 7]);
        assert_eq!(boundaries(4, 9), vec![4]);
        assert_eq!(boundaries(5, 0), vec![1, 2, 3, 4, 5]);
    }
}
