//! The cluster: nodes, tables, the logical clock, and client factories.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::client::Client;
use crate::costmodel::CostModel;
use crate::error::{Result, StoreError};
use crate::metrics::Metrics;
use crate::table::Table;

pub(crate) struct Shared {
    pub(crate) num_nodes: usize,
    pub(crate) cost: CostModel,
    pub(crate) tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Logical timestamp source — deterministic, monotone, shared by base
    /// and index writes (§6's "original mutation timestamp for both").
    pub(crate) clock: AtomicU64,
}

/// A shared-nothing NoSQL cluster of `num_nodes` region servers.
///
/// Cheap to clone (an `Arc` handle). Data (tables, clock, cost model) is
/// shared between clones; the metric *ledger* belongs to the handle, so
/// [`Cluster::fork_metrics`] can give concurrent actors isolated accounting
/// over the same data.
#[derive(Clone)]
pub struct Cluster {
    pub(crate) shared: Arc<Shared>,
    metrics: Arc<Metrics>,
}

impl Cluster {
    /// Creates a cluster with `num_nodes` region servers and a cost model.
    pub fn new(num_nodes: usize, cost: CostModel) -> Self {
        assert!(num_nodes > 0, "cluster needs at least one node");
        Cluster {
            shared: Arc::new(Shared {
                num_nodes,
                cost,
                tables: RwLock::new(HashMap::new()),
                clock: AtomicU64::new(1),
            }),
            metrics: Metrics::new(),
        }
    }

    /// Creates a cluster whose node count follows the cost model profile.
    pub fn with_profile(cost: CostModel) -> Self {
        let nodes = cost.worker_nodes;
        Self::new(nodes, cost)
    }

    /// Number of region-server nodes.
    pub fn num_nodes(&self) -> usize {
        self.shared.num_nodes
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.cost
    }

    /// The metric ledger of this handle.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// A handle over the same data (tables, clock, cost model) but with a
    /// **fresh, isolated metric ledger**. Concurrent query runners each
    /// fork a handle so per-query meters measure only their own work; the
    /// run's aggregate is the sum of the forked ledgers' snapshots.
    pub fn fork_metrics(&self) -> Cluster {
        Cluster {
            shared: self.shared.clone(),
            metrics: Metrics::new(),
        }
    }

    /// Draws the next logical timestamp.
    pub fn next_ts(&self) -> u64 {
        self.shared.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Creates a table with the given column families and a single region.
    pub fn create_table(&self, name: &str, families: &[&str]) -> Result<Arc<Table>> {
        self.create_table_with_splits(name, families, &[])
    }

    /// Creates a table pre-split at the given keys (regions are assigned to
    /// nodes round-robin). Pre-splitting is how index builders obtain
    /// deterministic, balanced layouts.
    pub fn create_table_with_splits(
        &self,
        name: &str,
        families: &[&str],
        split_keys: &[Vec<u8>],
    ) -> Result<Arc<Table>> {
        if families.is_empty() {
            return Err(StoreError::InvalidArgument("table needs >= 1 family"));
        }
        let mut tables = self.shared.tables.write();
        if tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_owned()));
        }
        let table = Arc::new(Table::new(
            name,
            families,
            split_keys,
            self.shared.num_nodes,
        ));
        tables.insert(name.to_owned(), table.clone());
        Ok(table)
    }

    /// Drops a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.shared
            .tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::TableNotFound(name.to_owned()))
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.shared
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::TableNotFound(name.to_owned()))
    }

    /// Names of all tables (sorted, for deterministic iteration).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// A coordinator client: located *outside* the cluster (every region
    /// access is remote) and charging simulated time to the global ledger —
    /// this is "the querying node" of the paper's coordinator algorithms.
    pub fn client(&self) -> Client {
        Client::new(self.shared.clone(), self.metrics.clone(), None, true)
    }

    /// A client pinned to a node, e.g. a MapReduce task reading its local
    /// region. Does not charge global simulated time — the MR engine
    /// accounts critical-path job time itself.
    pub fn task_client(&self, node: usize) -> Client {
        assert!(node < self.shared.num_nodes, "no such node: {node}");
        Client::new(self.shared.clone(), self.metrics.clone(), Some(node), false)
    }

    /// A coordinator-located client that does **not** charge wall-clock
    /// time as it goes — used by parallel rounds, which account elapsed
    /// time themselves as `max` over lanes (see [`crate::parallel`]).
    pub(crate) fn round_worker_client(&self) -> Client {
        Client::new(self.shared.clone(), self.metrics.clone(), None, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_tables() {
        let c = Cluster::new(3, CostModel::test());
        c.create_table("t1", &["a"]).unwrap();
        c.create_table("t2", &["a", "b"]).unwrap();
        assert!(c.table("t1").is_ok());
        assert_eq!(c.table_names(), vec!["t1".to_string(), "t2".to_string()]);
        assert!(matches!(
            c.create_table("t1", &["a"]),
            Err(StoreError::TableExists(_))
        ));
        assert!(matches!(c.table("nope"), Err(StoreError::TableNotFound(_))));
    }

    #[test]
    fn drop_table_removes() {
        let c = Cluster::new(1, CostModel::test());
        c.create_table("t", &["a"]).unwrap();
        c.drop_table("t").unwrap();
        assert!(c.table("t").is_err());
        assert!(c.drop_table("t").is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        let c = Cluster::new(1, CostModel::test());
        assert!(matches!(
            c.create_table("t", &[]),
            Err(StoreError::InvalidArgument(_))
        ));
    }

    #[test]
    fn forked_handles_share_data_but_not_ledgers() {
        let c = Cluster::new(2, CostModel::test());
        c.create_table("t", &["cf"]).unwrap();
        let fork = c.fork_metrics();
        // Data written through one handle is visible through the other...
        c.client()
            .put(
                "t",
                b"r",
                crate::cell::Mutation::put("cf", b"q", b"v".to_vec()),
            )
            .unwrap();
        assert!(fork.client().get("t", b"r").unwrap().is_some());
        // ...but the fork's read was billed to the fork's ledger only.
        assert_eq!(fork.metrics().snapshot().kv_reads, 1);
        assert_eq!(c.metrics().snapshot().kv_reads, 0);
        assert_eq!(c.metrics().snapshot().kv_writes, 1);
        assert_eq!(fork.metrics().snapshot().kv_writes, 0);
    }

    #[test]
    fn clock_is_monotone() {
        let c = Cluster::new(1, CostModel::test());
        let a = c.next_ts();
        let b = c.next_ts();
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "no such node")]
    fn task_client_validates_node() {
        let c = Cluster::new(2, CostModel::test());
        let _ = c.task_client(5);
    }
}
