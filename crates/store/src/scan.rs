//! Scan specifications.
//!
//! Scans run in **ascending row-key order only** — the HBase behaviour the
//! paper calls out ("a kink of HBase is that it provides fast scans in
//! increasing rowkey order but has no support for scans in the other
//! direction", §4.2.2). The `caching` parameter is HBase's scanner row
//! cache: how many rows one RPC fetches. The paper's ISL algorithm tunes it
//! ("batched scans ... can result in significant gains in query processing
//! times, trading off bandwidth consumption and dollar-costs", §4.2.3).

use std::sync::Arc;

use crate::filter::ServerFilter;

/// Declarative description of a scan.
#[derive(Clone, Default)]
pub struct Scan {
    pub(crate) start: Option<Vec<u8>>,
    pub(crate) stop: Option<Vec<u8>>,
    pub(crate) families: Option<Vec<String>>,
    pub(crate) caching: Option<usize>,
    pub(crate) filter: Option<Arc<dyn ServerFilter>>,
    pub(crate) limit: Option<usize>,
}

impl Scan {
    /// A full-table scan with default caching.
    pub fn new() -> Self {
        Scan::default()
    }

    /// Start key (inclusive).
    pub fn start(mut self, key: impl Into<Vec<u8>>) -> Self {
        self.start = Some(key.into());
        self
    }

    /// Stop key (exclusive).
    pub fn stop(mut self, key: impl Into<Vec<u8>>) -> Self {
        self.stop = Some(key.into());
        self
    }

    /// Restricts the scan to the given column families.
    pub fn families(mut self, families: &[&str]) -> Self {
        self.families = Some(families.iter().map(|f| (*f).to_owned()).collect());
        self
    }

    /// Scanner row-cache size: rows fetched per RPC (default 100).
    pub fn caching(mut self, rows: usize) -> Self {
        self.caching = Some(rows);
        self
    }

    /// Attaches a server-side filter.
    pub fn filter(mut self, f: Arc<dyn ServerFilter>) -> Self {
        self.filter = Some(f);
        self
    }

    /// Caps the number of rows returned to the client.
    pub fn limit(mut self, rows: usize) -> Self {
        self.limit = Some(rows);
        self
    }

    pub(crate) fn effective_caching(&self) -> usize {
        self.caching.unwrap_or(100).max(1)
    }
}

impl std::fmt::Debug for Scan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scan")
            .field("start", &self.start)
            .field("stop", &self.stop)
            .field("families", &self.families)
            .field("caching", &self.caching)
            .field("filter", &self.filter.as_ref().map(|x| x.name()))
            .field("limit", &self.limit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let s = Scan::new()
            .start(b"a".to_vec())
            .stop(b"z".to_vec())
            .families(&["cf"])
            .caching(7)
            .limit(3);
        assert_eq!(s.start.as_deref(), Some(b"a".as_slice()));
        assert_eq!(s.stop.as_deref(), Some(b"z".as_slice()));
        assert_eq!(s.families.as_deref(), Some(&["cf".to_string()][..]));
        assert_eq!(s.effective_caching(), 7);
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn caching_defaults_and_clamps() {
        assert_eq!(Scan::new().effective_caching(), 100);
        assert_eq!(Scan::new().caching(0).effective_caching(), 1);
    }
}
