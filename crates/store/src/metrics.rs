//! Metric accounting: the ledgers behind the paper's three evaluation
//! metrics (§7.1) — turnaround time, network bandwidth, and dollar cost.
//!
//! Time is tracked on two axes since the parallel-execution work:
//!
//! * **wall-clock seconds** (`sim_seconds`) — simulated elapsed time as a
//!   coordinator would observe it. A parallel round over several region
//!   servers advances this by the *maximum* per-node time (the paper's §5
//!   parallel-round accounting).
//! * **node-seconds** (`node_seconds`) — total busy time summed over every
//!   node/worker that did the work. This is what the dollar-style cost of
//!   rented compute scales with, and it is charged as a *sum* regardless of
//!   parallelism.
//!
//! Serial operations advance both equally, so `wall == total` until a
//! parallel round runs; the invariant `wall <= total` holds always.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster-global metric ledger. All counters are monotonically increasing;
/// consumers measure queries by snapshot deltas via [`QueryMeter`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// KV pairs read at region servers (the dollar-cost unit: each KV < 1 KB
    /// counts as one DynamoDB read unit, paper §7.1 footnote).
    kv_reads: AtomicU64,
    /// KV pairs written.
    kv_writes: AtomicU64,
    /// Bytes that crossed a node boundary (client↔server or server↔server).
    network_bytes: AtomicU64,
    /// Client RPC invocations.
    rpc_calls: AtomicU64,
    /// Simulated wall-clock time, nanoseconds (parallel rounds charge the
    /// per-node maximum here).
    sim_nanos: AtomicU64,
    /// Total node busy time, nanoseconds (parallel rounds charge the sum
    /// here). Always >= `sim_nanos`.
    node_nanos: AtomicU64,
    /// KV pairs read through *admin* paths — statistics collection and
    /// other master-side bookkeeping. Never billed (no time, bytes, or
    /// dollar cost), but counted so tests and operators can see when a
    /// full statistics pass actually ran (the planner's staleness-bound
    /// contract is asserted against this counter).
    admin_kv_reads: AtomicU64,
}

impl Metrics {
    /// Fresh ledger.
    pub fn new() -> Arc<Self> {
        Arc::new(Metrics::default())
    }

    /// Records `n` KV reads at a region server.
    pub fn add_kv_reads(&self, n: u64) {
        self.kv_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` KV writes.
    pub fn add_kv_writes(&self, n: u64) {
        self.kv_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` KV reads performed through a metric-free admin path
    /// (statistics collection). Separate from [`Metrics::add_kv_reads`]:
    /// admin reads cost nothing, they are only *observable*.
    pub fn add_admin_kv_reads(&self, n: u64) {
        self.admin_kv_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes of cross-node traffic.
    pub fn add_network_bytes(&self, n: u64) {
        self.network_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one client RPC.
    pub fn add_rpc(&self) {
        self.rpc_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Advances simulated time by `seconds` of *serial* work: wall-clock
    /// and node-seconds advance together.
    ///
    /// The simulator executes operations instantly and *models* their
    /// duration; sequential client operations accumulate here, while the
    /// MapReduce engine charges whole-job critical-path times.
    pub fn add_sim_seconds(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        let nanos = (seconds * 1e9) as u64;
        self.sim_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.node_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Charges one parallel round: `wall` seconds of simulated elapsed time
    /// (the slowest lane) and `total` node-seconds of aggregate busy time
    /// (the sum over all lanes). Requires `wall <= total`.
    pub fn add_parallel_round(&self, wall: f64, total: f64) {
        debug_assert!(wall >= 0.0 && wall.is_finite());
        debug_assert!(
            total >= wall - 1e-12,
            "parallel round must have wall ({wall}) <= total ({total})"
        );
        self.sim_nanos
            .fetch_add((wall * 1e9) as u64, Ordering::Relaxed);
        self.node_nanos
            .fetch_add((total.max(wall) * 1e9) as u64, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kv_reads: self.kv_reads.load(Ordering::Relaxed),
            kv_writes: self.kv_writes.load(Ordering::Relaxed),
            network_bytes: self.network_bytes.load(Ordering::Relaxed),
            rpc_calls: self.rpc_calls.load(Ordering::Relaxed),
            sim_seconds: self.sim_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            node_seconds: self.node_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            admin_kv_reads: self.admin_kv_reads.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the ledger, also used as a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// KV pairs read at region servers.
    pub kv_reads: u64,
    /// KV pairs written.
    pub kv_writes: u64,
    /// Bytes moved across node boundaries.
    pub network_bytes: u64,
    /// Client RPC invocations.
    pub rpc_calls: u64,
    /// Simulated elapsed wall-clock seconds (parallel rounds count the
    /// slowest lane only).
    pub sim_seconds: f64,
    /// Total node busy seconds (parallel rounds count the sum of all
    /// lanes). Invariant: `sim_seconds <= node_seconds`.
    pub node_seconds: f64,
    /// KV pairs read through metric-free admin paths (statistics
    /// collection). Not part of any billed metric — purely observational.
    pub admin_kv_reads: u64,
}

impl MetricsSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            kv_reads: self.kv_reads - earlier.kv_reads,
            kv_writes: self.kv_writes - earlier.kv_writes,
            network_bytes: self.network_bytes - earlier.network_bytes,
            rpc_calls: self.rpc_calls - earlier.rpc_calls,
            sim_seconds: self.sim_seconds - earlier.sim_seconds,
            node_seconds: self.node_seconds - earlier.node_seconds,
            admin_kv_reads: self.admin_kv_reads - earlier.admin_kv_reads,
        }
    }
}

/// Measures the metric delta of one query execution.
pub struct QueryMeter {
    metrics: Arc<Metrics>,
    start: MetricsSnapshot,
}

impl QueryMeter {
    /// Starts measuring.
    pub fn start(metrics: Arc<Metrics>) -> Self {
        let start = metrics.snapshot();
        QueryMeter { metrics, start }
    }

    /// Stops measuring and returns the delta.
    pub fn finish(self) -> MetricsSnapshot {
        self.metrics.snapshot().delta_since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_kv_reads(5);
        m.add_kv_reads(3);
        m.add_network_bytes(100);
        m.add_rpc();
        m.add_sim_seconds(1.5);
        let s = m.snapshot();
        assert_eq!(s.kv_reads, 8);
        assert_eq!(s.network_bytes, 100);
        assert_eq!(s.rpc_calls, 1);
        assert!((s.sim_seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn admin_reads_are_counted_but_never_billed() {
        let m = Metrics::new();
        m.add_admin_kv_reads(40);
        m.add_admin_kv_reads(2);
        let s = m.snapshot();
        assert_eq!(s.admin_kv_reads, 42);
        // Nothing billable moved: no reads, bytes, time, or RPCs.
        assert_eq!(s.kv_reads, 0);
        assert_eq!(s.network_bytes, 0);
        assert_eq!(s.sim_seconds, 0.0);
        assert_eq!(s.rpc_calls, 0);
    }

    #[test]
    fn meter_measures_delta_only() {
        let m = Metrics::new();
        m.add_kv_reads(100);
        let meter = QueryMeter::start(m.clone());
        m.add_kv_reads(7);
        m.add_kv_writes(2);
        let d = meter.finish();
        assert_eq!(d.kv_reads, 7);
        assert_eq!(d.kv_writes, 2);
        assert_eq!(d.network_bytes, 0);
    }

    #[test]
    fn serial_work_keeps_wall_equal_to_total() {
        let m = Metrics::new();
        m.add_sim_seconds(0.5);
        m.add_sim_seconds(1.0);
        let s = m.snapshot();
        assert!((s.sim_seconds - 1.5).abs() < 1e-9);
        assert!((s.node_seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_round_charges_max_as_wall_and_sum_as_total() {
        let m = Metrics::new();
        // Three lanes of 1s, 2s, 3s on a wide-enough pool: wall = 3, total = 6.
        m.add_parallel_round(3.0, 6.0);
        let s = m.snapshot();
        assert!((s.sim_seconds - 3.0).abs() < 1e-9);
        assert!((s.node_seconds - 6.0).abs() < 1e-9);
    }

    #[test]
    fn wall_never_exceeds_total() {
        let m = Metrics::new();
        m.add_sim_seconds(0.25);
        m.add_parallel_round(0.5, 1.75);
        m.add_sim_seconds(0.1);
        let s = m.snapshot();
        assert!(
            s.sim_seconds <= s.node_seconds + 1e-9,
            "wall {} > total {}",
            s.sim_seconds,
            s.node_seconds
        );
    }
}
