//! Metric accounting: the ledgers behind the paper's three evaluation
//! metrics (§7.1) — turnaround time, network bandwidth, and dollar cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster-global metric ledger. All counters are monotonically increasing;
/// consumers measure queries by snapshot deltas via [`QueryMeter`].
#[derive(Debug, Default)]
pub struct Metrics {
    /// KV pairs read at region servers (the dollar-cost unit: each KV < 1 KB
    /// counts as one DynamoDB read unit, paper §7.1 footnote).
    kv_reads: AtomicU64,
    /// KV pairs written.
    kv_writes: AtomicU64,
    /// Bytes that crossed a node boundary (client↔server or server↔server).
    network_bytes: AtomicU64,
    /// Client RPC invocations.
    rpc_calls: AtomicU64,
    /// Simulated elapsed time, nanoseconds.
    sim_nanos: AtomicU64,
}

impl Metrics {
    /// Fresh ledger.
    pub fn new() -> Arc<Self> {
        Arc::new(Metrics::default())
    }

    /// Records `n` KV reads at a region server.
    pub fn add_kv_reads(&self, n: u64) {
        self.kv_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` KV writes.
    pub fn add_kv_writes(&self, n: u64) {
        self.kv_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes of cross-node traffic.
    pub fn add_network_bytes(&self, n: u64) {
        self.network_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one client RPC.
    pub fn add_rpc(&self) {
        self.rpc_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Advances simulated time by `seconds`.
    ///
    /// The simulator executes operations instantly and *models* their
    /// duration; sequential client operations accumulate here, while the
    /// MapReduce engine charges whole-job critical-path times.
    pub fn add_sim_seconds(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.sim_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kv_reads: self.kv_reads.load(Ordering::Relaxed),
            kv_writes: self.kv_writes.load(Ordering::Relaxed),
            network_bytes: self.network_bytes.load(Ordering::Relaxed),
            rpc_calls: self.rpc_calls.load(Ordering::Relaxed),
            sim_seconds: self.sim_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// A point-in-time copy of the ledger, also used as a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// KV pairs read at region servers.
    pub kv_reads: u64,
    /// KV pairs written.
    pub kv_writes: u64,
    /// Bytes moved across node boundaries.
    pub network_bytes: u64,
    /// Client RPC invocations.
    pub rpc_calls: u64,
    /// Simulated elapsed seconds.
    pub sim_seconds: f64,
}

impl MetricsSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            kv_reads: self.kv_reads - earlier.kv_reads,
            kv_writes: self.kv_writes - earlier.kv_writes,
            network_bytes: self.network_bytes - earlier.network_bytes,
            rpc_calls: self.rpc_calls - earlier.rpc_calls,
            sim_seconds: self.sim_seconds - earlier.sim_seconds,
        }
    }
}

/// Measures the metric delta of one query execution.
pub struct QueryMeter {
    metrics: Arc<Metrics>,
    start: MetricsSnapshot,
}

impl QueryMeter {
    /// Starts measuring.
    pub fn start(metrics: Arc<Metrics>) -> Self {
        let start = metrics.snapshot();
        QueryMeter { metrics, start }
    }

    /// Stops measuring and returns the delta.
    pub fn finish(self) -> MetricsSnapshot {
        self.metrics.snapshot().delta_since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_kv_reads(5);
        m.add_kv_reads(3);
        m.add_network_bytes(100);
        m.add_rpc();
        m.add_sim_seconds(1.5);
        let s = m.snapshot();
        assert_eq!(s.kv_reads, 8);
        assert_eq!(s.network_bytes, 100);
        assert_eq!(s.rpc_calls, 1);
        assert!((s.sim_seconds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn meter_measures_delta_only() {
        let m = Metrics::new();
        m.add_kv_reads(100);
        let meter = QueryMeter::start(m.clone());
        m.add_kv_reads(7);
        m.add_kv_writes(2);
        let d = meter.finish();
        assert_eq!(d.kv_reads, 7);
        assert_eq!(d.kv_writes, 2);
        assert_eq!(d.network_bytes, 0);
    }
}
