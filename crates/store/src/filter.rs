//! Server-side filters.
//!
//! HBase lets clients push predicates to the region server so that
//! non-matching rows are read locally but never shipped. The paper's DRJN
//! adaptation depends on this: "we further augmented HBase with custom
//! server-side filters to allow for efficient filtering of tuples in step
//! (iv)" (§7.1) — the pull phase reads every tuple (paying dollar cost) but
//! only tuples above the score bound cross the network.

use crate::row::RowResult;

/// A predicate evaluated at the region server against a materialized row.
///
/// Returning `false` drops the row before it is shipped: the row's KV pairs
/// still count as reads (dollar cost), but contribute no network bytes.
pub trait ServerFilter: Send + Sync {
    /// Keep this row?
    fn accept(&self, row: &RowResult) -> bool;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &'static str {
        "filter"
    }
}

/// Accepts rows where column `family:qualifier` decodes (big-endian f64,
/// order-preserving encoding **not** applied — plain `f64::to_be_bytes`)
/// to a value `>= threshold`. Missing column ⇒ reject.
pub struct ScoreAtLeast {
    /// Column family holding the score.
    pub family: String,
    /// Qualifier holding the score.
    pub qualifier: Vec<u8>,
    /// Inclusive lower bound.
    pub threshold: f64,
}

impl ServerFilter for ScoreAtLeast {
    fn accept(&self, row: &RowResult) -> bool {
        row.value(&self.family, &self.qualifier)
            .and_then(|v| v.as_ref().get(..8))
            .and_then(|b| b.try_into().ok().map(f64::from_be_bytes))
            .is_some_and(|s| s >= self.threshold)
    }

    fn name(&self) -> &'static str {
        "score-at-least"
    }
}

/// Accepts rows whose score column lies in `[min, max)` — DRJN's
/// incremental pull bands re-fetch only newly qualifying tuples.
pub struct ScoreInRange {
    /// Column family holding the score.
    pub family: String,
    /// Qualifier holding the score.
    pub qualifier: Vec<u8>,
    /// Inclusive lower bound.
    pub min: f64,
    /// Exclusive upper bound (`f64::INFINITY` for "no upper bound").
    pub max: f64,
}

impl ServerFilter for ScoreInRange {
    fn accept(&self, row: &RowResult) -> bool {
        row.value(&self.family, &self.qualifier)
            .and_then(|v| v.as_ref().get(..8))
            .and_then(|b| b.try_into().ok().map(f64::from_be_bytes))
            .is_some_and(|s| s >= self.min && s < self.max)
    }

    fn name(&self) -> &'static str {
        "score-in-range"
    }
}

/// Accepts rows whose key starts with the given prefix.
pub struct KeyPrefix(pub Vec<u8>);

impl ServerFilter for KeyPrefix {
    fn accept(&self, row: &RowResult) -> bool {
        row.key.starts_with(&self.0)
    }

    fn name(&self) -> &'static str {
        "key-prefix"
    }
}

/// Accepts rows that have at least one cell in the given family — used to
/// skip rows that only carry data for other column families.
pub struct HasFamily(pub String);

impl ServerFilter for HasFamily {
    fn accept(&self, row: &RowResult) -> bool {
        row.cells.iter().any(|c| c.family == self.0)
    }

    fn name(&self) -> &'static str {
        "has-family"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;
    use bytes::Bytes;

    fn row_with_score(score: f64) -> RowResult {
        RowResult {
            key: b"r1".to_vec(),
            cells: vec![Cell {
                row: b"r1".to_vec(),
                family: "cf".into(),
                qualifier: b"score".to_vec(),
                timestamp: 1,
                value: Bytes::copy_from_slice(&score.to_be_bytes()),
            }],
        }
    }

    #[test]
    fn score_filter_thresholds() {
        let f = ScoreAtLeast {
            family: "cf".into(),
            qualifier: b"score".to_vec(),
            threshold: 0.5,
        };
        assert!(f.accept(&row_with_score(0.5)));
        assert!(f.accept(&row_with_score(0.9)));
        assert!(!f.accept(&row_with_score(0.49)));
    }

    #[test]
    fn score_filter_rejects_missing_column() {
        let f = ScoreAtLeast {
            family: "cf".into(),
            qualifier: b"other".to_vec(),
            threshold: 0.0,
        };
        assert!(!f.accept(&row_with_score(1.0)));
    }

    #[test]
    fn range_filter_is_half_open() {
        let f = ScoreInRange {
            family: "cf".into(),
            qualifier: b"score".to_vec(),
            min: 0.4,
            max: 0.6,
        };
        assert!(f.accept(&row_with_score(0.4)));
        assert!(f.accept(&row_with_score(0.59)));
        assert!(!f.accept(&row_with_score(0.6)));
        assert!(!f.accept(&row_with_score(0.39)));
        let open = ScoreInRange {
            family: "cf".into(),
            qualifier: b"score".to_vec(),
            min: 0.5,
            max: f64::INFINITY,
        };
        assert!(open.accept(&row_with_score(1e9)));
    }

    #[test]
    fn prefix_filter() {
        let f = KeyPrefix(b"r".to_vec());
        assert!(f.accept(&row_with_score(0.1)));
        let g = KeyPrefix(b"zz".to_vec());
        assert!(!g.accept(&row_with_score(0.1)));
    }

    #[test]
    fn has_family_filter() {
        let row = row_with_score(0.3);
        assert!(HasFamily("cf".into()).accept(&row));
        assert!(!HasFamily("other".into()).accept(&row));
    }
}
