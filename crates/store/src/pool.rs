//! A persistent, sized-to-the-machine work-stealing worker pool.
//!
//! PR 2's `rj_store::parallel` primitive spawned a bounded
//! `std::thread::scope` lane pool *per parallel round* — every query
//! fan-out paid thread creation and teardown, and concurrent queries each
//! brought their own threads, oversubscribing the host. This module
//! replaces that with **one process-wide scheduler** shared by parallel
//! query fan-out, cross-query concurrency (the throughput harness's
//! clients), and future background index builds:
//!
//! * a fixed set of worker threads, sized to the machine
//!   ([`WorkStealingPool::global`]; override with `RJ_POOL_THREADS`),
//! * one deque per worker: submissions are distributed round-robin, a
//!   worker pops its own deque from the front and **steals** from the
//!   back of a sibling's deque when its own runs dry — the classic
//!   work-stealing discipline that keeps every core busy under skewed
//!   task sizes,
//! * a scoped batch-submit API ([`WorkStealingPool::run_batch`]) that
//!   blocks until the whole batch completes and returns results in
//!   **submission order**, so callers keep deterministic output and
//!   borrowed (non-`'static`) task closures — the same contract
//!   `std::thread::scope` gave the old lane pool,
//! * **help-first joining**: a thread waiting on its batch executes other
//!   pending pool jobs instead of sleeping. This is what makes *nested*
//!   submission safe — a pool job may itself call `run_batch` (a harness
//!   client running a parallel ISL query, say) without deadlocking even
//!   when every worker is occupied, because each waiter doubles as a
//!   worker.
//!
//! The pool schedules *real* execution only. Modelled time is unaffected:
//! [`crate::parallel::run_lanes`] measures each task's simulated elapsed
//! and node-busy seconds on its own non-time-charging client and charges
//! the makespan under the *caller's* requested lane width, so counted
//! metrics and simulated wall-clock are byte-identical whether a batch
//! runs here, on scoped threads, or inline.
//!
//! Task panics are caught per task and re-raised on the submitting thread
//! (first panicking task in submission order), leaving the pool healthy.
//!
//! **Priority classes.** The pool runs two classes of work. *Foreground*
//! jobs (query execution, parallel fan-out) go to the per-worker deques
//! and are claimed first. *Background* jobs (index builds, maintenance)
//! sit in a single FIFO that workers only drain when every foreground
//! deque is dry — so a burst of interactive queries never queues behind a
//! bulk rebuild, while background work soaks up idle cores. Submit at a
//! chosen class with [`WorkStealingPool::run_batch_at`];
//! [`WorkStealingPool::run_batch`] is the foreground shorthand.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// Under `--cfg rj_check` the pool's synchronization primitives come from
// the rj_check shims, whose every operation is a scheduling point for the
// deterministic interleaving explorer (`rj_analyze::chk`). The shims fall
// back to plain `std` behaviour outside a model run, so the pool works
// normally even in an rj_check build; without the cfg this module compiles
// against `std::sync` directly and rj_analyze is not involved at all.
#[cfg(rj_check)]
use rj_analyze::chk::sync::{
    atomic::{AtomicBool, AtomicUsize, Ordering},
    Condvar, Mutex,
};
#[cfg(not(rj_check))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(rj_check))]
use std::sync::{Condvar, Mutex};

/// A type-erased, lifetime-erased unit of pool work. Every job is built by
/// [`WorkStealingPool::run_batch`], which wraps the user closure in
/// `catch_unwind` — so running a job never unwinds into the worker loop.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Scheduling class of a submitted batch. Foreground work is claimed
/// before any background job; background work runs only on otherwise-idle
/// capacity. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolPriority {
    /// Latency-sensitive work: query execution, parallel fan-out rounds.
    Foreground,
    /// Bulk/deferrable work: index builds, maintenance sweeps.
    Background,
}

/// State shared between the pool handle, its workers, and joining callers.
struct PoolShared {
    /// One deque per worker; stealing pops the far end.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Single FIFO for [`PoolPriority::Background`] jobs, drained only
    /// when every foreground deque is dry.
    background: Mutex<VecDeque<Job>>,
    /// Round-robin submission cursor.
    next_queue: AtomicUsize,
    /// Jobs injected (either class) but not yet claimed — lets idle
    /// workers sleep without scanning every queue. Counted *before* the
    /// push, so it transiently over-counts but never under-counts (see
    /// [`PoolShared::inject`]).
    pending: AtomicUsize,
    /// Sleep/wake coordination for idle workers.
    sleep_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Claims one job: own queue first (front — LIFO locality for the
    /// owner would hurt submission-order fairness, so the owner also pops
    /// the front, FIFO), then steals from siblings' backs, and only when
    /// every foreground deque is dry falls through to the background FIFO.
    fn claim(&self, me: usize) -> Option<Job> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let n = self.queues.len();
        for i in 0..n {
            let q = &self.queues[(me + i) % n];
            let job = if i == 0 {
                q.lock().expect("pool queue poisoned").pop_front()
            } else {
                q.lock().expect("pool queue poisoned").pop_back()
            };
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::Release);
                return Some(job);
            }
        }
        if let Some(job) = self
            .background
            .lock()
            .expect("pool background queue poisoned")
            .pop_front()
        {
            self.pending.fetch_sub(1, Ordering::Release);
            return Some(job);
        }
        None
    }

    /// Pushes `jobs` at the given class — foreground round-robin across
    /// the worker deques, background onto the shared FIFO — and wakes
    /// sleepers. The wake is issued under `sleep_lock` so a worker that
    /// just re-checked `pending` and is about to wait cannot miss it.
    fn inject(&self, jobs: Vec<Job>, priority: PoolPriority) {
        let count = jobs.len();
        if count == 0 {
            return;
        }
        // Count *before* pushing: a worker may claim a job the instant it
        // lands in a deque, and its `fetch_sub` in `claim` must never
        // drive `pending` below zero — the counter would wrap to
        // ~usize::MAX and every worker would busy-spin forever. The
        // transient over-count in the window between this add and the
        // pushes only costs an idle worker one empty scan.
        self.pending.fetch_add(count, Ordering::Release);
        match priority {
            PoolPriority::Foreground => {
                for job in jobs {
                    let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
                    self.queues[slot]
                        .lock()
                        .expect("pool queue poisoned")
                        .push_back(job);
                }
            }
            PoolPriority::Background => {
                let mut q = self
                    .background
                    .lock()
                    .expect("pool background queue poisoned");
                q.extend(jobs);
            }
        }
        let _guard = self.sleep_lock.lock().expect("pool sleep lock poisoned");
        self.wake.notify_all();
    }

    /// Help-first join: run pending pool jobs (any batch's — helping a
    /// sibling still drains the queue our own jobs sit in) until this
    /// batch's countdown reaches zero, sleeping only when the queues are
    /// empty and our stragglers are running on other threads.
    ///
    /// Exits that skip `done_lock` are sound because `sync` is the
    /// Arc-owned [`BatchSync`], not the batch's stack frame: the
    /// last-finishing task may still be locking/notifying it after we
    /// observe zero, and its own Arc clone keeps it alive through that.
    fn join_batch(&self, sync: &BatchSync) {
        // A fixed claim origin is fine: `claim` scans every queue.
        let origin = self.queues.len() - 1;
        while sync.remaining.load(Ordering::Acquire) > 0 {
            if let Some(job) = self.claim(origin) {
                job();
                continue;
            }
            let guard = self.sleep_lock.lock().expect("pool lock poisoned");
            if sync.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            if self.pending.load(Ordering::Acquire) > 0 {
                continue; // new work appeared — go help
            }
            drop(guard);
            let guard = sync.done_lock.lock().expect("batch lock poisoned");
            if sync.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // Short timeout: completion notifies `done`, but fresh
            // stealable work would not — re-check for both periodically.
            let _ = sync
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("batch lock poisoned");
        }
    }

    fn worker_loop(&self, me: usize) {
        loop {
            if let Some(job) = self.claim(me) {
                job();
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = self.sleep_lock.lock().expect("pool sleep lock poisoned");
            // Re-check under the lock: `inject` notifies while holding it,
            // so either we see the new job here or the wait sees the wake.
            if self.pending.load(Ordering::Acquire) == 0 && !self.shutdown.load(Ordering::Acquire) {
                // The timeout is a robustness backstop only; correctness
                // never depends on it.
                let _ = self
                    .wake
                    .wait_timeout(guard, Duration::from_millis(50))
                    .expect("pool sleep lock poisoned");
            }
        }
    }
}

/// Completion tracking of one submitted batch: a countdown of unfinished
/// tasks and the joiner's wake channel.
///
/// This lives in an `Arc` cloned into every job — never on the submitting
/// stack — because the joiner is allowed to return the instant an
/// acquire-load of `remaining` reads zero, while the last-finishing task
/// may still be *between* its decrement and the `done` notify. Everything
/// that task touches after the decrement must therefore be owned memory
/// that outlives the batch, kept alive by the job's own clone. (The result
/// slots, by contrast, stay borrowed on the submitting stack: every slot
/// access strictly precedes the decrement.)
struct BatchSync {
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
}

impl BatchSync {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(BatchSync {
            remaining: AtomicUsize::new(n),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        })
    }

    /// Marks one task finished and wakes the joiner after the last. The
    /// release-ordered decrement is the final access the task makes to any
    /// *borrowed* batch state; the lock-and-notify that follows touches
    /// only this Arc-owned struct.
    fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.done_lock.lock().expect("batch lock poisoned");
            self.done.notify_all();
        }
    }
}

/// Fault-injection twins of the two pool protocols whose pre-fix versions
/// shipped real bugs. They exist only for the rj_check regression models
/// below: each re-creates the buggy ordering and carries an assertion at
/// the exact point the original code went wrong, so the interleaving
/// explorer can demonstrate the bug and `chk::replay` can reproduce it.
#[cfg(all(test, rj_check))]
impl PoolShared {
    /// The pre-fix `inject`: jobs pushed *before* the pending count is
    /// raised. In that window a concurrent `claim` can pop a job and
    /// decrement `pending` past zero, wrapping it to ~`usize::MAX`; the
    /// assertion observes the wrap when the late increment reads it back.
    fn inject_push_first(&self, jobs: Vec<Job>, priority: PoolPriority) {
        let count = jobs.len();
        if count == 0 {
            return;
        }
        match priority {
            PoolPriority::Foreground => {
                for job in jobs {
                    let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
                    self.queues[slot]
                        .lock()
                        .expect("pool queue poisoned")
                        .push_back(job);
                }
            }
            PoolPriority::Background => {
                self.background
                    .lock()
                    .expect("pool background queue poisoned")
                    .extend(jobs);
            }
        }
        let before = self.pending.fetch_add(count, Ordering::Release);
        assert!(
            before <= usize::MAX / 2,
            "pending counter underflowed: a claim outran the accounting"
        );
        let _guard = self.sleep_lock.lock().expect("pool sleep lock poisoned");
        self.wake.notify_all();
    }
}

#[cfg(all(test, rj_check))]
impl BatchSync {
    /// The pre-fix `finish_one`, from when `BatchSync` lived on the
    /// joiner's stack. `freed` stands for that stack frame: the joiner
    /// sets it the instant it observes `remaining == 0` (returning from
    /// `join_batch` and popping the frame). Touching `done_lock`/`done`
    /// after that is the use-after-free the Arc-owned design removed.
    fn finish_one_on_stack(&self, freed: &AtomicBool) {
        if self.remaining.fetch_sub(1, Ordering::Release) == 1 {
            assert!(
                !freed.load(Ordering::Acquire),
                "use-after-free: last finisher touched batch state after the joiner freed it"
            );
            let _guard = self.done_lock.lock().expect("batch lock poisoned");
            assert!(
                !freed.load(Ordering::Acquire),
                "use-after-free: last finisher touched batch state after the joiner freed it"
            );
            self.done.notify_all();
        }
    }
}

/// A persistent work-stealing worker pool. See the module docs.
///
/// Most callers want the process-wide [`WorkStealingPool::global`] pool;
/// dedicated pools ([`WorkStealingPool::new`]) exist for tests and
/// benchmarks and shut their workers down on drop.
pub struct WorkStealingPool {
    shared: Arc<PoolShared>,
    threads: usize,
    /// Join handles of owned (non-global) pools; drained on drop.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkStealingPool {
    /// Spawns a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            background: Mutex::new(VecDeque::new()),
            next_queue: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rj-pool-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    // rjlint: allow(no-unwrap) — worker spawn fails only on OS
                    // thread exhaustion; no useful typed recovery exists.
                    .expect("spawning pool worker")
            })
            .collect();
        WorkStealingPool {
            shared,
            threads,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide pool, created on first use and sized to the
    /// machine (`std::thread::available_parallelism`, overridable with the
    /// `RJ_POOL_THREADS` environment variable). All parallel rounds and
    /// harness clients share it, so total real concurrency tracks the
    /// hardware no matter how many queries fan out at once.
    pub fn global() -> &'static WorkStealingPool {
        static GLOBAL: OnceLock<WorkStealingPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("RJ_POOL_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                });
            WorkStealingPool::new(threads)
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task of `tasks` on the pool, blocking until all have
    /// completed, and returns their results in **submission order**.
    ///
    /// Tasks may borrow from the caller's stack (they only need to outlive
    /// this call, not `'static`), and may themselves call `run_batch` on
    /// the same pool: the submitting thread *helps* — it executes pending
    /// pool jobs while waiting — so nested batches cannot deadlock even
    /// with a single worker. A single-task batch runs inline on the
    /// caller's thread.
    ///
    /// If a task panics, the panic is re-raised here (first panicking task
    /// in submission order) after the whole batch has finished; the pool
    /// itself stays healthy.
    pub fn run_batch<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        self.run_batch_at(PoolPriority::Foreground, tasks)
    }

    /// [`WorkStealingPool::run_batch`] with an explicit scheduling class.
    ///
    /// A `Background` batch's jobs yield to all queued foreground work
    /// (workers claim them only when the foreground deques are dry), but
    /// the *submitting* thread still helps from either class while
    /// joining, so a background batch always makes progress — even on a
    /// one-worker pool fully occupied by foreground jobs — and nesting
    /// stays deadlock-free across classes.
    pub fn run_batch_at<'env, T: Send + 'env>(
        &self,
        priority: PoolPriority,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // Inline fast path: nothing to overlap, no cross-thread hop.
            // rjlint: allow(no-unwrap) — guarded by the `n == 1` branch.
            let task = tasks.into_iter().next().expect("one task");
            match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => return vec![v],
                Err(p) => resume_unwind(p),
            }
        }
        let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let sync = BatchSync::new(n);
        let slots_ref: &[Mutex<Option<std::thread::Result<T>>>] = &slots;
        let jobs: Vec<Job> = tasks
            .into_iter()
            .enumerate()
            .map(|(idx, task)| {
                let sync = Arc::clone(&sync);
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    *slots_ref[idx].lock().expect("batch slot poisoned") = Some(result);
                    sync.finish_one();
                });
                // SAFETY: lifetime erasure (`'_` → `'static`; same layout,
                // a fat pointer) to hand the job to the persistent
                // workers — exactly the contract of `std::thread::scope`:
                // this function does not return before `join_batch` has
                // observed `remaining == 0`, and every access a job makes
                // to borrowed state (`slots_ref` and the `'env` captures
                // of `task`) strictly precedes its release-ordered
                // countdown decrement in `BatchSync::finish_one`, which
                // the joiner's acquire load synchronizes with — so every
                // borrow outlives every borrowed access. What the
                // last-finishing job touches *after* its decrement (the
                // `done_lock`/`done` wake) is the Arc-owned `BatchSync`,
                // kept alive past this function's return by the job's own
                // clone, never borrowed. Jobs never unwind (the closure
                // body is fully wrapped in `catch_unwind`), so a job
                // cannot abort before reaching its countdown, and the
                // joiner itself only runs non-unwinding pool jobs while
                // waiting.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
            .collect();
        self.shared.inject(jobs, priority);
        self.join_batch(&sync);
        let mut out = Vec::with_capacity(n);
        let mut panicked = None;
        for slot in slots {
            match slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // rjlint: allow(no-unwrap) — join_batch returns only after the
                // batch countdown hits zero, so every slot is filled.
                .expect("batch joined before all tasks finished")
            {
                Ok(v) => out.push(v),
                Err(p) => {
                    if panicked.is_none() {
                        panicked = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panicked {
            resume_unwind(p);
        }
        out
    }

    /// Help-first join; see [`PoolShared::join_batch`].
    fn join_batch(&self, sync: &BatchSync) {
        self.shared.join_batch(sync);
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.shared.sleep_lock.lock().expect("pool lock poisoned");
            self.shared.wake.notify_all();
        }
        for handle in self
            .handles
            .lock()
            .expect("pool handles poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn boxed<'env, T, F: FnOnce() -> T + Send + 'env>(
        f: F,
    ) -> Box<dyn FnOnce() -> T + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkStealingPool::new(3);
        let got = pool.run_batch((0..64).map(|i| boxed(move || i * 2)).collect());
        assert_eq!(got, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn more_tasks_than_workers_all_run() {
        let pool = WorkStealingPool::new(2);
        let counter = AtomicU64::new(0);
        let got = pool.run_batch(
            (0..500)
                .map(|i| {
                    let counter = &counter;
                    boxed(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect(),
        );
        assert_eq!(got.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(got[499], 499);
    }

    #[test]
    fn tasks_borrow_from_the_caller_stack() {
        let pool = WorkStealingPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let slice = &data;
        let sums = pool.run_batch(
            (0..4)
                .map(|c| boxed(move || slice.iter().filter(|x| **x % 4 == c).sum::<u64>()))
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_batches_do_not_deadlock_even_on_one_worker() {
        // Every task submits a sub-batch; with a single worker this can
        // only complete if joiners help execute pending jobs.
        let pool = WorkStealingPool::new(1);
        let got = pool.run_batch(
            (0..8u64)
                .map(|i| {
                    let pool = &pool;
                    boxed(move || {
                        let inner =
                            pool.run_batch((0..4u64).map(|j| boxed(move || i * 10 + j)).collect());
                        inner.iter().sum::<u64>()
                    })
                })
                .collect(),
        );
        let want: Vec<u64> = (0..8u64)
            .map(|i| (0..4).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deeply_nested_batches_complete() {
        let pool = WorkStealingPool::new(2);
        fn level(pool: &WorkStealingPool, depth: usize) -> u64 {
            if depth == 0 {
                return 1;
            }
            pool.run_batch(
                (0..3)
                    .map(|_| {
                        let pool_ref = pool;
                        Box::new(move || level(pool_ref, depth - 1))
                            as Box<dyn FnOnce() -> u64 + Send + '_>
                    })
                    .collect(),
            )
            .iter()
            .sum()
        }
        assert_eq!(level(&pool, 3), 27);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkStealingPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                boxed(|| 1),
                boxed(|| panic!("boom in lane 1")),
                boxed(|| 3),
            ]);
        }));
        assert!(caught.is_err(), "panic must reach the submitter");
        // The pool keeps working after a task panic.
        let got = pool.run_batch((0..10).map(|i| boxed(move || i)).collect());
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_batches_from_many_threads() {
        let pool = WorkStealingPool::new(3);
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..10u64 {
                        let got = pool.run_batch(
                            (0..8u64)
                                .map(|i| boxed(move || t * 1000 + round * 10 + i))
                                .collect(),
                        );
                        let want: Vec<u64> = (0..8u64).map(|i| t * 1000 + round * 10 + i).collect();
                        assert_eq!(got, want);
                    }
                });
            }
        });
    }

    #[test]
    fn global_pool_is_machine_sized_and_reused() {
        let a = WorkStealingPool::global();
        let b = WorkStealingPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
        let got = a.run_batch((0..32).map(|i| boxed(move || i + 1)).collect());
        assert_eq!(got[31], 32);
    }

    #[test]
    fn empty_and_single_batches() {
        let pool = WorkStealingPool::new(2);
        let empty: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(pool.run_batch(empty).is_empty());
        assert_eq!(pool.run_batch(vec![boxed(|| 7u32)]), vec![7]);
    }

    /// A bare `PoolShared` with no worker threads: lets tests drive
    /// `inject`/`claim` deterministically (and the rj_check models drive
    /// them under the interleaving explorer, worker threads being model
    /// threads there).
    pub(super) fn workerless_shared(queues: usize) -> PoolShared {
        PoolShared {
            queues: (0..queues).map(|_| Mutex::new(VecDeque::new())).collect(),
            background: Mutex::new(VecDeque::new()),
            next_queue: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn marker_job(log: &Arc<Mutex<Vec<&'static str>>>, tag: &'static str) -> Job {
        let log = Arc::clone(log);
        Box::new(move || log.lock().unwrap().push(tag))
    }

    #[test]
    fn claim_drains_all_foreground_before_any_background() {
        let shared = workerless_shared(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        // Background submitted *first*; foreground must still win.
        shared.inject(
            vec![marker_job(&log, "bg0"), marker_job(&log, "bg1")],
            PoolPriority::Background,
        );
        shared.inject(
            vec![marker_job(&log, "fg0"), marker_job(&log, "fg1")],
            PoolPriority::Foreground,
        );
        while let Some(job) = shared.claim(0) {
            job();
        }
        assert_eq!(*log.lock().unwrap(), vec!["fg0", "fg1", "bg0", "bg1"]);
        assert_eq!(shared.pending.load(Ordering::Acquire), 0);
    }

    #[test]
    fn foreground_injected_midway_preempts_remaining_background() {
        let shared = workerless_shared(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        shared.inject(
            vec![marker_job(&log, "bg0"), marker_job(&log, "bg1")],
            PoolPriority::Background,
        );
        shared.claim(0).expect("bg0")();
        shared.inject(vec![marker_job(&log, "fg0")], PoolPriority::Foreground);
        shared.claim(0).expect("fg0 before bg1")();
        shared.claim(0).expect("bg1")();
        assert_eq!(*log.lock().unwrap(), vec!["bg0", "fg0", "bg1"]);
    }

    #[test]
    fn background_batches_complete_in_submission_order() {
        let pool = WorkStealingPool::new(2);
        let got = pool.run_batch_at(
            PoolPriority::Background,
            (0..32).map(|i| boxed(move || i * 3)).collect(),
        );
        assert_eq!(got, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn foreground_nested_inside_background_on_one_worker() {
        // A background job that itself fans out foreground work exercises
        // cross-class nesting: joiners must help across both queues or a
        // one-worker pool would wedge here.
        let pool = WorkStealingPool::new(1);
        let got = pool.run_batch_at(
            PoolPriority::Background,
            (0..4u64)
                .map(|i| {
                    let pool = &pool;
                    boxed(move || {
                        pool.run_batch((0..3u64).map(|j| boxed(move || i * 10 + j)).collect())
                            .iter()
                            .sum::<u64>()
                    })
                })
                .collect(),
        );
        let want: Vec<u64> = (0..4u64)
            .map(|i| (0..3).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(got, want);
    }
}

/// rj_check interleaving models of the pool's hot protocols, plus the
/// regression models of the two historical pool bugs. Run with
/// `RUSTFLAGS="--cfg rj_check" cargo test -p rj_store --lib model_`
/// (without the cfg this module does not exist).
///
/// The passing models drive the *real* `inject`/`claim`/`worker_loop`/
/// `finish_one` code — the shims compiled into this module under
/// `--cfg rj_check` make every sync operation a scheduling point — and
/// assert their invariants hold on **every** bounded interleaving. The
/// failing models drive the fault-injection twins above and assert the
/// explorer finds (and `chk::replay` reproduces) the historical bug.
#[cfg(all(test, rj_check))]
mod model_tests {
    use super::tests::workerless_shared;
    use super::*;
    use rj_analyze::chk::{self, thread, CheckOutcome, Config};

    fn noop_job() -> Job {
        Box::new(|| {})
    }

    /// Joiner tail of `join_batch` (minus helping): wait until the batch
    /// countdown reaches zero. Bounded in the model — every pass through
    /// the loop blocks on the condvar, never spins.
    fn await_batch(sync: &BatchSync) {
        loop {
            if sync.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            let guard = sync.done_lock.lock().expect("batch lock poisoned");
            if sync.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            let _ = sync
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("batch lock poisoned");
        }
    }

    /// The real count-first `inject` racing two claimers: the pending
    /// counter never wraps and fully drains, on every interleaving.
    #[test]
    fn model_pending_accounting_survives_racing_claims() {
        let outcome = chk::explore_with(Config::default(), || {
            let shared = Arc::new(workerless_shared(1));
            shared.inject(vec![noop_job()], PoolPriority::Foreground);
            let s1 = Arc::clone(&shared);
            let w1 = thread::spawn(move || {
                if let Some(job) = s1.claim(0) {
                    job();
                }
            });
            let s2 = Arc::clone(&shared);
            let w2 = thread::spawn(move || {
                if let Some(job) = s2.claim(0) {
                    job();
                }
            });
            // Races with both claimers.
            shared.inject(vec![noop_job()], PoolPriority::Foreground);
            w1.join();
            w2.join();
            // Claimers may have seen the count before the push and given
            // up empty-handed; whatever they left behind drains here, and
            // the books must balance exactly.
            while let Some(job) = shared.claim(0) {
                job();
            }
            assert_eq!(
                shared.pending.load(Ordering::Acquire),
                0,
                "pending out of balance after full drain"
            );
        });
        match outcome {
            CheckOutcome::Pass {
                schedules,
                exhausted,
            } => {
                assert!(exhausted, "bounded space should be fully explored");
                assert!(schedules > 1, "model must actually branch");
            }
            CheckOutcome::Fail { message, .. } => panic!("inject/claim accounting: {message}"),
        }
    }

    /// Regression model of the PR-5 underflow bug: the push-first twin of
    /// `inject` lets a racing claim decrement `pending` past zero. The
    /// explorer must find a failing schedule and `replay` must reproduce
    /// it from the decision vector alone.
    #[test]
    fn model_push_first_inject_underflows_pending() {
        fn model() {
            let shared = Arc::new(workerless_shared(1));
            shared.inject(vec![noop_job()], PoolPriority::Foreground);
            let s1 = Arc::clone(&shared);
            let w1 = thread::spawn(move || {
                if let Some(job) = s1.claim(0) {
                    job();
                }
            });
            let s2 = Arc::clone(&shared);
            let w2 = thread::spawn(move || {
                if let Some(job) = s2.claim(0) {
                    job();
                }
            });
            shared.inject_push_first(vec![noop_job()], PoolPriority::Foreground);
            w1.join();
            w2.join();
        }
        let CheckOutcome::Fail {
            message, schedule, ..
        } = chk::explore_with(Config::default(), model)
        else {
            panic!("explorer missed the push-before-count underflow");
        };
        assert!(
            message.contains("underflowed"),
            "unexpected failure: {message}"
        );
        assert!(
            !chk::replay(&schedule, model).is_pass(),
            "recorded schedule must reproduce the underflow"
        );
    }

    /// Regression model of the stack-batch bug: with `BatchSync` on the
    /// joiner's stack, the last finisher's post-decrement lock/notify
    /// races the joiner freeing the frame. Found and replayable.
    #[test]
    fn model_stack_batch_sync_is_a_use_after_free() {
        fn model() {
            let sync = BatchSync::new(1);
            let freed = Arc::new(AtomicBool::new(false));
            let finisher_sync = Arc::clone(&sync);
            let finisher_freed = Arc::clone(&freed);
            let finisher =
                thread::spawn(move || finisher_sync.finish_one_on_stack(&finisher_freed));
            await_batch(&sync);
            // The joiner returns — on the pre-fix design this is the stack
            // frame holding the batch state going away.
            freed.store(true, Ordering::Release);
            finisher.join();
        }
        let CheckOutcome::Fail {
            message, schedule, ..
        } = chk::explore_with(Config::default(), model)
        else {
            panic!("explorer missed the stack-batch use-after-free");
        };
        assert!(
            message.contains("use-after-free"),
            "unexpected failure: {message}"
        );
        assert!(
            !chk::replay(&schedule, model).is_pass(),
            "recorded schedule must reproduce the use-after-free"
        );
    }

    /// The fixed, Arc-owned countdown: two finishers running the real
    /// `finish_one` against a waiting joiner — no lost wake, no deadlock,
    /// on every interleaving.
    #[test]
    fn model_arc_batch_sync_countdown_never_loses_the_wake() {
        let outcome = chk::explore_with(Config::default(), || {
            let sync = BatchSync::new(2);
            let finishers: Vec<_> = (0..2)
                .map(|_| {
                    let sync = Arc::clone(&sync);
                    thread::spawn(move || sync.finish_one())
                })
                .collect();
            await_batch(&sync);
            for f in finishers {
                f.join();
            }
        });
        match outcome {
            CheckOutcome::Pass {
                schedules,
                exhausted,
            } => {
                assert!(exhausted, "bounded space should be fully explored");
                assert!(schedules > 1, "model must actually branch");
            }
            CheckOutcome::Fail { message, .. } => panic!("batch countdown: {message}"),
        }
    }

    /// A real `worker_loop` against pre-queued work of both classes: the
    /// worker drains foreground before background on every schedule, and
    /// the shutdown handshake (store + locked notify, as in `Drop`) always
    /// terminates it.
    #[test]
    fn model_worker_drains_foreground_first_then_shuts_down() {
        let outcome = chk::explore_with(Config::default(), || {
            let shared = Arc::new(workerless_shared(1));
            let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
            let sync = BatchSync::new(2);
            let tagged = |tag: &'static str| -> Job {
                let order = Arc::clone(&order);
                let sync = Arc::clone(&sync);
                Box::new(move || {
                    order.lock().expect("order log poisoned").push(tag);
                    sync.finish_one();
                })
            };
            // Both classes queued before the worker exists, background
            // first — claim order is then pure priority policy.
            shared.inject(vec![tagged("bg")], PoolPriority::Background);
            shared.inject(vec![tagged("fg")], PoolPriority::Foreground);
            let worker_shared = Arc::clone(&shared);
            let worker = thread::spawn(move || worker_shared.worker_loop(0));
            await_batch(&sync);
            assert_eq!(
                *order.lock().expect("order log poisoned"),
                vec!["fg", "bg"],
                "background claimed before foreground"
            );
            shared.shutdown.store(true, Ordering::Release);
            {
                let _guard = shared.sleep_lock.lock().expect("pool sleep lock poisoned");
                shared.wake.notify_all();
            }
            worker.join();
        });
        match outcome {
            CheckOutcome::Pass {
                schedules,
                exhausted,
            } => {
                assert!(exhausted, "bounded space should be fully explored");
                assert!(schedules > 1, "model must actually branch");
            }
            CheckOutcome::Fail { message, .. } => panic!("worker priority/shutdown: {message}"),
        }
    }

    /// The real help-first `join_batch` against a racing claimer: the
    /// joiner executes whatever the claimer leaves behind, waits out a
    /// straggler the claimer still holds, and the batch always completes
    /// with balanced accounting.
    #[test]
    fn model_help_first_join_completes_with_a_racing_claimer() {
        let outcome = chk::explore_with(Config::default(), || {
            let shared = Arc::new(workerless_shared(1));
            let sync = BatchSync::new(2);
            let jobs: Vec<Job> = (0..2)
                .map(|_| {
                    let sync = Arc::clone(&sync);
                    Box::new(move || sync.finish_one()) as Job
                })
                .collect();
            shared.inject(jobs, PoolPriority::Foreground);
            let claimer_shared = Arc::clone(&shared);
            let claimer = thread::spawn(move || {
                if let Some(job) = claimer_shared.claim(0) {
                    job();
                }
            });
            shared.join_batch(&sync);
            claimer.join();
            assert_eq!(sync.remaining.load(Ordering::Acquire), 0);
            assert_eq!(shared.pending.load(Ordering::Acquire), 0);
        });
        match outcome {
            CheckOutcome::Pass {
                schedules,
                exhausted,
            } => {
                assert!(exhausted, "bounded space should be fully explored");
                assert!(schedules > 1, "model must actually branch");
            }
            CheckOutcome::Fail { message, .. } => panic!("help-first join: {message}"),
        }
    }

    /// `inject` racing a worker that may be anywhere between claiming and
    /// going to sleep: the locked notify (and the timed-wait backstop)
    /// guarantee the job always runs and the shutdown always lands.
    #[test]
    fn model_inject_always_reaches_a_sleepy_worker() {
        let outcome = chk::explore_with(Config::default(), || {
            let shared = Arc::new(workerless_shared(1));
            let sync = BatchSync::new(1);
            let worker_shared = Arc::clone(&shared);
            let worker = thread::spawn(move || worker_shared.worker_loop(0));
            let job_sync = Arc::clone(&sync);
            shared.inject(
                vec![Box::new(move || job_sync.finish_one()) as Job],
                PoolPriority::Foreground,
            );
            await_batch(&sync);
            shared.shutdown.store(true, Ordering::Release);
            {
                let _guard = shared.sleep_lock.lock().expect("pool sleep lock poisoned");
                shared.wake.notify_all();
            }
            worker.join();
        });
        match outcome {
            CheckOutcome::Pass {
                schedules,
                exhausted,
            } => {
                assert!(exhausted, "bounded space should be fully explored");
                assert!(schedules > 1, "model must actually branch");
            }
            CheckOutcome::Fail { message, .. } => panic!("inject/sleep race: {message}"),
        }
    }
}
