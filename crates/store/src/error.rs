//! Store error types.

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named table does not exist.
    TableNotFound(String),
    /// The named table already exists.
    TableExists(String),
    /// The named column family is not part of the table schema.
    FamilyNotFound {
        /// Table that was addressed.
        table: String,
        /// Missing column family.
        family: String,
    },
    /// A malformed argument (empty row key, zero batch size, ...).
    InvalidArgument(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TableNotFound(t) => write!(f, "table not found: {t}"),
            StoreError::TableExists(t) => write!(f, "table already exists: {t}"),
            StoreError::FamilyNotFound { table, family } => {
                write!(f, "column family {family} not in table {table}")
            }
            StoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
