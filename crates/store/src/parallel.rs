//! Parallel multi-region execution: fan work out across region servers on
//! the shared work-stealing pool and charge wall-clock time as the slowest
//! lane.
//!
//! The paper's algorithms run against a shared-nothing store where every
//! query touches many region servers. A serial client walks those servers
//! one RPC at a time, so its modelled latency is the *sum* of per-server
//! times; real deployments fan out and pay the *maximum* (the paper's §5
//! parallel-round accounting). This module provides that execution shape:
//!
//! * [`run_lanes`] — the primitive: run a batch of tasks concurrently,
//!   each on its own non-time-charging client, then charge the cluster
//!   ledger one *parallel round*: wall-clock = the slowest node lane
//!   (floored by the longest single task and by `total / workers` — a
//!   bounded pool cannot beat its own width), total node-seconds = the
//!   plain sum of task times. Counted metrics (KV reads, network bytes,
//!   RPCs) are charged by the worker clients exactly as a serial client
//!   would charge them, so parallelism changes *when* work finishes,
//!   never *how much* is read or shipped. Real execution runs on the
//!   process-wide [`WorkStealingPool`] by default ([`LaneBackend::Pool`]);
//!   the pre-pool per-round `std::thread::scope` substrate survives as
//!   [`LaneBackend::ScopedThreads`] for before/after benchmarking.
//!   Modelled time uses the *requested* `workers` width in both cases, so
//!   the backend choice cannot change any metric.
//! * [`ParallelScanner`] — fans a [`Scan`] out across a table's regions
//!   (one task per region, lane = hosting node) and merges per-region
//!   results deterministically in key order, and fans point gets out the
//!   same way ([`ParallelScanner::multi_get`]).
//! * [`ExecutionMode`] — the knob query executors expose: `Serial` is the
//!   default, and `Parallel { workers: 1 }` degenerates to it.
//!
//! A *lane* is a serialization domain — normally the serving node. Tasks
//! in the same lane contend for that node's disk/CPU/NIC, so their
//! *node-busy* time (server work + transfer) adds up; RPC round-trip
//! latency overlaps across all in-flight requests. Scans and gets use the
//! serving node as the lane.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::client::Client;
use crate::cluster::Cluster;
use crate::error::Result;
use crate::pool::WorkStealingPool;
use crate::row::RowResult;
use crate::scan::Scan;

/// Which real-execution substrate [`run_lanes`] fans out on.
///
/// Purely a *host performance* knob: counted metrics and modelled times are
/// computed from per-task measurements and the requested lane width, so
/// both backends are result- and metric-identical by construction. The
/// scoped backend is PR 2's per-round thread spawner, kept so the
/// throughput harness can publish a pool-vs-scoped comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneBackend {
    /// The persistent process-wide [`WorkStealingPool`] (default).
    Pool,
    /// A fresh bounded `std::thread::scope` pool per round (the pre-pool
    /// substrate; spawns and joins OS threads every call).
    ScopedThreads,
}

/// Process-wide default backend; `0 = Pool`, `1 = ScopedThreads`.
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default substrate used by [`run_lanes`].
pub fn set_default_lane_backend(backend: LaneBackend) {
    let v = match backend {
        LaneBackend::Pool => 0,
        LaneBackend::ScopedThreads => 1,
    };
    DEFAULT_BACKEND.store(v, Ordering::Release);
}

/// The process-wide default substrate used by [`run_lanes`].
pub fn default_lane_backend() -> LaneBackend {
    match DEFAULT_BACKEND.load(Ordering::Acquire) {
        1 => LaneBackend::ScopedThreads,
        _ => LaneBackend::Pool,
    }
}

/// How a query executor drives multi-region reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// One RPC at a time; wall-clock time is the sum of all per-server
    /// times. The default.
    #[default]
    Serial,
    /// Fan multi-region reads out over at most `workers` concurrent
    /// client threads; wall-clock time per round is the slowest lane.
    /// Results and counted metrics (KV reads, bytes, RPCs) are identical
    /// to [`ExecutionMode::Serial`].
    Parallel {
        /// Maximum concurrently executing client-side workers.
        workers: usize,
    },
}

impl ExecutionMode {
    /// Worker-pool width this mode executes with (`Serial` → 1).
    pub fn workers(&self) -> usize {
        match self {
            ExecutionMode::Serial => 1,
            ExecutionMode::Parallel { workers } => (*workers).max(1),
        }
    }

    /// Whether this mode actually fans out (`Parallel { workers: 1 }` and
    /// `Serial` both report `false`).
    pub fn is_parallel(&self) -> bool {
        self.workers() > 1
    }

    /// Short display label ("serial" / "parallel(n)").
    pub fn label(&self) -> String {
        match self {
            ExecutionMode::Serial => "serial".to_owned(),
            ExecutionMode::Parallel { workers } => format!("parallel({workers})"),
        }
    }
}

/// The boxed work of one [`LaneTask`]: runs on a worker [`Client`] whose
/// counted metrics flow to the cluster ledger immediately; its modelled
/// elapsed time is collected by the round.
pub type TaskFn<'env, T> = Box<dyn FnOnce(&Client) -> Result<T> + Send + 'env>;

/// One task of a parallel round: a lane id (serialization domain — tasks
/// sharing a lane have their times summed) and the work itself, run on a
/// dedicated worker [`Client`].
pub struct LaneTask<'env, T> {
    /// Serialization-domain id (usually the serving node).
    pub lane: usize,
    /// The work.
    pub run: TaskFn<'env, T>,
}

impl<'env, T> LaneTask<'env, T> {
    /// Convenience constructor.
    pub fn new(lane: usize, run: impl FnOnce(&Client) -> Result<T> + Send + 'env) -> Self {
        LaneTask {
            lane,
            run: Box::new(run),
        }
    }
}

/// Runs `tasks` concurrently (modelled as a bounded pool of `workers`
/// lanes) and charges the cluster ledger one parallel round.
///
/// Results come back in submission order regardless of completion order.
/// The round's wall-clock charge is the makespan lower bound
///
/// ```text
/// wall = max( max over lanes of Σ node-busy time,   // a server serializes its disk/CPU/NIC work
///             max single task's elapsed time,       // one task's RPC chain cannot be split
///             Σ elapsed time / workers )            // the pool cannot beat its own width
/// ```
///
/// while node-seconds are charged as the plain sum of all task times — so
/// the ledger's aggregate-work totals are independent of the pool width
/// and latency alone reflects the fan-out. If any task fails, the round's
/// time is still charged (the work happened) and the first error in
/// submission order is returned.
///
/// Real execution runs on the [`default_lane_backend`] — normally the
/// shared [`WorkStealingPool`]. The modelled charge always uses the
/// *requested* `workers` width, not the physical thread count, so metrics
/// do not depend on the substrate or the machine.
pub fn run_lanes<'env, T: Send>(
    cluster: &Cluster,
    workers: usize,
    tasks: Vec<LaneTask<'env, T>>,
) -> Result<Vec<T>> {
    run_lanes_on(cluster, workers, tasks, default_lane_backend())
}

/// [`run_lanes`] with an explicit execution substrate. Exposed so the
/// throughput harness can benchmark backends against each other; query
/// code should call [`run_lanes`].
pub fn run_lanes_on<'env, T: Send + 'env>(
    cluster: &Cluster,
    workers: usize,
    tasks: Vec<LaneTask<'env, T>>,
    backend: LaneBackend,
) -> Result<Vec<T>> {
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.max(1).min(n);
    let lanes: Vec<usize> = tasks.iter().map(|t| t.lane).collect();

    // Execute: every task gets its own non-time-charging client; we record
    // (modelled elapsed, modelled node-busy, result) per task, in
    // submission order.
    // One measured task: (modelled elapsed, modelled node-busy, result).
    type MeasuredJob<'env, T> = Box<dyn FnOnce() -> (f64, f64, Result<T>) + Send + 'env>;
    let measured: Vec<(f64, f64, Result<T>)> = match backend {
        LaneBackend::Pool => {
            let jobs: Vec<MeasuredJob<'env, T>> = tasks
                .into_iter()
                .map(|t| {
                    let client = cluster.round_worker_client();
                    let run = t.run;
                    let job: MeasuredJob<'env, T> = Box::new(move || {
                        client.reset_elapsed();
                        let result = run(&client);
                        (client.elapsed_seconds(), client.node_busy_seconds(), result)
                    });
                    job
                })
                .collect();
            WorkStealingPool::global().run_batch(jobs)
        }
        LaneBackend::ScopedThreads => run_scoped(cluster, workers, tasks),
    };

    // Makespan accounting: per-lane busy sums serialize, RPC latency
    // overlaps across in-flight tasks, and the pool width is a hard floor.
    // Lanes are node ids — small and dense — so a flat vector indexed by
    // lane replaces the old per-call `HashMap<usize, f64>`.
    let mut lane_busy = vec![0.0f64; lanes.iter().copied().max().unwrap_or(0) + 1];
    let mut total = 0.0f64;
    let mut max_task = 0.0f64;
    let mut outputs = Vec::with_capacity(n);
    let mut first_err = None;
    for (idx, (elapsed, busy, result)) in measured.into_iter().enumerate() {
        lane_busy[lanes[idx]] += busy;
        total += elapsed;
        max_task = max_task.max(elapsed);
        match result {
            Ok(v) => outputs.push(v),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    let max_lane = lane_busy.iter().fold(0.0f64, |a, &b| a.max(b));
    let wall = max_lane.max(max_task).max(total / workers as f64);
    cluster.metrics().add_parallel_round(wall, total);
    match first_err {
        Some(e) => Err(e),
        None => Ok(outputs),
    }
}

/// The pre-pool substrate: spawn a bounded `std::thread::scope` pool of
/// `workers` OS threads for this round only. Kept as the benchmarking
/// reference for [`LaneBackend::ScopedThreads`].
fn run_scoped<'env, T: Send>(
    cluster: &Cluster,
    workers: usize,
    tasks: Vec<LaneTask<'env, T>>,
) -> Vec<(f64, f64, Result<T>)> {
    let n = tasks.len();
    let pending: Mutex<Vec<Option<TaskFn<'env, T>>>> =
        Mutex::new(tasks.into_iter().map(|t| Some(t.run)).collect());
    type Slot<T> = Mutex<Option<(f64, f64, Result<T>)>>;
    let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let client = cluster.round_worker_client();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let task = pending.lock().expect("task queue poisoned")[idx]
                        .take()
                        // rjlint: allow(no-unwrap) — `idx` comes from a shared
                        // fetch_add counter, so each slot is claimed once.
                        .expect("task taken twice");
                    client.reset_elapsed();
                    let result = task(&client);
                    *slots[idx].lock().expect("result slot poisoned") =
                        Some((client.elapsed_seconds(), client.node_busy_seconds(), result));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // rjlint: allow(no-unwrap) — run_lanes joins every worker before
                // draining slots, and each worker fills its claimed slots.
                .expect("worker pool exited before finishing all tasks")
        })
        .collect()
}

/// Fans scans and point gets out across a table's regions.
///
/// Construction is cheap; one scanner can serve many rounds. All methods
/// are read-for-read identical to their serial counterparts: the same rows
/// are returned in the same order, the same KV reads are billed, the same
/// bytes ship — only the modelled wall-clock differs.
pub struct ParallelScanner<'a> {
    cluster: &'a Cluster,
    workers: usize,
}

impl<'a> ParallelScanner<'a> {
    /// A scanner executing under `mode` (`Serial` → pool width 1).
    pub fn new(cluster: &'a Cluster, mode: ExecutionMode) -> Self {
        Self::with_workers(cluster, mode.workers())
    }

    /// A scanner with an explicit pool width.
    pub fn with_workers(cluster: &'a Cluster, workers: usize) -> Self {
        ParallelScanner {
            cluster,
            workers: workers.max(1),
        }
    }

    /// The pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `scan` against `table` with one task per overlapped region
    /// (lane = hosting node) and returns the merged rows in ascending key
    /// order — exactly the rows, reads, and bytes of a serial scan.
    ///
    /// Scans with a row `limit` fall back to a single-lane (serial-order)
    /// pass: a per-region fan-out cannot know how many rows other regions
    /// contribute without over-reading, which would break read-equivalence.
    pub fn scan_collect(&self, table: &str, scan: &Scan) -> Result<Vec<RowResult>> {
        let t = self.cluster.table(table)?;
        // Validate the family projection eagerly, like `Client::scan`.
        if let Some(fams) = &scan.families {
            for f in fams {
                t.family_index(f)?;
            }
        }
        if scan.limit.is_some() {
            let spec = scan.clone();
            let mut rows = run_lanes(
                self.cluster,
                1,
                vec![LaneTask::new(0, move |client: &Client| {
                    Ok(client.scan(table, spec)?.collect::<Vec<_>>())
                })],
            )?;
            return Ok(rows.pop().unwrap_or_default());
        }

        let start = scan.start.clone().unwrap_or_default();
        let stop = scan.stop.clone();
        let mut tasks: Vec<LaneTask<'_, Vec<RowResult>>> = Vec::new();
        for info in t.region_infos() {
            // Clip the region's [start, end) range to the scan's bounds; a
            // serial scan issues RPCs to exactly the overlapped regions.
            let lo: Vec<u8> = if info.start < start {
                start.clone()
            } else {
                info.start.clone()
            };
            if let Some(end) = &info.end {
                if *end <= lo {
                    continue; // region entirely before the scan start
                }
            }
            if let Some(s) = &stop {
                if lo >= *s {
                    continue; // region entirely past the scan stop
                }
            }
            let hi: Option<Vec<u8>> = match (&info.end, &stop) {
                (Some(e), Some(s)) => Some(if e < s { e.clone() } else { s.clone() }),
                (Some(e), None) => Some(e.clone()),
                (None, Some(s)) => Some(s.clone()),
                (None, None) => None,
            };
            let mut spec = scan.clone().start(lo);
            spec.stop = hi;
            tasks.push(LaneTask::new(info.node, move |client: &Client| {
                Ok(client.scan(table, spec)?.collect::<Vec<_>>())
            }));
        }
        let per_region = run_lanes(self.cluster, self.workers, tasks)?;
        // Regions are disjoint, ascending ranges: concatenation in region
        // order is already global key order.
        Ok(per_region.into_iter().flatten().collect())
    }

    /// Point-gets every key of `keys` (lane = serving node), returning
    /// results in input order — the same gets, reads, and bytes a serial
    /// loop over `Client::get_with_families` would produce.
    pub fn multi_get(
        &self,
        table: &str,
        keys: &[Vec<u8>],
        families: Option<&[String]>,
    ) -> Result<Vec<Option<RowResult>>> {
        let t = self.cluster.table(table)?;
        let tasks: Vec<LaneTask<'_, Option<RowResult>>> = keys
            .iter()
            .map(|key| {
                let key = key.clone();
                LaneTask::new(t.serving_node(&key), move |client: &Client| {
                    client.get_with_families(table, &key, families)
                })
            })
            .collect();
        run_lanes(self.cluster, self.workers, tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Mutation;
    use crate::costmodel::CostModel;
    use crate::keys;

    /// A 4-node cluster with a table pre-split into 8 regions and 64 rows.
    fn loaded_cluster() -> Cluster {
        let c = Cluster::new(4, CostModel::ec2(4));
        let splits: Vec<Vec<u8>> = (1..8u64)
            .map(|i| keys::encode_u64(i * 8).to_vec())
            .collect();
        c.create_table_with_splits("t", &["cf"], &splits).unwrap();
        let client = c.client();
        for i in 0..64u64 {
            client
                .put(
                    "t",
                    &keys::encode_u64(i),
                    Mutation::put("cf", b"q", i.to_string().into_bytes()),
                )
                .unwrap();
        }
        c
    }

    fn serial_scan(c: &Cluster, scan: Scan) -> (Vec<RowResult>, crate::metrics::MetricsSnapshot) {
        let before = c.metrics().snapshot();
        let rows: Vec<_> = c.client().scan("t", scan).unwrap().collect();
        (rows, c.metrics().snapshot().delta_since(&before))
    }

    fn parallel_scan(
        c: &Cluster,
        scan: Scan,
        workers: usize,
    ) -> (Vec<RowResult>, crate::metrics::MetricsSnapshot) {
        let before = c.metrics().snapshot();
        let rows = ParallelScanner::with_workers(c, workers)
            .scan_collect("t", &scan)
            .unwrap();
        (rows, c.metrics().snapshot().delta_since(&before))
    }

    #[test]
    fn modes_expose_worker_width() {
        assert_eq!(ExecutionMode::Serial.workers(), 1);
        assert!(!ExecutionMode::Serial.is_parallel());
        assert_eq!(ExecutionMode::Parallel { workers: 4 }.workers(), 4);
        assert!(ExecutionMode::Parallel { workers: 4 }.is_parallel());
        assert!(!ExecutionMode::Parallel { workers: 1 }.is_parallel());
        assert_eq!(ExecutionMode::Parallel { workers: 0 }.workers(), 1);
        assert_eq!(ExecutionMode::default(), ExecutionMode::Serial);
        assert_eq!(ExecutionMode::Serial.label(), "serial");
        assert_eq!(
            ExecutionMode::Parallel { workers: 3 }.label(),
            "parallel(3)"
        );
    }

    #[test]
    fn scan_matches_serial_rows_and_counted_metrics() {
        let c = loaded_cluster();
        for scan in [
            Scan::new(),
            Scan::new().caching(3),
            Scan::new().start(keys::encode_u64(5).to_vec()),
            Scan::new()
                .start(keys::encode_u64(13).to_vec())
                .stop(keys::encode_u64(49).to_vec()),
            Scan::new().stop(keys::encode_u64(2).to_vec()),
            Scan::new().start(keys::encode_u64(63).to_vec()),
            Scan::new().start(keys::encode_u64(200).to_vec()),
        ] {
            let (want_rows, want_m) = serial_scan(&c, scan.clone());
            let (got_rows, got_m) = parallel_scan(&c, scan.clone(), 4);
            assert_eq!(got_rows, want_rows, "{scan:?}");
            assert_eq!(got_m.kv_reads, want_m.kv_reads, "{scan:?}");
            assert_eq!(got_m.network_bytes, want_m.network_bytes, "{scan:?}");
            assert_eq!(got_m.rpc_calls, want_m.rpc_calls, "{scan:?}");
        }
    }

    #[test]
    fn parallel_wall_is_shorter_but_node_seconds_match() {
        let c = loaded_cluster();
        let (_, serial) = serial_scan(&c, Scan::new().caching(4));
        let (_, parallel) = parallel_scan(&c, Scan::new().caching(4), 4);
        assert!(
            parallel.sim_seconds < serial.sim_seconds * 0.6,
            "parallel wall {} not well below serial {}",
            parallel.sim_seconds,
            serial.sim_seconds
        );
        assert!(
            (parallel.node_seconds - serial.node_seconds).abs() < 1e-6,
            "node-seconds must not depend on fan-out: {} vs {}",
            parallel.node_seconds,
            serial.node_seconds
        );
        assert!(parallel.sim_seconds <= parallel.node_seconds + 1e-12);
    }

    #[test]
    fn single_worker_charges_serial_time() {
        let c = loaded_cluster();
        let (_, serial) = serial_scan(&c, Scan::new().caching(4));
        let (_, one) = parallel_scan(&c, Scan::new().caching(4), 1);
        assert!(
            (one.sim_seconds - serial.sim_seconds).abs() < 1e-6,
            "workers=1 must degenerate to serial time: {} vs {}",
            one.sim_seconds,
            serial.sim_seconds
        );
    }

    #[test]
    fn limited_scans_fall_back_to_serial_reads() {
        let c = loaded_cluster();
        let (want_rows, want_m) = serial_scan(&c, Scan::new().caching(5).limit(7));
        let (got_rows, got_m) = parallel_scan(&c, Scan::new().caching(5).limit(7), 4);
        assert_eq!(got_rows, want_rows);
        assert_eq!(got_m.kv_reads, want_m.kv_reads, "limit must not over-read");
    }

    #[test]
    fn multi_get_matches_serial_gets() {
        let c = loaded_cluster();
        let keys: Vec<Vec<u8>> = [3u64, 60, 17, 999, 42]
            .iter()
            .map(|&i| keys::encode_u64(i).to_vec())
            .collect();
        let before = c.metrics().snapshot();
        let client = c.client();
        let want: Vec<_> = keys.iter().map(|k| client.get("t", k).unwrap()).collect();
        let want_m = c.metrics().snapshot().delta_since(&before);

        let before = c.metrics().snapshot();
        let got = ParallelScanner::with_workers(&c, 4)
            .multi_get("t", &keys, None)
            .unwrap();
        let got_m = c.metrics().snapshot().delta_since(&before);
        assert_eq!(got, want);
        assert_eq!(got_m.kv_reads, want_m.kv_reads);
        assert_eq!(got_m.rpc_calls, want_m.rpc_calls);
        assert_eq!(got_m.network_bytes, want_m.network_bytes);
        assert!(got_m.sim_seconds < want_m.sim_seconds);
    }

    #[test]
    fn run_lanes_preserves_submission_order_and_reports_errors() {
        let c = loaded_cluster();
        let vals = run_lanes(
            &c,
            3,
            (0..10)
                .map(|i| LaneTask::new(i % 4, move |_c: &Client| Ok(i)))
                .collect(),
        )
        .unwrap();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());

        let err = run_lanes(
            &c,
            2,
            vec![
                LaneTask::new(0, |client: &Client| {
                    client.get("t", &keys::encode_u64(1)).map(|_| ())
                }),
                LaneTask::new(1, |client: &Client| client.get("nope", b"x").map(|_| ())),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, crate::error::StoreError::TableNotFound(_)));
    }

    /// The pool and scoped-thread substrates must be indistinguishable on
    /// the ledger: identical counted metrics *and* identical modelled
    /// times, because accounting uses the requested lane width, never the
    /// physical thread count.
    #[test]
    fn lane_backends_are_metric_identical() {
        let c = loaded_cluster();
        assert_eq!(default_lane_backend(), LaneBackend::Pool);
        let mut snaps = Vec::new();
        for backend in [LaneBackend::Pool, LaneBackend::ScopedThreads] {
            let before = c.metrics().snapshot();
            let rows = run_lanes_on(
                &c,
                3,
                (0..8u64)
                    .map(|i| {
                        LaneTask::new((i % 4) as usize, move |client: &Client| {
                            Ok(client
                                .scan("t", Scan::new().start(keys::encode_u64(i * 8).to_vec()))?
                                .collect::<Vec<_>>())
                        })
                    })
                    .collect(),
                backend,
            )
            .unwrap();
            assert_eq!(rows.len(), 8);
            snaps.push((rows, c.metrics().snapshot().delta_since(&before)));
        }
        let (pool_rows, pool_m) = &snaps[0];
        let (scoped_rows, scoped_m) = &snaps[1];
        assert_eq!(pool_rows, scoped_rows);
        assert_eq!(pool_m.kv_reads, scoped_m.kv_reads);
        assert_eq!(pool_m.network_bytes, scoped_m.network_bytes);
        assert_eq!(pool_m.rpc_calls, scoped_m.rpc_calls);
        assert!((pool_m.sim_seconds - scoped_m.sim_seconds).abs() < 1e-12);
        assert!((pool_m.node_seconds - scoped_m.node_seconds).abs() < 1e-12);
    }

    #[test]
    fn scan_unknown_family_errors_eagerly() {
        let c = loaded_cluster();
        let err = ParallelScanner::with_workers(&c, 2)
            .scan_collect("t", &Scan::new().families(&["nope"]))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::StoreError::FamilyNotFound { .. }
        ));
    }
}
