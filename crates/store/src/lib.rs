//! An HBase-model NoSQL cloudstore simulator.
//!
//! This crate is the storage substrate for the reproduction of Ntarmos,
//! Patlakas & Triantafillou, *"Rank Join Queries in NoSQL Databases"*
//! (PVLDB 7(7), 2014). The paper runs on HBase over HDFS; Rust has no mature
//! HBase client, so we implement the HBase **data model and cost behaviour**
//! in-process:
//!
//! * tables are ordered collections of key-value pairs `{row key, column
//!   family, qualifier, timestamp, value}` (§1 of the paper),
//! * each table is horizontally partitioned into **regions** (contiguous
//!   row-key ranges) sharded across **nodes**,
//! * clients issue `get` / `put` / `delete` / atomic `mutate_row` /
//!   batched `scan` operations; scans run in ascending key order only —
//!   the HBase "kink" (§4.2.2) that forces score-ordered layouts to store
//!   negated scores,
//! * **server-side filters** evaluate predicates at the region server so
//!   that filtered rows are read (and billed) but never shipped (§7.1's
//!   DRJN optimization),
//! * every operation is charged against a [`costmodel::CostModel`]:
//!   simulated wall-clock time, network bytes (cross-node traffic only),
//!   and KV read units — the paper's dollar-cost metric (one read unit per
//!   KV pair read, per the DynamoDB pricing footnote in §7.1).
//!
//! The simulator executes real operations on real data; only *time* is
//! virtual. Determinism is a design goal throughout: logical timestamps,
//! round-robin region placement, and ordered iteration make every run
//! reproducible.
//!
//! # Example
//!
//! ```
//! use rj_store::{Cluster, CostModel, Mutation, Scan};
//!
//! let cluster = Cluster::new(4, CostModel::lab());
//! cluster.create_table("t", &["cf"]).unwrap();
//! let client = cluster.client();
//! client.put("t", b"row1", Mutation::put("cf", b"q", b"v".to_vec())).unwrap();
//! let row = client.get("t", b"row1").unwrap().expect("row exists");
//! assert_eq!(row.value("cf", b"q").unwrap().as_ref(), b"v");
//! let rows: Vec<_> = client.scan("t", Scan::new()).unwrap().collect();
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod client;
pub mod cluster;
pub mod costmodel;
pub mod error;
pub mod filter;
pub mod keys;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod region;
pub mod row;
pub mod scan;
pub mod table;

pub use cell::{Cell, Mutation};
pub use client::Client;
pub use cluster::Cluster;
pub use costmodel::CostModel;
pub use error::StoreError;
pub use metrics::{MetricsSnapshot, QueryMeter};
pub use parallel::{ExecutionMode, LaneBackend, ParallelScanner};
pub use pool::{PoolPriority, WorkStealingPool};
pub use row::RowResult;
pub use scan::Scan;
