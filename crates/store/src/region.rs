//! Regions: contiguous row-key ranges of a table, each hosted on one node.
//!
//! A region stores its rows in a `BTreeMap`, mirroring HBase's sorted
//! key-value files: point reads are cheap, and scans stream rows in
//! ascending key order. Cells are multi-versioned with tombstone deletes,
//! newest-first, which the §6 update machinery relies on to "replay all row
//! mutations in timestamp order".

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

use crate::cell::{Cell, Mutation};
use crate::filter::ServerFilter;
use crate::row::RowResult;

/// One version of one column: a put or a tombstone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Version {
    /// A value written at a timestamp.
    Put(u64, Bytes),
    /// A delete tombstone at a timestamp; shadows versions at the same or
    /// earlier timestamps.
    Tombstone(u64),
}

impl Version {
    /// Sort key: newer first; at equal timestamps tombstones shadow puts.
    fn order_key(&self) -> (u64, u8) {
        match self {
            Version::Tombstone(ts) => (*ts, 1),
            Version::Put(ts, _) => (*ts, 0),
        }
    }
}

/// All versions of one column, ordered newest-first.
#[derive(Clone, Debug, Default)]
pub(crate) struct Versions(Vec<Version>);

impl Versions {
    fn insert(&mut self, v: Version) {
        let key = v.order_key();
        // Newest first ⇒ descending order_key.
        let pos = self
            .0
            .binary_search_by(|e| key.cmp(&e.order_key()))
            .unwrap_or_else(|p| p);
        self.0.insert(pos, v);
    }

    /// The latest visible value, if the column is live.
    fn visible(&self) -> Option<(u64, &Bytes)> {
        match self.0.first() {
            Some(Version::Put(ts, v)) => Some((*ts, v)),
            _ => None,
        }
    }
}

/// Row payload: per-family column maps, indexed by the table's family ids.
#[derive(Clone, Debug)]
pub(crate) struct RowData {
    families: Vec<BTreeMap<Vec<u8>, Versions>>,
}

impl RowData {
    fn new(num_families: usize) -> Self {
        RowData {
            families: vec![BTreeMap::new(); num_families],
        }
    }

    fn is_empty(&self) -> bool {
        self.families.iter().all(BTreeMap::is_empty)
    }
}

/// Byte/KV accounting for one region-server operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadCost {
    /// KV pairs materialized at the server (dollar-cost units).
    pub kvs_scanned: u64,
    /// Bytes materialized at the server (disk volume).
    pub bytes_scanned: u64,
    /// KV pairs that passed filters and will be shipped.
    pub kvs_returned: u64,
    /// Bytes that passed filters and will be shipped.
    pub bytes_returned: u64,
}

/// A batch of scan output plus its costs and resume position.
pub struct ScanBatch {
    /// Rows produced by this batch (may be empty if the filter dropped all).
    pub rows: Vec<RowResult>,
    /// Accounting for the batch.
    pub cost: ReadCost,
    /// Key to resume from (exclusive of everything already visited), or
    /// `None` when the region is exhausted.
    pub resume_key: Option<Vec<u8>>,
}

/// One shard of a table: rows in `[start, end)` hosted on `node`.
#[derive(Debug)]
pub struct Region {
    /// First key served (inclusive); empty = table start.
    pub(crate) start: Vec<u8>,
    /// Hosting node index.
    pub(crate) node: usize,
    pub(crate) rows: BTreeMap<Vec<u8>, RowData>,
    /// Live KV count (visible puts).
    pub(crate) kv_count: u64,
    /// Approximate stored bytes, including shadowed versions.
    pub(crate) byte_size: u64,
}

impl Region {
    pub(crate) fn new(start: Vec<u8>, node: usize) -> Self {
        Region {
            start,
            node,
            rows: BTreeMap::new(),
            kv_count: 0,
            byte_size: 0,
        }
    }

    /// Hosting node.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Inclusive start key.
    pub fn start_key(&self) -> &[u8] {
        &self.start
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Approximate bytes stored.
    pub fn byte_size(&self) -> u64 {
        self.byte_size
    }

    /// Live KV count.
    pub fn kv_count(&self) -> u64 {
        self.kv_count
    }

    /// Applies mutations to one row atomically. Returns bytes written.
    ///
    /// `family_ids` maps each mutation to its schema family index (resolved
    /// by the table before routing here).
    pub(crate) fn mutate_row(
        &mut self,
        row_key: &[u8],
        muts: &[(usize, &Mutation)],
        default_ts: u64,
        num_families: usize,
    ) -> u64 {
        let row = self
            .rows
            .entry(row_key.to_vec())
            .or_insert_with(|| RowData::new(num_families));
        let mut bytes = 0u64;
        for &(fam_idx, m) in muts {
            match m {
                Mutation::Put {
                    qualifier,
                    value,
                    timestamp,
                    ..
                } => {
                    let ts = timestamp.unwrap_or(default_ts);
                    let versions = row.families[fam_idx].entry(qualifier.clone()).or_default();
                    let was_visible = versions.visible().is_some();
                    versions.insert(Version::Put(ts, value.clone()));
                    let now_visible = versions.visible().is_some();
                    if !was_visible && now_visible {
                        self.kv_count += 1;
                    }
                    bytes += m.weight(row_key.len());
                }
                Mutation::Delete {
                    qualifier,
                    timestamp,
                    ..
                } => {
                    let ts = timestamp.unwrap_or(default_ts);
                    let versions = row.families[fam_idx].entry(qualifier.clone()).or_default();
                    let was_visible = versions.visible().is_some();
                    versions.insert(Version::Tombstone(ts));
                    let now_visible = versions.visible().is_some();
                    if was_visible && !now_visible {
                        self.kv_count = self.kv_count.saturating_sub(1);
                    }
                    bytes += m.weight(row_key.len());
                }
            }
        }
        if row.is_empty() {
            self.rows.remove(row_key);
        }
        self.byte_size += bytes;
        bytes
    }

    /// Materializes the visible cells of one row, restricted to the given
    /// family indices (`None` = all).
    fn materialize(
        &self,
        key: &[u8],
        data: &RowData,
        family_names: &[String],
        families: Option<&[usize]>,
    ) -> (RowResult, ReadCost) {
        let mut cells = Vec::new();
        let mut cost = ReadCost::default();
        let select: Box<dyn Iterator<Item = usize>> = match families {
            Some(ids) => Box::new(ids.iter().copied()),
            None => Box::new(0..data.families.len()),
        };
        for fam_idx in select {
            for (qualifier, versions) in &data.families[fam_idx] {
                // Every stored version is touched by the read path.
                cost.kvs_scanned += 1;
                if let Some((ts, value)) = versions.visible() {
                    let cell = Cell {
                        row: key.to_vec(),
                        family: family_names[fam_idx].clone(),
                        qualifier: qualifier.clone(),
                        timestamp: ts,
                        value: value.clone(),
                    };
                    cost.bytes_scanned += cell.weight();
                    cells.push(cell);
                }
            }
        }
        (
            RowResult {
                key: key.to_vec(),
                cells,
            },
            cost,
        )
    }

    /// Point read of one row.
    pub(crate) fn get(
        &self,
        key: &[u8],
        family_names: &[String],
        families: Option<&[usize]>,
    ) -> (Option<RowResult>, ReadCost) {
        match self.rows.get(key) {
            None => (None, ReadCost::default()),
            Some(data) => {
                let (row, mut cost) = self.materialize(key, data, family_names, families);
                if row.cells.is_empty() {
                    (None, cost)
                } else {
                    cost.kvs_returned = row.kv_count();
                    cost.bytes_returned = row.weight();
                    (Some(row), cost)
                }
            }
        }
    }

    /// Scans up to `max_rows` rows starting at `start` (inclusive), stopping
    /// before `stop` (exclusive) and before the region end.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_batch(
        &self,
        start: &[u8],
        stop: Option<&[u8]>,
        family_names: &[String],
        families: Option<&[usize]>,
        filter: Option<&dyn ServerFilter>,
        max_rows: usize,
    ) -> ScanBatch {
        let mut rows = Vec::new();
        let mut cost = ReadCost::default();
        let mut resume_key = None;

        let range = self
            .rows
            .range::<[u8], _>((Bound::Included(start), Bound::Unbounded));
        for (visited, (key, data)) in range.enumerate() {
            if let Some(stop) = stop {
                if key.as_slice() >= stop {
                    return ScanBatch {
                        rows,
                        cost,
                        resume_key: None,
                    };
                }
            }
            if visited == max_rows {
                resume_key = Some(key.clone());
                break;
            }
            let (row, c) = self.materialize(key, data, family_names, families);
            cost.kvs_scanned += c.kvs_scanned;
            cost.bytes_scanned += c.bytes_scanned;
            if row.cells.is_empty() {
                continue;
            }
            if filter.is_none_or(|f| f.accept(&row)) {
                cost.kvs_returned += row.kv_count();
                cost.bytes_returned += row.weight();
                rows.push(row);
            }
        }
        ScanBatch {
            rows,
            cost,
            resume_key,
        }
    }

    /// Row keys in ascending order (rebalancing support).
    pub(crate) fn row_keys(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.rows.keys()
    }

    /// The median row key, used as an auto-split point. `None` if the
    /// region has fewer than two rows.
    pub(crate) fn split_point(&self) -> Option<Vec<u8>> {
        if self.rows.len() < 2 {
            return None;
        }
        self.rows.keys().nth(self.rows.len() / 2).cloned()
    }

    /// Splits off rows `>= split_key` into a new region hosted on `node`.
    pub(crate) fn split_off(&mut self, split_key: &[u8], node: usize) -> Region {
        let upper = self.rows.split_off(split_key);
        let mut new_region = Region::new(split_key.to_vec(), node);
        new_region.rows = upper;
        // Recompute accounting on both sides (splits are rare).
        let recount = |rows: &BTreeMap<Vec<u8>, RowData>| -> (u64, u64) {
            let mut kvs = 0u64;
            let mut bytes = 0u64;
            for (key, data) in rows {
                for fam in &data.families {
                    for (q, versions) in fam {
                        if let Some((_, v)) = versions.visible() {
                            kvs += 1;
                            bytes += (key.len() + q.len() + 8 + v.len()) as u64;
                        }
                    }
                }
            }
            (kvs, bytes)
        };
        let (kvs, bytes) = recount(&self.rows);
        self.kv_count = kvs;
        self.byte_size = bytes;
        let (kvs, bytes) = recount(&new_region.rows);
        new_region.kv_count = kvs;
        new_region.byte_size = bytes;
        new_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fams() -> Vec<String> {
        vec!["a".to_string(), "b".to_string()]
    }

    fn put(region: &mut Region, key: &[u8], fam: usize, q: &[u8], v: &[u8], ts: u64) {
        let m = Mutation::put_at(if fam == 0 { "a" } else { "b" }, q, v.to_vec(), ts);
        region.mutate_row(key, &[(fam, &m)], 0, 2);
    }

    #[test]
    fn put_then_get() {
        let mut r = Region::new(vec![], 0);
        put(&mut r, b"k1", 0, b"q", b"v1", 1);
        let (row, cost) = r.get(b"k1", &fams(), None);
        assert_eq!(row.unwrap().value("a", b"q").unwrap().as_ref(), b"v1");
        assert_eq!(cost.kvs_scanned, 1);
        assert_eq!(r.kv_count(), 1);
    }

    #[test]
    fn newer_put_wins() {
        let mut r = Region::new(vec![], 0);
        put(&mut r, b"k", 0, b"q", b"old", 1);
        put(&mut r, b"k", 0, b"q", b"new", 5);
        let (row, _) = r.get(b"k", &fams(), None);
        assert_eq!(row.unwrap().value("a", b"q").unwrap().as_ref(), b"new");
        assert_eq!(r.kv_count(), 1, "overwrite does not grow live count");
    }

    #[test]
    fn tombstone_hides_older_and_equal() {
        let mut r = Region::new(vec![], 0);
        put(&mut r, b"k", 0, b"q", b"v", 5);
        let d = Mutation::delete_at("a", b"q", 5);
        r.mutate_row(b"k", &[(0, &d)], 0, 2);
        let (row, _) = r.get(b"k", &fams(), None);
        assert!(row.is_none(), "equal-timestamp delete shadows the put");
        assert_eq!(r.kv_count(), 0);
    }

    #[test]
    fn put_after_tombstone_resurrects() {
        let mut r = Region::new(vec![], 0);
        put(&mut r, b"k", 0, b"q", b"v1", 1);
        let d = Mutation::delete_at("a", b"q", 2);
        r.mutate_row(b"k", &[(0, &d)], 0, 2);
        put(&mut r, b"k", 0, b"q", b"v2", 3);
        let (row, _) = r.get(b"k", &fams(), None);
        assert_eq!(row.unwrap().value("a", b"q").unwrap().as_ref(), b"v2");
    }

    #[test]
    fn out_of_order_timestamps_resolve_correctly() {
        let mut r = Region::new(vec![], 0);
        put(&mut r, b"k", 0, b"q", b"newest", 10);
        put(&mut r, b"k", 0, b"q", b"stale", 3);
        let (row, _) = r.get(b"k", &fams(), None);
        assert_eq!(row.unwrap().value("a", b"q").unwrap().as_ref(), b"newest");
    }

    #[test]
    fn scan_respects_bounds_and_batch() {
        let mut r = Region::new(vec![], 0);
        for i in 0..10u8 {
            put(&mut r, &[i], 0, b"q", b"v", 1);
        }
        let batch = r.scan_batch(&[2], Some(&[8]), &fams(), None, None, 3);
        let keys: Vec<u8> = batch.rows.iter().map(|row| row.key[0]).collect();
        assert_eq!(keys, vec![2, 3, 4]);
        assert_eq!(batch.resume_key, Some(vec![5]));
        let batch2 = r.scan_batch(&[5], Some(&[8]), &fams(), None, None, 100);
        let keys2: Vec<u8> = batch2.rows.iter().map(|row| row.key[0]).collect();
        assert_eq!(keys2, vec![5, 6, 7]);
        assert_eq!(batch2.resume_key, None);
    }

    #[test]
    fn scan_family_projection() {
        let mut r = Region::new(vec![], 0);
        put(&mut r, b"k", 0, b"q", b"va", 1);
        put(&mut r, b"k", 1, b"q", b"vb", 1);
        let batch = r.scan_batch(b"", None, &fams(), Some(&[1]), None, 10);
        assert_eq!(batch.rows.len(), 1);
        assert_eq!(batch.rows[0].cells.len(), 1);
        assert_eq!(batch.rows[0].cells[0].family, "b");
    }

    #[test]
    fn filtered_rows_are_billed_but_not_returned() {
        struct RejectAll;
        impl ServerFilter for RejectAll {
            fn accept(&self, _row: &RowResult) -> bool {
                false
            }
        }
        let mut r = Region::new(vec![], 0);
        for i in 0..5u8 {
            put(&mut r, &[i], 0, b"q", b"v", 1);
        }
        let batch = r.scan_batch(b"", None, &fams(), None, Some(&RejectAll), 10);
        assert!(batch.rows.is_empty());
        assert_eq!(batch.cost.kvs_scanned, 5);
        assert_eq!(batch.cost.kvs_returned, 0);
        assert_eq!(batch.cost.bytes_returned, 0);
        assert!(batch.cost.bytes_scanned > 0);
    }

    #[test]
    fn split_partitions_rows() {
        let mut r = Region::new(vec![], 0);
        for i in 0..10u8 {
            put(&mut r, &[i], 0, b"q", b"v", 1);
        }
        let split = r.split_point().unwrap();
        let upper = r.split_off(&split, 1);
        assert_eq!(r.row_count() + upper.row_count(), 10);
        assert!(r.rows.keys().all(|k| k.as_slice() < split.as_slice()));
        assert!(upper.rows.keys().all(|k| k.as_slice() >= split.as_slice()));
        assert_eq!(upper.node(), 1);
        assert_eq!(r.kv_count() + upper.kv_count(), 10);
    }
}
