//! The cloud cost model: translates store and MapReduce activity into
//! simulated wall-clock time and dollar cost.
//!
//! The paper reports three metrics (§7.1): turnaround time, network bytes,
//! and dollar cost (KV read units under DynamoDB pricing). Bytes and read
//! units are *counted* exactly by the simulator; time is *modelled* from the
//! parameters here. Two calibrated profiles mirror the paper's testbeds:
//!
//! * [`CostModel::ec2`] — the "1+8" EC2 m1.large cluster: 2 vCPUs/node,
//!   instance-store disks, 1 Gbps network, heavyweight Hadoop job startup,
//!   high RPC round-trips (virtualized network).
//! * [`CostModel::lab`] — the 5-node lab cluster: 32 cores/node, 10×1 TB
//!   striped disks, low-latency 10 Gbps LAN, snappier job startup.
//!
//! The EC2/LC contrast is what flips the ISL-vs-BFHM time ranking between
//! Fig. 7 and Fig. 8: on EC2, network transfer dominates and BFHM's frugal
//! fetches win; on the lab cluster, cheap RPCs and fast disks favour ISL's
//! batched scans until large `k` lets BFHM close the gap.

/// Cost-model parameters. All times in seconds, rates in bytes/second.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Human-readable profile name (used in experiment output).
    pub name: &'static str,
    /// Number of worker (region-server) nodes.
    pub worker_nodes: usize,
    /// Round-trip latency of one client RPC to a region server.
    pub rpc_latency: f64,
    /// Point-to-point network throughput, bytes/s.
    pub net_bandwidth: f64,
    /// Sequential disk read throughput per node, bytes/s.
    pub disk_bandwidth: f64,
    /// Random-access penalty charged once per served request (seek +
    /// block-cache miss).
    pub disk_seek: f64,
    /// CPU cost of materializing one KV pair at the server.
    pub cpu_per_kv: f64,
    /// Per-record processing overhead of a MapReduce task (Hadoop's
    /// serialization/context cost — tens of microseconds per record, far
    /// above the raw KV cost; this is what lets cluster size shrink job
    /// times in the §7.1 scaling note).
    pub mr_cpu_per_record: f64,
    /// Fixed startup overhead of one MapReduce job (JVM spin-up, scheduling,
    /// job setup — the dominant constant in the paper's Hive/Pig numbers).
    pub mr_job_startup: f64,
    /// Startup overhead of one task wave (mapper/reducer launch).
    pub mr_task_startup: f64,
    /// Concurrent map slots per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce slots per node.
    pub reduce_slots_per_node: usize,
    /// Dollar price of one read unit (DynamoDB: $0.01/h per 50 units —
    /// normalized here to a per-read price for reporting).
    pub dollar_per_read_unit: f64,
}

impl CostModel {
    /// Amazon EC2 profile: `1 + workers` m1.large nodes (paper used 1+2,
    /// 1+4, 1+8).
    pub fn ec2(workers: usize) -> Self {
        CostModel {
            name: "EC2",
            worker_nodes: workers,
            rpc_latency: 1.5e-3,
            net_bandwidth: 125e6, // 1 Gbps
            disk_bandwidth: 90e6, // instance store, single spindle
            disk_seek: 8e-3,
            cpu_per_kv: 1.2e-6,
            mr_cpu_per_record: 40e-6,
            mr_job_startup: 12.0,
            mr_task_startup: 1.5,
            map_slots_per_node: 2,
            reduce_slots_per_node: 1,
            dollar_per_read_unit: 0.01 / 3600.0 / 50.0,
        }
    }

    /// Lab-cluster profile: 5 nodes, 32 cores and 10 striped disks each.
    pub fn lab() -> Self {
        CostModel {
            name: "LC",
            worker_nodes: 5,
            rpc_latency: 0.15e-3,
            net_bandwidth: 1.25e9, // 10 Gbps
            disk_bandwidth: 800e6, // 10 spindles striped
            disk_seek: 2e-3,
            cpu_per_kv: 0.4e-6,
            mr_cpu_per_record: 15e-6,
            mr_job_startup: 6.0,
            mr_task_startup: 0.8,
            map_slots_per_node: 16,
            reduce_slots_per_node: 8,
            dollar_per_read_unit: 0.01 / 3600.0 / 50.0,
        }
    }

    /// A tiny profile for unit tests: one worker, negligible constants, so
    /// tests assert on counted metrics rather than modelled time.
    pub fn test() -> Self {
        CostModel {
            name: "TEST",
            worker_nodes: 2,
            rpc_latency: 1e-6,
            net_bandwidth: 1e12,
            disk_bandwidth: 1e12,
            disk_seek: 0.0,
            cpu_per_kv: 0.0,
            mr_cpu_per_record: 0.0,
            mr_job_startup: 0.0,
            mr_task_startup: 0.0,
            map_slots_per_node: 4,
            reduce_slots_per_node: 4,
            dollar_per_read_unit: 0.01 / 3600.0 / 50.0,
        }
    }

    /// Time for one server to read `bytes` spanning `kvs` KV pairs off disk
    /// and materialize them.
    pub fn server_read_time(&self, bytes: u64, kvs: u64) -> f64 {
        self.disk_seek + bytes as f64 / self.disk_bandwidth + kvs as f64 * self.cpu_per_kv
    }

    /// Cross-node transfer time for `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.net_bandwidth
    }

    /// Dollar cost of `read_units` KV reads.
    pub fn dollars(&self, read_units: u64) -> f64 {
        read_units as f64 * self.dollar_per_read_unit
    }

    // ------------------------------------------------------------------
    // Estimation helpers — the building blocks the cost-based planner
    // (`rj_core::planner`) composes into per-algorithm predictions. Each
    // helper models one physical access shape under this profile's
    // parameters; none of them touch a ledger — they predict, the
    // simulator counts.
    // ------------------------------------------------------------------

    /// Predicted wall-clock of `gets` independent point gets fetching
    /// `total_kvs` KV pairs / `total_bytes` payload in aggregate: one RPC
    /// round-trip and one seek per get, plus server materialization and
    /// the cross-node transfer of the results.
    ///
    /// This is the access shape of BFHM's bucket probes and reverse-row
    /// fetches and of DRJN's matrix-row gets.
    pub fn est_point_gets(&self, gets: u64, total_kvs: u64, total_bytes: u64) -> f64 {
        gets as f64 * (self.rpc_latency + self.disk_seek)
            + total_bytes as f64 / self.disk_bandwidth
            + total_kvs as f64 * self.cpu_per_kv
            + self.transfer_time(total_bytes)
    }

    /// Predicted wall-clock of a batched scan issuing `rpcs` scanner
    /// round-trips that stream `total_kvs` KV pairs / `total_bytes` to
    /// the coordinator — the access shape of ISL's score-list scans
    /// (`rpcs ≈ rows / caching`) and of any coordinator-side table scan.
    ///
    /// Delegates to [`CostModel::est_point_gets`]: the simulator charges
    /// a scan-batch RPC exactly like a get (round-trip latency plus one
    /// [`CostModel::server_read_time`] seek per served request), so the
    /// two shapes differ only in how many RPCs a workload needs, not in
    /// per-RPC cost. Kept as a named entry point so the per-shape models
    /// can diverge without touching planner call sites.
    pub fn est_batched_scan(&self, rpcs: u64, total_kvs: u64, total_bytes: u64) -> f64 {
        self.est_point_gets(rpcs, total_kvs, total_bytes)
    }

    /// Predicted wall-clock of one MapReduce job reading `input_kvs`
    /// records / `input_bytes` spread across the cluster, shuffling
    /// `shuffle_bytes`, and running `reduce_tasks` reducers: fixed job
    /// startup, one map wave per `map_slots_per_node × workers` batch of
    /// `map_tasks`, per-record CPU at Hadoop's serialization cost (divided
    /// across concurrent slots), disk streaming divided across nodes, the
    /// shuffle transfer, and the reduce waves.
    ///
    /// This is the dominant term of HIVE/PIG/IJLMR (and of DRJN's pull
    /// jobs): at laptop scale the `mr_job_startup` constant alone dwarfs
    /// every coordinator algorithm, which is exactly the paper's Fig. 7/8
    /// story.
    pub fn est_mr_job(
        &self,
        map_tasks: usize,
        input_kvs: u64,
        input_bytes: u64,
        shuffle_bytes: u64,
        reduce_tasks: usize,
    ) -> f64 {
        let workers = self.worker_nodes.max(1);
        let map_slots = (self.map_slots_per_node * workers).max(1);
        let reduce_slots = (self.reduce_slots_per_node * workers).max(1);
        let map_waves = map_tasks.max(1).div_ceil(map_slots);
        let reduce_waves = reduce_tasks.div_ceil(reduce_slots);
        self.mr_job_startup
            + (map_waves + reduce_waves) as f64 * self.mr_task_startup
            + input_kvs as f64 * self.mr_cpu_per_record / map_slots.min(map_tasks.max(1)) as f64
            + input_bytes as f64 / (self.disk_bandwidth * workers as f64)
            + self.transfer_time(shuffle_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_sensibly() {
        let ec2 = CostModel::ec2(8);
        let lab = CostModel::lab();
        assert!(ec2.rpc_latency > lab.rpc_latency);
        assert!(ec2.net_bandwidth < lab.net_bandwidth);
        assert!(ec2.mr_job_startup > lab.mr_job_startup);
        assert!(ec2.map_slots_per_node < lab.map_slots_per_node);
    }

    #[test]
    fn server_read_time_scales_with_volume() {
        let m = CostModel::ec2(8);
        let small = m.server_read_time(1024, 10);
        let large = m.server_read_time(10 * 1024 * 1024, 100_000);
        assert!(large > small);
        assert!(small >= m.disk_seek);
    }

    #[test]
    fn estimation_helpers_scale_sensibly() {
        let m = CostModel::ec2(8);
        // More gets cost more; batched beats pointwise for the same data.
        assert!(m.est_point_gets(100, 100, 10_000) > m.est_point_gets(10, 100, 10_000));
        assert!(m.est_batched_scan(2, 100, 10_000) < m.est_point_gets(100, 100, 10_000));
        // An MR job never beats its own startup constant.
        assert!(m.est_mr_job(8, 1000, 100_000, 10_000, 1) >= m.mr_job_startup);
        // The lab profile runs the same job faster.
        let lab = CostModel::lab();
        assert!(
            lab.est_mr_job(8, 1000, 100_000, 10_000, 1) < m.est_mr_job(8, 1000, 100_000, 10_000, 1)
        );
    }

    #[test]
    fn dollars_match_dynamodb_footnote() {
        // $0.01/hour per 50 units of read capacity.
        let m = CostModel::ec2(8);
        let per_unit = m.dollars(1);
        assert!((per_unit - 0.01 / 3600.0 / 50.0).abs() < 1e-15);
    }
}
