//! Cells (key-value pairs) and mutations.
//!
//! The paper's data model (§1): a key-value pair is the quadruplet
//! `{key, column name, column value, timestamp}`, where the column name is
//! a `(family, qualifier)` pair in BigTable/HBase terms. Deletes are
//! tombstones carrying the deletion timestamp — the store is append-only in
//! spirit, and the rank-join update machinery (§6) leans on timestamp
//! ordering to discern fresh from stale tuples.

use bytes::Bytes;

/// A single key-value pair as surfaced to clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Row key.
    pub row: Vec<u8>,
    /// Column family name.
    pub family: String,
    /// Column qualifier.
    pub qualifier: Vec<u8>,
    /// Write timestamp (logical; assigned by the cluster clock unless the
    /// mutation pinned one).
    pub timestamp: u64,
    /// Cell payload.
    pub value: Bytes,
}

impl Cell {
    /// Approximate on-disk/on-wire footprint of the cell in bytes: key +
    /// family + qualifier + timestamp + value. Used for disk-size accounting
    /// (index-size experiment) and network billing.
    pub fn weight(&self) -> u64 {
        (self.row.len() + self.family.len() + self.qualifier.len() + 8 + self.value.len()) as u64
    }
}

/// A single-column mutation applied to some row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert/overwrite one cell.
    Put {
        /// Column family.
        family: String,
        /// Column qualifier.
        qualifier: Vec<u8>,
        /// Payload.
        value: Bytes,
        /// Pinned timestamp; `None` draws from the cluster's logical clock.
        /// §6 pins the *same* timestamp on a base put and its index put so
        /// the two converge.
        timestamp: Option<u64>,
    },
    /// Tombstone one cell (versions at or before the tombstone's timestamp
    /// become invisible).
    Delete {
        /// Column family.
        family: String,
        /// Column qualifier.
        qualifier: Vec<u8>,
        /// Pinned timestamp; `None` draws from the cluster clock.
        timestamp: Option<u64>,
    },
}

impl Mutation {
    /// Convenience constructor for a clock-timestamped put.
    pub fn put(family: &str, qualifier: &[u8], value: impl Into<Bytes>) -> Self {
        Mutation::Put {
            family: family.to_owned(),
            qualifier: qualifier.to_vec(),
            value: value.into(),
            timestamp: None,
        }
    }

    /// Convenience constructor for a put with a pinned timestamp.
    pub fn put_at(family: &str, qualifier: &[u8], value: impl Into<Bytes>, ts: u64) -> Self {
        Mutation::Put {
            family: family.to_owned(),
            qualifier: qualifier.to_vec(),
            value: value.into(),
            timestamp: Some(ts),
        }
    }

    /// Convenience constructor for a clock-timestamped delete.
    pub fn delete(family: &str, qualifier: &[u8]) -> Self {
        Mutation::Delete {
            family: family.to_owned(),
            qualifier: qualifier.to_vec(),
            timestamp: None,
        }
    }

    /// Convenience constructor for a delete with a pinned timestamp.
    pub fn delete_at(family: &str, qualifier: &[u8], ts: u64) -> Self {
        Mutation::Delete {
            family: family.to_owned(),
            qualifier: qualifier.to_vec(),
            timestamp: Some(ts),
        }
    }

    /// The column family this mutation touches.
    pub fn family(&self) -> &str {
        match self {
            Mutation::Put { family, .. } | Mutation::Delete { family, .. } => family,
        }
    }

    /// Approximate wire size of the mutation.
    pub fn weight(&self, row_key_len: usize) -> u64 {
        match self {
            Mutation::Put {
                family,
                qualifier,
                value,
                ..
            } => (row_key_len + family.len() + qualifier.len() + 8 + value.len()) as u64,
            Mutation::Delete {
                family, qualifier, ..
            } => (row_key_len + family.len() + qualifier.len() + 8) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_weight_counts_all_parts() {
        let c = Cell {
            row: vec![0; 10],
            family: "cf".into(),
            qualifier: vec![0; 3],
            timestamp: 1,
            value: Bytes::from(vec![0; 5]),
        };
        assert_eq!(c.weight(), 10 + 2 + 3 + 8 + 5);
    }

    #[test]
    fn mutation_constructors() {
        let p = Mutation::put("cf", b"q", b"v".to_vec());
        assert_eq!(p.family(), "cf");
        assert!(matches!(
            p,
            Mutation::Put {
                timestamp: None,
                ..
            }
        ));
        let d = Mutation::delete_at("cf", b"q", 42);
        assert!(matches!(
            d,
            Mutation::Delete {
                timestamp: Some(42),
                ..
            }
        ));
    }

    #[test]
    fn delete_weight_has_no_value() {
        let p = Mutation::put("cf", b"q", vec![0u8; 100]).weight(4);
        let d = Mutation::delete("cf", b"q").weight(4);
        assert_eq!(p - d, 100);
    }
}
