//! Order-preserving byte encodings for row keys.
//!
//! NoSQL stores order rows by raw bytes and scan ascending only. Every
//! index layout in the paper leans on that: the ISL index needs ascending
//! bytes ⇔ *descending* score (§4.2.2 stores "negated" scores), the BFHM
//! needs `bucket|bitpos` composite keys (§5.1), and the IJLMR index keys
//! rows by join value (§4.1.1). The encodings here make those layouts safe:
//! `encode_x(a) < encode_x(b)` in byte order iff `a < b` (or `a > b` for the
//! descending variants).

/// Encodes a `u64` so byte order matches numeric order.
#[inline]
pub fn encode_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Inverse of [`encode_u64`].
#[inline]
pub fn decode_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(b.get(..8)?.try_into().ok()?))
}

/// Encodes a `u32` big-endian.
#[inline]
pub fn encode_u32(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// Inverse of [`encode_u32`].
#[inline]
pub fn decode_u32(b: &[u8]) -> Option<u32> {
    Some(u32::from_be_bytes(b.get(..4)?.try_into().ok()?))
}

/// Encodes an `f64` so byte order matches numeric order (total order:
/// `-inf < ... < -0.0 = 0.0 < ... < +inf`; NaN is rejected).
///
/// Standard trick: flip the sign bit for non-negatives, flip all bits for
/// negatives.
#[inline]
pub fn encode_f64(v: f64) -> [u8; 8] {
    assert!(!v.is_nan(), "NaN scores cannot be key-encoded");
    let bits = v.to_bits();
    let flipped = if bits >> 63 == 0 {
        bits | 0x8000_0000_0000_0000
    } else {
        !bits
    };
    flipped.to_be_bytes()
}

/// Inverse of [`encode_f64`].
#[inline]
pub fn decode_f64(b: &[u8]) -> Option<f64> {
    let flipped = u64::from_be_bytes(b.get(..8)?.try_into().ok()?);
    let bits = if flipped >> 63 == 1 {
        flipped & 0x7fff_ffff_ffff_ffff
    } else {
        !flipped
    };
    Some(f64::from_bits(bits))
}

/// Encodes a score so that **ascending byte order is descending score** —
/// the paper's "negated score values as the index keys" (§4.2.2, Fig. 3),
/// needed because HBase scans ascending only.
#[inline]
pub fn encode_score_desc(score: f64) -> [u8; 8] {
    let enc = encode_f64(score);
    let mut out = [0u8; 8];
    for (o, e) in out.iter_mut().zip(enc.iter()) {
        *o = !e;
    }
    out
}

/// Inverse of [`encode_score_desc`].
#[inline]
pub fn decode_score_desc(b: &[u8]) -> Option<f64> {
    let mut enc = [0u8; 8];
    for (e, &x) in enc.iter_mut().zip(b.get(..8)?) {
        *e = !x;
    }
    decode_f64(&enc)
}

/// Joins key parts with a `|` separator byte — the paper's
/// `bucketNo|bitPos` composite row keys (§5.1). Parts must not contain the
/// separator if prefix scans over the first part are needed; the fixed-width
/// numeric encodings above never do for the ranges we use, and we assert in
/// debug builds.
pub fn composite(parts: &[&[u8]]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| p.len()).sum::<usize>() + parts.len().saturating_sub(1);
    let mut out = Vec::with_capacity(total);
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            out.push(b'|');
        }
        out.extend_from_slice(p);
    }
    out
}

/// The smallest key strictly greater than every key with prefix `p`
/// (for prefix-bounded scans). Returns `None` when no such key exists
/// (prefix is all `0xff`).
pub fn prefix_end(p: &[u8]) -> Option<Vec<u8>> {
    let mut end = p.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_and_order() {
        let vals = [0u64, 1, 255, 256, u64::MAX / 2, u64::MAX];
        for w in vals.windows(2) {
            assert!(encode_u64(w[0]) < encode_u64(w[1]));
        }
        for v in vals {
            assert_eq!(decode_u64(&encode_u64(v)), Some(v));
        }
        assert_eq!(decode_u64(&[1, 2]), None);
    }

    #[test]
    fn f64_roundtrip_and_order() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-300,
            0.0,
            1e-300,
            0.5,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(encode_f64(w[0]) < encode_f64(w[1]), "{} !< {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(decode_f64(&encode_f64(v)), Some(v));
        }
    }

    #[test]
    fn desc_score_order_inverts() {
        // Higher score → smaller key: the ISL layout invariant.
        assert!(encode_score_desc(1.0) < encode_score_desc(0.93));
        assert!(encode_score_desc(0.93) < encode_score_desc(0.92));
        assert!(encode_score_desc(0.5) < encode_score_desc(0.0));
        for v in [0.0, 0.31, 0.5, 0.92, 1.0] {
            assert_eq!(decode_score_desc(&encode_score_desc(v)), Some(v));
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        encode_f64(f64::NAN);
    }

    #[test]
    fn composite_layout() {
        let k = composite(&[&encode_u32(3), &encode_u32(17)]);
        assert_eq!(k.len(), 9);
        assert_eq!(k[4], b'|');
    }

    #[test]
    fn composite_preserves_first_part_order() {
        let a = composite(&[&encode_u32(1), &encode_u32(999)]);
        let b = composite(&[&encode_u32(2), &encode_u32(0)]);
        assert!(a < b);
    }

    #[test]
    fn prefix_end_bounds_prefix_scans() {
        let p = b"abc".to_vec();
        let end = prefix_end(&p).unwrap();
        assert_eq!(end, b"abd".to_vec());
        assert!(p.as_slice() < end.as_slice());
        assert!(b"abc\xff\xff".as_slice() < end.as_slice());
        assert_eq!(prefix_end(&[0xff, 0xff]), None);
        assert_eq!(prefix_end(&[0x01, 0xff]), Some(vec![0x02]));
    }
}
