//! Materialized row views returned by gets and scans.

use bytes::Bytes;

use crate::cell::Cell;

/// A row as returned to a client: the row key plus all visible cells,
/// ordered by `(family, qualifier)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowResult {
    /// Row key.
    pub key: Vec<u8>,
    /// Visible cells (latest visible version per column), sorted by
    /// `(family, qualifier)`.
    pub cells: Vec<Cell>,
}

impl RowResult {
    /// The latest visible value of `family:qualifier`, if any.
    pub fn value(&self, family: &str, qualifier: &[u8]) -> Option<&Bytes> {
        self.cells
            .iter()
            .find(|c| c.family == family && c.qualifier == qualifier)
            .map(|c| &c.value)
    }

    /// All cells in one family.
    pub fn family_cells<'a>(&'a self, family: &'a str) -> impl Iterator<Item = &'a Cell> + 'a {
        self.cells.iter().filter(move |c| c.family == family)
    }

    /// Total wire weight of the row (sum of cell weights).
    pub fn weight(&self) -> u64 {
        self.cells.iter().map(Cell::weight).sum()
    }

    /// Number of cells (KV pairs) in the row.
    pub fn kv_count(&self) -> u64 {
        self.cells.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(family: &str, q: &[u8], v: &[u8]) -> Cell {
        Cell {
            row: b"r".to_vec(),
            family: family.into(),
            qualifier: q.to_vec(),
            timestamp: 1,
            value: Bytes::copy_from_slice(v),
        }
    }

    #[test]
    fn value_lookup() {
        let row = RowResult {
            key: b"r".to_vec(),
            cells: vec![cell("a", b"q1", b"v1"), cell("b", b"q1", b"v2")],
        };
        assert_eq!(row.value("a", b"q1").unwrap().as_ref(), b"v1");
        assert_eq!(row.value("b", b"q1").unwrap().as_ref(), b"v2");
        assert!(row.value("a", b"q2").is_none());
        assert!(row.value("c", b"q1").is_none());
    }

    #[test]
    fn family_cells_filters() {
        let row = RowResult {
            key: b"r".to_vec(),
            cells: vec![
                cell("a", b"q1", b"x"),
                cell("a", b"q2", b"y"),
                cell("b", b"q1", b"z"),
            ],
        };
        assert_eq!(row.family_cells("a").count(), 2);
        assert_eq!(row.family_cells("b").count(), 1);
        assert_eq!(row.kv_count(), 3);
    }
}
