//! Clients: the only way queries touch data, and where costs are charged.
//!
//! A client is "located" either outside the cluster (the coordinator /
//! querying node — every access is remote) or on a node (a MapReduce task —
//! accesses to that node's regions are local: no network bytes, negligible
//! RPC latency). Every operation updates the cluster's metric ledger
//! (RPCs, KV read units, cross-node bytes) and accumulates modelled time in
//! the client's own elapsed-time cell; coordinator clients also charge that
//! time to the global simulated clock.

use std::cell::Cell as StdCell;
use std::sync::Arc;

use crate::cell::Mutation;
use crate::cluster::Shared;
use crate::error::Result;
use crate::metrics::Metrics;
use crate::region::ReadCost;
use crate::row::RowResult;
use crate::scan::Scan;

/// Fraction of the remote RPC latency charged for a node-local call.
const LOCAL_CALL_FACTOR: f64 = 0.05;

/// A client handle. Not `Sync`: create one per logical actor (coordinator,
/// MR task, parallel-round worker).
pub struct Client {
    shared: Arc<Shared>,
    /// The ledger this client charges (the creating handle's ledger).
    metrics: Arc<Metrics>,
    /// `None` = external coordinator; `Some(n)` = pinned to node `n`.
    location: Option<usize>,
    /// Modelled seconds spent in this client's operations.
    elapsed: StdCell<f64>,
    /// The node-serialized share of `elapsed`: server disk/CPU work and
    /// network transfer, excluding RPC round-trip latency (which overlaps
    /// across concurrent in-flight requests).
    node_busy: StdCell<f64>,
    /// Whether ops immediately advance the cluster's simulated clock.
    charge_global_time: bool,
}

impl Client {
    pub(crate) fn new(
        shared: Arc<Shared>,
        metrics: Arc<Metrics>,
        location: Option<usize>,
        charge_global_time: bool,
    ) -> Self {
        Client {
            shared,
            metrics,
            location,
            elapsed: StdCell::new(0.0),
            node_busy: StdCell::new(0.0),
            charge_global_time,
        }
    }

    /// Where this client runs (`None` = outside the cluster).
    pub fn location(&self) -> Option<usize> {
        self.location
    }

    /// Modelled seconds consumed by this client so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed.get()
    }

    /// The node-serialized share of [`Client::elapsed_seconds`]: server
    /// read/write work plus network transfer, excluding RPC round-trip
    /// latency. Parallel rounds serialize this share per node lane.
    pub fn node_busy_seconds(&self) -> f64 {
        self.node_busy.get()
    }

    /// Resets the elapsed-time accumulators (MR engine / round-worker reuse).
    pub fn reset_elapsed(&self) {
        self.elapsed.set(0.0);
        self.node_busy.set(0.0);
    }

    fn is_local(&self, node: usize) -> bool {
        self.location == Some(node)
    }

    fn charge(&self, node: usize, server_time: f64, shipped_bytes: u64) {
        let m = &self.shared.cost;
        let local = self.is_local(node);
        let rpc = if local {
            m.rpc_latency * LOCAL_CALL_FACTOR
        } else {
            m.rpc_latency
        };
        let transfer = if local {
            0.0
        } else {
            m.transfer_time(shipped_bytes)
        };
        let total = rpc + server_time + transfer;
        self.elapsed.set(self.elapsed.get() + total);
        self.node_busy
            .set(self.node_busy.get() + server_time + transfer);
        self.metrics.add_rpc();
        if !local {
            self.metrics.add_network_bytes(shipped_bytes);
        }
        if self.charge_global_time {
            self.metrics.add_sim_seconds(total);
        }
    }

    fn charge_read(&self, node: usize, cost: &ReadCost) {
        self.metrics.add_kv_reads(cost.kvs_scanned);
        let server_time = self
            .shared
            .cost
            .server_read_time(cost.bytes_scanned, cost.kvs_scanned);
        self.charge(node, server_time, cost.bytes_returned);
    }

    /// Applies one mutation to a row.
    pub fn put(&self, table: &str, row: &[u8], mutation: Mutation) -> Result<()> {
        self.mutate_row(table, row, vec![mutation])
    }

    /// Tombstones one column of a row.
    pub fn delete(&self, table: &str, row: &[u8], family: &str, qualifier: &[u8]) -> Result<()> {
        self.mutate_row(table, row, vec![Mutation::delete(family, qualifier)])
    }

    /// Applies a batch of mutations to one row **atomically** (HBase
    /// row-level atomicity — the §6 update algorithms depend on it).
    pub fn mutate_row(&self, table: &str, row: &[u8], mutations: Vec<Mutation>) -> Result<()> {
        let t = self.lookup(table)?;
        let ts = self.shared.clock_next();
        let (bytes, node) = t.mutate_row(row, &mutations, ts)?;
        self.metrics.add_kv_writes(mutations.len() as u64);
        // Writes pay an append (sequential) disk cost plus shipping.
        let server_time = bytes as f64 / self.shared.cost.disk_bandwidth;
        self.charge(node, server_time, bytes);
        Ok(())
    }

    /// Point read of a full row.
    pub fn get(&self, table: &str, row: &[u8]) -> Result<Option<RowResult>> {
        self.get_with_families(table, row, None)
    }

    /// Point read restricted to certain families.
    pub fn get_with_families(
        &self,
        table: &str,
        row: &[u8],
        families: Option<&[String]>,
    ) -> Result<Option<RowResult>> {
        let t = self.lookup(table)?;
        let (result, cost, node) = t.get(row, families)?;
        self.charge_read(node, &cost);
        Ok(result)
    }

    /// Opens a scanner. Rows stream back in ascending key order, fetched
    /// `caching` rows per RPC.
    pub fn scan(&self, table: &str, scan: Scan) -> Result<Scanner<'_>> {
        let t = self.lookup(table)?;
        // Validate family projection eagerly so errors surface here.
        if let Some(fams) = &scan.families {
            for f in fams {
                t.family_index(f)?;
            }
        }
        Ok(Scanner {
            client: self,
            table: t,
            next_key: scan.start.clone().unwrap_or_default(),
            done: false,
            returned: 0,
            buffer: std::collections::VecDeque::new(),
            spec: scan,
        })
    }

    /// Reattaches a scanner detached with [`Scanner::into_state`] to this
    /// client. The resumed scanner continues exactly where the original
    /// left off, including rows already fetched into its buffer — parallel
    /// warm-up rounds prefetch on worker clients and hand the state to the
    /// coordinator without re-reading (or re-billing) anything.
    pub fn resume_scan(&self, state: ScannerState) -> Result<Scanner<'_>> {
        let table = self.lookup(&state.table)?;
        Ok(Scanner {
            client: self,
            table,
            spec: state.spec,
            next_key: state.next_key,
            done: state.done,
            returned: state.returned,
            buffer: state.buffer,
        })
    }

    fn lookup(&self, table: &str) -> Result<Arc<crate::table::Table>> {
        self.shared
            .tables
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| crate::error::StoreError::TableNotFound(table.to_owned()))
    }
}

impl Shared {
    /// Mirror of `Cluster::next_ts` without needing a `Cluster` handle.
    fn clock_next(&self) -> u64 {
        use std::sync::atomic::Ordering;
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

/// A streaming scanner over one table.
pub struct Scanner<'c> {
    client: &'c Client,
    table: Arc<crate::table::Table>,
    spec: Scan,
    next_key: Vec<u8>,
    done: bool,
    returned: usize,
    buffer: std::collections::VecDeque<RowResult>,
}

/// A detached scanner position: everything needed to resume a scan on
/// another client via [`Client::resume_scan`], including already-fetched
/// (and already-billed) buffered rows. Cloning duplicates the position
/// *and* the buffered rows — both clones resume without re-billing them.
#[derive(Clone)]
pub struct ScannerState {
    table: String,
    spec: Scan,
    next_key: Vec<u8>,
    done: bool,
    returned: usize,
    buffer: std::collections::VecDeque<RowResult>,
}

impl ScannerState {
    /// Whether fetched-but-unconsumed rows are buffered.
    pub fn has_buffered_rows(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Whether the underlying scan has reached its end (no further RPCs
    /// would be issued; buffered rows may remain).
    pub fn is_exhausted(&self) -> bool {
        self.done
    }

    /// The key the next batch RPC would start from, or `None` if the scan
    /// is exhausted.
    pub fn resume_key(&self) -> Option<&[u8]> {
        (!self.done).then_some(self.next_key.as_slice())
    }

    /// Removes and returns the buffered (already billed) rows.
    pub fn take_buffered_rows(&mut self) -> Vec<RowResult> {
        std::mem::take(&mut self.buffer).into()
    }
}

impl Scanner<'_> {
    /// Fetches until a row is buffered or the scan is exhausted — exactly
    /// the batch RPCs the first [`Iterator::next`] call would trigger
    /// (including walking empty regions). Lets a parallel round issue the
    /// first demand of several scanners concurrently.
    pub fn prefetch(&mut self) {
        while self.buffer.is_empty() && !self.done {
            self.fetch_batch();
        }
    }

    /// Detaches this scanner's position so it can cross a thread boundary
    /// and be resumed with [`Client::resume_scan`].
    pub fn into_state(self) -> ScannerState {
        ScannerState {
            table: self.table.name().to_owned(),
            spec: self.spec,
            next_key: self.next_key,
            done: self.done,
            returned: self.returned,
            buffer: self.buffer,
        }
    }

    fn fetch_batch(&mut self) {
        if self.done {
            return;
        }
        let batch = match self.table.scan_batch(
            &self.next_key,
            self.spec.stop.as_deref(),
            self.spec.families.as_deref(),
            self.spec.filter.as_deref(),
            self.spec.effective_caching(),
        ) {
            Ok(b) => b,
            Err(_) => {
                self.done = true;
                return;
            }
        };
        self.client.charge_read(batch.node, &batch.cost);
        self.buffer.extend(batch.rows);
        match batch.resume_key {
            Some(k) => self.next_key = k,
            None => self.done = true,
        }
    }
}

impl Iterator for Scanner<'_> {
    type Item = RowResult;

    fn next(&mut self) -> Option<RowResult> {
        if let Some(limit) = self.spec.limit {
            if self.returned >= limit {
                return None;
            }
        }
        while self.buffer.is_empty() && !self.done {
            self.fetch_batch();
        }
        let row = self.buffer.pop_front()?;
        self.returned += 1;
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::costmodel::CostModel;
    use crate::keys;

    fn small_cluster() -> Cluster {
        let c = Cluster::new(2, CostModel::test());
        c.create_table("t", &["cf", "idx"]).unwrap();
        c
    }

    #[test]
    fn put_get_delete_cycle() {
        let c = small_cluster();
        let cl = c.client();
        cl.put("t", b"r", Mutation::put("cf", b"q", b"v".to_vec()))
            .unwrap();
        assert!(cl.get("t", b"r").unwrap().is_some());
        cl.delete("t", b"r", "cf", b"q").unwrap();
        assert!(cl.get("t", b"r").unwrap().is_none());
    }

    #[test]
    fn scan_streams_in_key_order() {
        let c = small_cluster();
        let cl = c.client();
        for i in [5u64, 1, 9, 3, 7] {
            cl.put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"q", i.to_string().into_bytes()),
            )
            .unwrap();
        }
        let got: Vec<u64> = cl
            .scan("t", Scan::new().caching(2))
            .unwrap()
            .map(|r| keys::decode_u64(&r.key).unwrap())
            .collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn scan_limit_short_circuits() {
        let c = small_cluster();
        let cl = c.client();
        for i in 0..20u64 {
            cl.put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"q", b"v".to_vec()),
            )
            .unwrap();
        }
        let before = c.metrics().snapshot();
        let got: Vec<_> = cl
            .scan("t", Scan::new().caching(5).limit(5))
            .unwrap()
            .collect();
        assert_eq!(got.len(), 5);
        let delta = c.metrics().snapshot().delta_since(&before);
        // With caching=5 and limit=5, one batch suffices.
        assert_eq!(delta.kv_reads, 5, "limit should avoid scanning everything");
    }

    #[test]
    fn metrics_account_reads_and_network() {
        let c = small_cluster();
        let cl = c.client();
        cl.put("t", b"r1", Mutation::put("cf", b"q", vec![0u8; 64]))
            .unwrap();
        let before = c.metrics().snapshot();
        cl.get("t", b"r1").unwrap();
        let d = c.metrics().snapshot().delta_since(&before);
        assert_eq!(d.kv_reads, 1);
        assert!(d.network_bytes >= 64, "coordinator reads are remote");
        assert_eq!(d.rpc_calls, 1);
        assert!(d.sim_seconds > 0.0);
    }

    #[test]
    fn local_task_client_ships_no_bytes() {
        let c = small_cluster();
        let coordinator = c.client();
        // Find which node hosts the (single-region) table.
        let node = c.table("t").unwrap().region_infos()[0].node;
        coordinator
            .put("t", b"r1", Mutation::put("cf", b"q", vec![0u8; 64]))
            .unwrap();

        let local = c.task_client(node);
        let before = c.metrics().snapshot();
        local.get("t", b"r1").unwrap();
        let d = c.metrics().snapshot().delta_since(&before);
        assert_eq!(d.network_bytes, 0, "local read crosses no node boundary");
        assert_eq!(d.kv_reads, 1, "but is still billed as a read unit");
        assert_eq!(d.sim_seconds, 0.0, "task clients do not charge the clock");
        assert!(local.elapsed_seconds() > 0.0);

        let other = c.task_client((node + 1) % 2);
        let before = c.metrics().snapshot();
        other.get("t", b"r1").unwrap();
        let d = c.metrics().snapshot().delta_since(&before);
        assert!(d.network_bytes > 0, "cross-node read ships bytes");
    }

    #[test]
    fn atomic_mutate_row_applies_all() {
        let c = small_cluster();
        let cl = c.client();
        cl.mutate_row(
            "t",
            b"r",
            vec![
                Mutation::put("cf", b"q1", b"a".to_vec()),
                Mutation::put("idx", b"q2", b"b".to_vec()),
            ],
        )
        .unwrap();
        let row = cl.get("t", b"r").unwrap().unwrap();
        assert!(row.value("cf", b"q1").is_some());
        assert!(row.value("idx", b"q2").is_some());
    }

    #[test]
    fn scan_with_filter_bills_scanned_not_shipped() {
        use crate::filter::KeyPrefix;
        let c = small_cluster();
        let cl = c.client();
        for i in 0..10u64 {
            cl.put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"q", vec![0u8; 32]),
            )
            .unwrap();
        }
        let before = c.metrics().snapshot();
        let rows: Vec<_> = cl
            .scan(
                "t",
                Scan::new().filter(std::sync::Arc::new(KeyPrefix(keys::encode_u64(3).to_vec()))),
            )
            .unwrap()
            .collect();
        assert_eq!(rows.len(), 1);
        let d = c.metrics().snapshot().delta_since(&before);
        assert_eq!(d.kv_reads, 10, "every row read at the server is billed");
        assert!(
            d.network_bytes < 10 * 32,
            "only the matching row is shipped"
        );
    }

    #[test]
    fn scan_unknown_family_errors_eagerly() {
        let c = small_cluster();
        let cl = c.client();
        assert!(cl.scan("t", Scan::new().families(&["nope"])).is_err());
    }
}
