//! Tables: named, schema'd (column families), split into regions.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

use crate::cell::Mutation;
use crate::error::{Result, StoreError};
use crate::filter::ServerFilter;
use crate::region::{ReadCost, Region};
use crate::row::RowResult;

/// Metadata about one region, as exposed to the MapReduce engine for
/// locality-aware task placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionInfo {
    /// Inclusive start key (empty = table start).
    pub start: Vec<u8>,
    /// Exclusive end key (`None` = table end).
    pub end: Option<Vec<u8>>,
    /// Hosting node.
    pub node: usize,
    /// Row count at snapshot time.
    pub rows: usize,
    /// Live KV count at snapshot time.
    pub kvs: u64,
    /// Approximate stored bytes at snapshot time.
    pub bytes: u64,
}

/// Output of one table-level scan step (possibly crossing a region edge).
pub struct TableScanBatch {
    /// Rows returned.
    pub rows: Vec<RowResult>,
    /// Server-side accounting.
    pub cost: ReadCost,
    /// Node that served the batch.
    pub node: usize,
    /// Where to resume, or `None` when the scan is complete.
    pub resume_key: Option<Vec<u8>>,
}

/// An ordered, sharded collection of rows.
pub struct Table {
    name: String,
    families: Vec<String>,
    regions: RwLock<Vec<RwLock<Region>>>,
    /// Rows per region before an auto-split triggers.
    split_threshold: AtomicUsize,
    num_nodes: usize,
    /// Round-robin cursor for placing split-off regions.
    next_node: AtomicUsize,
}

impl Table {
    pub(crate) fn new(
        name: &str,
        families: &[&str],
        split_keys: &[Vec<u8>],
        num_nodes: usize,
    ) -> Self {
        let mut starts: Vec<Vec<u8>> = Vec::with_capacity(split_keys.len() + 1);
        starts.push(Vec::new());
        let mut sorted: Vec<Vec<u8>> = split_keys.to_vec();
        sorted.sort();
        sorted.dedup();
        starts.extend(sorted.into_iter().filter(|k| !k.is_empty()));
        let regions = starts
            .into_iter()
            .enumerate()
            .map(|(i, start)| RwLock::new(Region::new(start, i % num_nodes)))
            .collect();
        Table {
            name: name.to_owned(),
            families: families.iter().map(|f| (*f).to_owned()).collect(),
            regions: RwLock::new(regions),
            split_threshold: AtomicUsize::new(1 << 20),
            num_nodes,
            next_node: AtomicUsize::new(split_keys.len() + 1),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column family names, in schema order.
    pub fn families(&self) -> &[String] {
        &self.families
    }

    /// Rows-per-region limit beyond which regions auto-split (HBase's
    /// size-based split policy, keyed on rows here). Builders that know
    /// their key distribution should pre-split instead for determinism.
    pub fn set_split_threshold(&self, rows: usize) {
        self.split_threshold.store(rows.max(2), Ordering::Relaxed);
    }

    /// Schema index of a family.
    pub fn family_index(&self, family: &str) -> Result<usize> {
        self.families
            .iter()
            .position(|f| f == family)
            .ok_or_else(|| StoreError::FamilyNotFound {
                table: self.name.clone(),
                family: family.to_owned(),
            })
    }

    fn resolve_families(&self, names: Option<&[String]>) -> Result<Option<Vec<usize>>> {
        match names {
            None => Ok(None),
            Some(ns) => {
                let mut ids = ns
                    .iter()
                    .map(|n| self.family_index(n))
                    .collect::<Result<Vec<_>>>()?;
                // Dedup: projections often name the same family for several
                // columns (join + score in one family); reading it twice
                // would double both results and billing.
                ids.sort_unstable();
                ids.dedup();
                Ok(Some(ids))
            }
        }
    }

    /// Index of the region serving `key`.
    fn region_index(regions: &[RwLock<Region>], key: &[u8]) -> usize {
        // Regions are sorted by start key; find the last start <= key.
        let mut lo = 0usize;
        let mut hi = regions.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if regions[mid].read().start_key() <= key {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Node currently serving `key` — parallel rounds group per-lane time
    /// by serving node (the paper's §5 per-node round accounting).
    pub fn serving_node(&self, key: &[u8]) -> usize {
        let regions = self.regions.read();
        let node = regions[Self::region_index(&regions, key)].read().node();
        node
    }

    /// Region metadata snapshot, in key order.
    pub fn region_infos(&self) -> Vec<RegionInfo> {
        let regions = self.regions.read();
        let mut infos = Vec::with_capacity(regions.len());
        for (i, r) in regions.iter().enumerate() {
            let r = r.read();
            let end = regions.get(i + 1).map(|n| n.read().start_key().to_vec());
            infos.push(RegionInfo {
                start: r.start_key().to_vec(),
                end,
                node: r.node(),
                rows: r.row_count(),
                kvs: r.kv_count(),
                bytes: r.byte_size(),
            });
        }
        infos
    }

    /// Total approximate stored bytes (the index-size experiment metric).
    pub fn disk_size(&self) -> u64 {
        self.regions
            .read()
            .iter()
            .map(|r| r.read().byte_size())
            .sum()
    }

    /// Total live KV count.
    pub fn kv_count(&self) -> u64 {
        self.regions
            .read()
            .iter()
            .map(|r| r.read().kv_count())
            .sum()
    }

    /// Total row count.
    pub fn row_count(&self) -> usize {
        self.regions
            .read()
            .iter()
            .map(|r| r.read().row_count())
            .sum()
    }

    /// Applies mutations to one row atomically (HBase row-level atomicity,
    /// §6). Returns `(bytes written, serving node)`.
    pub(crate) fn mutate_row(
        &self,
        key: &[u8],
        muts: &[Mutation],
        default_ts: u64,
    ) -> Result<(u64, usize)> {
        if key.is_empty() {
            return Err(StoreError::InvalidArgument("empty row key"));
        }
        let resolved: Vec<(usize, &Mutation)> = muts
            .iter()
            .map(|m| self.family_index(m.family()).map(|i| (i, m)))
            .collect::<Result<Vec<_>>>()?;
        let (bytes, node, needs_split) = {
            let regions = self.regions.read();
            let idx = Self::region_index(&regions, key);
            let mut region = regions[idx].write();
            let bytes = region.mutate_row(key, &resolved, default_ts, self.families.len());
            let needs_split = region.row_count() > self.split_threshold.load(Ordering::Relaxed);
            (bytes, region.node(), needs_split)
        };
        if needs_split {
            self.try_split(key);
        }
        Ok((bytes, node))
    }

    /// Re-shards the table into up to `pieces` regions holding roughly
    /// equal row counts, splitting at row-count quantiles and placing
    /// split-off regions round-robin across nodes. Existing boundaries
    /// are kept (the operation only splits, never merges).
    ///
    /// An admin operation: no cost is charged. On a table whose layout
    /// hasn't been perturbed by order-dependent auto-splits (e.g. a
    /// scratch table with auto-splitting disabled via a huge
    /// [`Table::set_split_threshold`]), the resulting layout depends only
    /// on the table's content — not on the write order that produced it —
    /// so builders can obtain a deterministic balanced layout after a
    /// parallel load.
    pub fn rebalance(&self, pieces: usize) {
        let pieces = pieces.max(1);
        let mut regions = self.regions.write();
        // Locate the quantile keys without materializing the key set:
        // walk per-region row counts to the region holding each global
        // quantile index, then pick its nth key.
        let counts: Vec<usize> = regions.iter().map(|r| r.read().row_count()).collect();
        let total: usize = counts.iter().sum();
        if total < 2 {
            return;
        }
        let mut split_keys: Vec<Vec<u8>> = Vec::with_capacity(pieces - 1);
        for i in 1..pieces {
            let mut offset = i * total / pieces;
            let mut idx = 0usize;
            while offset >= counts[idx] {
                offset -= counts[idx];
                idx += 1;
            }
            if let Some(key) = regions[idx].read().row_keys().nth(offset) {
                split_keys.push(key.clone());
            }
        }
        split_keys.sort();
        split_keys.dedup();
        for split_key in split_keys {
            let idx = Self::region_index(&regions, &split_key);
            if regions[idx].read().start_key() == split_key.as_slice() {
                continue; // already a boundary
            }
            let node = self.next_node.fetch_add(1, Ordering::Relaxed) % self.num_nodes;
            let new_region = regions[idx].write().split_off(&split_key, node);
            regions.insert(idx + 1, RwLock::new(new_region));
        }
    }

    /// Splits the region containing `key` at its median, if still oversized.
    fn try_split(&self, key: &[u8]) {
        let mut regions = self.regions.write();
        let idx = Self::region_index(&regions, key);
        let split = {
            let region = regions[idx].read();
            if region.row_count() <= self.split_threshold.load(Ordering::Relaxed) {
                return; // lost the race; someone else split already
            }
            region.split_point()
        };
        let Some(split_key) = split else { return };
        let node = self.next_node.fetch_add(1, Ordering::Relaxed) % self.num_nodes;
        let new_region = regions[idx].write().split_off(&split_key, node);
        regions.insert(idx + 1, RwLock::new(new_region));
    }

    /// Point read. Returns `(row, cost, serving node)`.
    pub(crate) fn get(
        &self,
        key: &[u8],
        families: Option<&[String]>,
    ) -> Result<(Option<RowResult>, ReadCost, usize)> {
        let fam_ids = self.resolve_families(families)?;
        let regions = self.regions.read();
        let idx = Self::region_index(&regions, key);
        let region = regions[idx].read();
        let (row, cost) = region.get(key, &self.families, fam_ids.as_deref());
        Ok((row, cost, region.node()))
    }

    /// One scan step: reads up to `max_rows` rows from the region serving
    /// `start`, bounded by `stop`, and reports where to resume (which may be
    /// the start of the next region).
    pub(crate) fn scan_batch(
        &self,
        start: &[u8],
        stop: Option<&[u8]>,
        families: Option<&[String]>,
        filter: Option<&dyn ServerFilter>,
        max_rows: usize,
    ) -> Result<TableScanBatch> {
        if max_rows == 0 {
            return Err(StoreError::InvalidArgument("scan batch size must be > 0"));
        }
        let fam_ids = self.resolve_families(families)?;
        let regions = self.regions.read();
        let idx = Self::region_index(&regions, start);
        let next_region_start = regions.get(idx + 1).map(|r| r.read().start_key().to_vec());
        let region = regions[idx].read();

        // Bound the region scan by both the caller's stop key and the
        // region's end.
        let effective_stop: Option<&[u8]> = match (&next_region_start, stop) {
            (Some(edge), Some(s)) => Some(if edge.as_slice() < s { edge } else { s }),
            (Some(edge), None) => Some(edge.as_slice()),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        };
        let batch = region.scan_batch(
            start,
            effective_stop,
            &self.families,
            fam_ids.as_deref(),
            filter,
            max_rows,
        );
        let node = region.node();
        // If the region is exhausted, continue into the next region (unless
        // the caller's stop bound ends the scan first).
        let resume_key = match batch.resume_key {
            Some(k) => Some(k),
            None => match next_region_start {
                Some(edge) if stop.is_none_or(|s| edge.as_slice() < s) => Some(edge),
                _ => None,
            },
        };
        Ok(TableScanBatch {
            rows: batch.rows,
            cost: batch.cost,
            node,
            resume_key,
        })
    }

    #[cfg(test)]
    pub(crate) fn region_count(&self) -> usize {
        self.regions.read().len()
    }

    /// Iterates all visible rows without any cost accounting — test and
    /// verification use only (the "omniscient" view no real client has).
    pub fn debug_all_rows(&self) -> Vec<RowResult> {
        let regions = self.regions.read();
        let mut out = Vec::new();
        for r in regions.iter() {
            let r = r.read();
            let batch = r.scan_batch(
                r.start_key().to_vec().as_slice(),
                None,
                &self.families,
                None,
                None,
                usize::MAX,
            );
            out.extend(batch.rows);
        }
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out.dedup_by(|a, b| a.key == b.key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new("t", &["cf"], &[], 3)
    }

    #[test]
    fn mutate_and_get_roundtrip() {
        let t = table();
        let m = Mutation::put("cf", b"q", b"v".to_vec());
        t.mutate_row(b"row", &[m], 7).unwrap();
        let (row, _, _) = t.get(b"row", None).unwrap();
        assert_eq!(row.unwrap().value("cf", b"q").unwrap().as_ref(), b"v");
    }

    #[test]
    fn unknown_family_rejected() {
        let t = table();
        let m = Mutation::put("nope", b"q", b"v".to_vec());
        assert!(matches!(
            t.mutate_row(b"row", &[m], 1),
            Err(StoreError::FamilyNotFound { .. })
        ));
    }

    #[test]
    fn empty_key_rejected() {
        let t = table();
        let m = Mutation::put("cf", b"q", b"v".to_vec());
        assert!(matches!(
            t.mutate_row(b"", &[m], 1),
            Err(StoreError::InvalidArgument(_))
        ));
    }

    #[test]
    fn presplit_regions_route_by_key() {
        let t = Table::new("t", &["cf"], &[b"m".to_vec()], 2);
        assert_eq!(t.region_infos().len(), 2);
        t.mutate_row(b"a", &[Mutation::put("cf", b"q", b"1".to_vec())], 1)
            .unwrap();
        t.mutate_row(b"z", &[Mutation::put("cf", b"q", b"2".to_vec())], 2)
            .unwrap();
        let infos = t.region_infos();
        assert_eq!(infos[0].rows, 1);
        assert_eq!(infos[1].rows, 1);
        assert_eq!(infos[0].end.as_deref(), Some(b"m".as_slice()));
        assert_eq!(infos[1].end, None);
        // Round-robin placement across nodes.
        assert_ne!(infos[0].node, infos[1].node);
    }

    #[test]
    fn auto_split_triggers_and_preserves_data() {
        let t = table();
        t.set_split_threshold(10);
        for i in 0..40u32 {
            t.mutate_row(
                &i.to_be_bytes(),
                &[Mutation::put("cf", b"q", b"v".to_vec())],
                u64::from(i),
            )
            .unwrap();
        }
        assert!(t.region_count() > 1, "expected auto-splits");
        assert_eq!(t.row_count(), 40);
        // Every row still reachable.
        for i in 0..40u32 {
            let (row, _, _) = t.get(&i.to_be_bytes(), None).unwrap();
            assert!(row.is_some(), "row {i} lost after split");
        }
    }

    #[test]
    fn rebalance_splits_evenly_and_keeps_data() {
        let t = table();
        for i in 0..40u32 {
            t.mutate_row(
                &i.to_be_bytes(),
                &[Mutation::put("cf", b"q", b"v".to_vec())],
                u64::from(i),
            )
            .unwrap();
        }
        assert_eq!(t.region_count(), 1);
        t.rebalance(4);
        assert_eq!(t.region_count(), 4);
        let infos = t.region_infos();
        assert!(infos.iter().all(|r| r.rows == 10), "{infos:?}");
        assert_eq!(t.row_count(), 40);
        for i in 0..40u32 {
            let (row, _, _) = t.get(&i.to_be_bytes(), None).unwrap();
            assert!(row.is_some(), "row {i} lost after rebalance");
        }
        // Idempotent: quantile boundaries already exist.
        t.rebalance(4);
        assert_eq!(t.region_count(), 4);
        // Degenerate inputs are no-ops.
        let empty = table();
        empty.rebalance(4);
        assert_eq!(empty.region_count(), 1);
    }

    #[test]
    fn scan_crosses_region_boundaries() {
        let t = Table::new("t", &["cf"], &[vec![5u8]], 2);
        for i in 0..10u8 {
            t.mutate_row(&[i], &[Mutation::put("cf", b"q", vec![i])], 1)
                .unwrap();
        }
        // First batch in region 0 exhausts it; resume key is region 1 start.
        let b1 = t.scan_batch(&[], None, None, None, 100).unwrap();
        assert_eq!(b1.rows.len(), 5);
        assert_eq!(b1.resume_key, Some(vec![5u8]));
        let b2 = t.scan_batch(&[5], None, None, None, 100).unwrap();
        assert_eq!(b2.rows.len(), 5);
        assert_eq!(b2.resume_key, None);
    }

    #[test]
    fn scan_stop_bound_ends_before_next_region() {
        let t = Table::new("t", &["cf"], &[vec![5u8]], 2);
        for i in 0..10u8 {
            t.mutate_row(&[i], &[Mutation::put("cf", b"q", vec![i])], 1)
                .unwrap();
        }
        let b = t.scan_batch(&[], Some(&[4u8]), None, None, 100).unwrap();
        assert_eq!(b.rows.len(), 4);
        assert_eq!(b.resume_key, None, "stop before region edge ends scan");
    }

    #[test]
    fn duplicate_family_projection_reads_once() {
        let t = table();
        t.mutate_row(b"k", &[Mutation::put("cf", b"q", b"v".to_vec())], 1)
            .unwrap();
        let fams = vec!["cf".to_string(), "cf".to_string()];
        let (row, cost, _) = t.get(b"k", Some(&fams)).unwrap();
        assert_eq!(row.unwrap().cells.len(), 1, "no duplicate cells");
        assert_eq!(cost.kvs_scanned, 1, "no duplicate billing");
    }

    #[test]
    fn disk_size_grows_with_writes() {
        let t = table();
        let before = t.disk_size();
        t.mutate_row(b"k", &[Mutation::put("cf", b"q", vec![0u8; 100])], 1)
            .unwrap();
        assert!(t.disk_size() > before + 100);
    }

    #[test]
    fn debug_all_rows_sees_everything() {
        let t = Table::new("t", &["cf"], &[vec![3u8]], 2);
        for i in 0..6u8 {
            t.mutate_row(&[i], &[Mutation::put("cf", b"q", vec![i])], 1)
                .unwrap();
        }
        assert_eq!(t.debug_all_rows().len(), 6);
    }
}
