//! Property tests for the store: key-encoding order preservation and
//! scan/version semantics against a model.

use std::collections::BTreeMap;

use proptest::prelude::*;

use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_store::keys;
use rj_store::scan::Scan;

proptest! {
    /// u64 encoding: byte order == numeric order.
    #[test]
    fn u64_order_preserved(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(
            keys::encode_u64(a).cmp(&keys::encode_u64(b)),
            a.cmp(&b)
        );
        prop_assert_eq!(keys::decode_u64(&keys::encode_u64(a)), Some(a));
    }

    /// f64 encoding: byte order == numeric order (over non-NaN values).
    #[test]
    fn f64_order_preserved(a in -1e300f64..1e300, b in -1e300f64..1e300) {
        let (ea, eb) = (keys::encode_f64(a), keys::encode_f64(b));
        prop_assert_eq!(ea.cmp(&eb), a.total_cmp(&b));
        prop_assert_eq!(keys::decode_f64(&ea), Some(a));
    }

    /// Descending-score encoding inverts the order: ascending bytes mean
    /// descending scores (the ISL index invariant, §4.2.2).
    #[test]
    fn desc_score_order_inverted(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (ea, eb) = (keys::encode_score_desc(a), keys::encode_score_desc(b));
        prop_assert_eq!(ea.cmp(&eb), b.total_cmp(&a));
        prop_assert_eq!(keys::decode_score_desc(&ea), Some(a));
    }

    /// `prefix_end` bounds exactly the keys sharing the prefix.
    #[test]
    fn prefix_end_is_tight(prefix in prop::collection::vec(0u8..255, 1..6),
                           suffix in prop::collection::vec(any::<u8>(), 0..6)) {
        if let Some(end) = keys::prefix_end(&prefix) {
            let mut extended = prefix.clone();
            extended.extend_from_slice(&suffix);
            prop_assert!(extended >= prefix);
            prop_assert!(extended < end, "prefixed key escapes the bound");
        }
    }

    /// Store reads/scans agree with a BTreeMap model under arbitrary
    /// interleavings of puts and deletes (latest-timestamp-wins).
    #[test]
    fn store_matches_model(ops in prop::collection::vec(
        (0u8..20, any::<bool>(), 0u8..=255), 1..120)) {
        let cluster = Cluster::new(2, CostModel::test());
        cluster.create_table("t", &["cf"]).unwrap();
        let client = cluster.client();
        let mut model: BTreeMap<Vec<u8>, u8> = BTreeMap::new();

        for (key_id, is_put, value) in ops {
            let key = vec![b'k', key_id];
            if is_put {
                client.put("t", &key, Mutation::put("cf", b"v", vec![value])).unwrap();
                model.insert(key, value);
            } else {
                client.delete("t", &key, "cf", b"v").unwrap();
                model.remove(&key);
            }
        }

        // Point reads agree.
        for key_id in 0u8..20 {
            let key = vec![b'k', key_id];
            let got = client.get("t", &key).unwrap()
                .and_then(|r| r.value("cf", b"v").map(|v| v[0]));
            prop_assert_eq!(got, model.get(&key).copied());
        }
        // Scans agree in content and order.
        let scanned: Vec<(Vec<u8>, u8)> = client
            .scan("t", Scan::new().caching(3))
            .unwrap()
            .map(|r| {
                let v = r.value("cf", b"v").unwrap()[0];
                (r.key, v)
            })
            .collect();
        let want: Vec<(Vec<u8>, u8)> = model.into_iter().collect();
        prop_assert_eq!(scanned, want);
    }
}
