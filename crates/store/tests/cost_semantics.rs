//! Cost-model semantics the evaluation depends on: scan amortization,
//! locality, and split transparency.

use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_store::keys;
use rj_store::scan::Scan;

fn loaded_cluster(rows: u64) -> Cluster {
    let c = Cluster::new(3, CostModel::ec2(3));
    c.create_table("t", &["cf"]).unwrap();
    let client = c.client();
    for i in 0..rows {
        client
            .put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"v", vec![0u8; 32]),
            )
            .unwrap();
    }
    c
}

#[test]
fn batched_scans_amortize_rpc_latency() {
    // The §4.2.3 claim behind ISL's batch knob: larger row caches cut
    // RPCs and simulated time for the same data.
    let c = loaded_cluster(500);
    let run = |caching: usize| {
        let before = c.metrics().snapshot();
        let n = c
            .client()
            .scan("t", Scan::new().caching(caching))
            .unwrap()
            .count();
        assert_eq!(n, 500);
        c.metrics().snapshot().delta_since(&before)
    };
    let small = run(1);
    let large = run(100);
    assert!(small.rpc_calls > 10 * large.rpc_calls);
    assert!(small.sim_seconds > large.sim_seconds);
    assert_eq!(small.kv_reads, large.kv_reads, "same data read either way");
}

#[test]
fn scans_are_split_transparent() {
    // Auto-splitting mid-load must not change what scans return.
    let c = Cluster::new(2, CostModel::test());
    let t = c.create_table("t", &["cf"]).unwrap();
    t.set_split_threshold(16);
    let client = c.client();
    for i in 0..200u64 {
        client
            .put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"v", i.to_string().into_bytes()),
            )
            .unwrap();
    }
    assert!(t.region_infos().len() > 4, "splits happened");
    let got: Vec<u64> = client
        .scan("t", Scan::new().caching(7))
        .unwrap()
        .map(|r| keys::decode_u64(&r.key).unwrap())
        .collect();
    let want: Vec<u64> = (0..200).collect();
    assert_eq!(got, want);
}

#[test]
fn remote_writes_ship_bytes_local_writes_do_not() {
    let c = Cluster::new(2, CostModel::ec2(2));
    c.create_table("t", &["cf"]).unwrap();
    let node = c.table("t").unwrap().region_infos()[0].node;

    let local = c.task_client(node);
    let before = c.metrics().snapshot();
    local
        .put("t", b"k1", Mutation::put("cf", b"v", vec![0u8; 128]))
        .unwrap();
    let d_local = c.metrics().snapshot().delta_since(&before);
    assert_eq!(d_local.network_bytes, 0);
    assert_eq!(d_local.kv_writes, 1);

    let remote = c.task_client(1 - node);
    let before = c.metrics().snapshot();
    remote
        .put("t", b"k2", Mutation::put("cf", b"v", vec![0u8; 128]))
        .unwrap();
    let d_remote = c.metrics().snapshot().delta_since(&before);
    assert!(d_remote.network_bytes >= 128);
}

#[test]
fn ec2_queries_cost_more_time_than_lab() {
    // Same work, different profile ⇒ same counters, more simulated time.
    let run = |cost: CostModel| {
        let c = Cluster::new(3, cost);
        c.create_table("t", &["cf"]).unwrap();
        let client = c.client();
        for i in 0..200u64 {
            client
                .put(
                    "t",
                    &keys::encode_u64(i),
                    Mutation::put("cf", b"v", vec![0u8; 32]),
                )
                .unwrap();
        }
        let before = c.metrics().snapshot();
        let n = c
            .client()
            .scan("t", Scan::new().caching(10))
            .unwrap()
            .count();
        assert_eq!(n, 200);
        c.metrics().snapshot().delta_since(&before)
    };
    let ec2 = run(CostModel::ec2(3));
    let lab = run(CostModel::lab());
    assert_eq!(ec2.kv_reads, lab.kv_reads);
    assert!(ec2.sim_seconds > lab.sim_seconds);
}
