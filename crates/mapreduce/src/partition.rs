//! Shuffle partitioners.
//!
//! Hash partitioning is Hadoop's default. Range partitioning with sampled
//! quantile boundaries is how Pig balances its `ORDER BY` job (§3.1: "it
//! samples the records in the join result file in the map phase, and
//! appropriate quantiles are computed at the reduce phase ... used to
//! construct a balanced partitioner for the third job").

/// Maps a shuffle key to a reducer.
pub trait Partitioner: Send + Sync {
    /// Reducer index for `key`, in `[0, num_reducers)`.
    fn partition(&self, key: &[u8], num_reducers: usize) -> usize;
}

/// Hadoop-default hash partitioning (stable across runs).
#[derive(Default, Clone, Copy, Debug)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &[u8], num_reducers: usize) -> usize {
        // FNV-1a, reduced; independent of the sketch-crate seeds.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % num_reducers as u64) as usize
    }
}

/// Range partitioning over sorted boundary keys: reducer `i` receives keys
/// in `[boundary[i-1], boundary[i])`.
#[derive(Clone, Debug)]
pub struct RangePartitioner {
    boundaries: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Builds from explicit boundaries (must be sorted; one fewer than the
    /// reducer count they will serve).
    pub fn new(mut boundaries: Vec<Vec<u8>>) -> Self {
        boundaries.sort();
        RangePartitioner { boundaries }
    }

    /// Builds boundaries from a sample of keys: picks `num_reducers - 1`
    /// evenly spaced quantiles (Pig's sampler output).
    pub fn from_sample(mut sample: Vec<Vec<u8>>, num_reducers: usize) -> Self {
        sample.sort();
        sample.dedup();
        let mut boundaries = Vec::new();
        if num_reducers > 1 && !sample.is_empty() {
            for i in 1..num_reducers {
                let idx = i * sample.len() / num_reducers;
                boundaries.push(sample[idx.min(sample.len() - 1)].clone());
            }
            boundaries.dedup();
        }
        RangePartitioner { boundaries }
    }

    /// Number of boundary keys.
    pub fn boundary_count(&self) -> usize {
        self.boundaries.len()
    }
}

impl Partitioner for RangePartitioner {
    fn partition(&self, key: &[u8], num_reducers: usize) -> usize {
        let idx = self.boundaries.partition_point(|b| b.as_slice() <= key);
        idx.min(num_reducers - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_in_range() {
        let p = HashPartitioner;
        let a = p.partition(b"key", 7);
        assert_eq!(a, p.partition(b"key", 7));
        for k in 0..200u32 {
            assert!(p.partition(&k.to_be_bytes(), 7) < 7);
        }
    }

    #[test]
    fn hash_spreads_keys() {
        let p = HashPartitioner;
        let mut counts = [0usize; 4];
        for k in 0..4000u32 {
            counts[p.partition(&k.to_be_bytes(), 4)] += 1;
        }
        for c in counts {
            assert!(c > 700, "partition starved: {counts:?}");
        }
    }

    #[test]
    fn range_respects_boundaries() {
        let p = RangePartitioner::new(vec![b"g".to_vec(), b"p".to_vec()]);
        assert_eq!(p.partition(b"a", 3), 0);
        assert_eq!(p.partition(b"g", 3), 1, "boundary key goes right");
        assert_eq!(p.partition(b"k", 3), 1);
        assert_eq!(p.partition(b"z", 3), 2);
    }

    #[test]
    fn range_from_sample_balances() {
        let sample: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let p = RangePartitioner::from_sample(sample, 4);
        assert_eq!(p.boundary_count(), 3);
        let mut counts = [0usize; 4];
        for i in 0..1000u32 {
            counts[p.partition(&i.to_be_bytes(), 4)] += 1;
        }
        for c in counts {
            assert!((200..=300).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn range_clamps_to_reducer_count() {
        // More boundaries than reducers: indices clamp.
        let p = RangePartitioner::new(vec![b"b".to_vec(), b"d".to_vec(), b"f".to_vec()]);
        assert_eq!(p.partition(b"z", 2), 1);
    }

    #[test]
    fn empty_sample_yields_single_partition() {
        let p = RangePartitioner::from_sample(vec![], 4);
        assert_eq!(p.partition(b"anything", 4), 0);
    }
}
