//! The job execution engine.
//!
//! Runs real map/reduce closures over real data, fanned out as one task per
//! split/reducer on the shared [`WorkStealingPool`] at background priority
//! (batch jobs yield to interactive query rounds), while
//! charging the cluster's cost model for everything Hadoop would have paid:
//! job/task startup, local disk scans, cross-node shuffle traffic, DFS
//! replication, and store puts. The modelled job duration is
//!
//! ```text
//! startup + map_waves·task_startup + max_node(map makespan)
//!         + shuffle + reduce_waves·task_startup + max_node(reduce makespan)
//! ```
//!
//! which reproduces the paper's headline cost structure: Hive pays for two
//! full jobs plus a materialized join; Pig pays for three leaner jobs;
//! IJLMR pays for one; ISL/BFHM pay for none.

use std::collections::BTreeMap;

use rj_store::cluster::Cluster;
use rj_store::error::StoreError;
use rj_store::scan::Scan;
use rj_store::{PoolPriority, WorkStealingPool};

use crate::counters::Counters;
use crate::dfs::{record_weight, Dfs, DfsFile, DfsPart};
use crate::job::{JobInput, JobResult, JobSpec, OutputSink};
use crate::task::{Emitter, InputRecord, Mapper, Reducer};

/// DFS replication factor for job output files (capped by cluster size).
const DFS_REPLICATION: usize = 2;

/// Rows per scan RPC for map-task region scans.
const MAP_SCAN_CACHING: usize = 10_000;

/// Engine errors.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying store failure.
    Store(StoreError),
    /// Input file missing.
    NoSuchFile(String),
    /// Spec inconsistency (e.g. pairs emitted by a map-only job with no
    /// collectable sink).
    BadSpec(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::NoSuchFile(n) => write!(f, "no such DFS file: {n}"),
            EngineError::BadSpec(m) => write!(f, "bad job spec: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Factory type: one mapper per split.
pub type MapperFactory<'a> = &'a (dyn Fn() -> Box<dyn Mapper> + Sync);
/// Factory type: one reducer per partition (also used for combiners).
pub type ReducerFactory<'a> = &'a (dyn Fn() -> Box<dyn Reducer> + Sync);

/// Sorted key groups destined for one reducer.
type ReducerGroups = BTreeMap<Vec<u8>, Vec<Vec<u8>>>;

/// One boxed reduce task scheduled on the shared pool; yields the task
/// output plus its simulated task-seconds.
type ReduceTask<'a> = Box<dyn FnOnce() -> Result<(ReduceTaskOutput, f64), EngineError> + Send + 'a>;

/// Key/value records returned to the driver.
pub type Records = Vec<(Vec<u8>, Vec<u8>)>;

struct MapTaskOutput {
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
    node: usize,
    task_seconds: f64,
    input_records: u64,
    combine_input_records: u64,
    puts: u64,
}

/// The MapReduce engine: a cluster handle plus a DFS namespace.
#[derive(Clone)]
pub struct MapReduceEngine {
    cluster: Cluster,
    dfs: Dfs,
}

impl MapReduceEngine {
    /// Creates an engine over a cluster with a fresh DFS.
    pub fn new(cluster: Cluster) -> Self {
        MapReduceEngine {
            cluster,
            dfs: Dfs::new(),
        }
    }

    /// The DFS namespace (shared with clones of this engine).
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The cluster this engine schedules onto.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs a job.
    ///
    /// `combiner_factory`, when given, is applied to each map task's output
    /// before the shuffle (Pig's local top-k combiner, §3.1).
    pub fn run(
        &self,
        spec: &JobSpec,
        mapper_factory: MapperFactory<'_>,
        reducer_factory: Option<ReducerFactory<'_>>,
        combiner_factory: Option<ReducerFactory<'_>>,
    ) -> Result<JobResult, EngineError> {
        if spec.num_reducers > 0 && reducer_factory.is_none() {
            return Err(EngineError::BadSpec("reducers requested but no factory"));
        }
        let cost = self.cluster.cost_model().clone();
        let mut counters = Counters::default();

        // ------------------------------------------------------- map phase
        let map_outputs = self.run_map_phase(spec, mapper_factory, combiner_factory)?;
        let num_nodes = self.cluster.num_nodes();
        let map_time = phase_makespan(
            map_outputs.iter().map(|t| (t.node, t.task_seconds)),
            num_nodes,
            cost.map_slots_per_node,
            cost.mr_task_startup,
        );
        for t in &map_outputs {
            counters.map_input_records += t.input_records;
            counters.combine_input_records += t.combine_input_records;
            counters.map_output_records += t.pairs.len() as u64;
            counters.store_puts += t.puts;
        }

        let mut job_time = cost.mr_job_startup + map_time;
        let mut collected = Vec::new();

        if spec.num_reducers == 0 {
            // Map-only: pairs flow straight to the sink.
            let pair_count: u64 = map_outputs.iter().map(|t| t.pairs.len() as u64).sum();
            counters.output_records = pair_count;
            match &spec.sink {
                OutputSink::Discard => {}
                OutputSink::Collect => {
                    for t in &map_outputs {
                        let bytes: u64 = t.pairs.iter().map(|(k, v)| record_weight(k, v)).sum();
                        self.cluster.metrics().add_network_bytes(bytes);
                        job_time += cost.transfer_time(bytes);
                    }
                    for t in map_outputs {
                        collected.extend(t.pairs);
                    }
                }
                OutputSink::File(name) => {
                    let (write_time, file) = self.build_dfs_file(&map_outputs, &cost);
                    job_time += write_time;
                    self.dfs.write(name, file);
                }
            }
            counters.job_seconds = job_time;
            self.cluster.metrics().add_sim_seconds(job_time);
            return Ok(JobResult {
                counters,
                collected,
            });
        }

        // ---------------------------------------------------- shuffle phase
        let num_reducers = spec.num_reducers;
        let reducer_node = |r: usize| r % num_nodes;
        // Deterministic merge: iterate tasks in task order.
        let mut groups: Vec<ReducerGroups> = (0..num_reducers).map(|_| BTreeMap::new()).collect();
        let mut reducer_in_bytes = vec![0u64; num_reducers];
        let mut reducer_remote_bytes = vec![0u64; num_reducers];
        for t in &map_outputs {
            for (k, v) in &t.pairs {
                let r = spec.partitioner.partition(k, num_reducers);
                let w = record_weight(k, v);
                counters.shuffle_bytes += w;
                reducer_in_bytes[r] += w;
                if reducer_node(r) != t.node {
                    counters.shuffle_remote_bytes += w;
                    reducer_remote_bytes[r] += w;
                }
                groups[r].entry(k.clone()).or_default().push(v.clone());
            }
        }
        self.cluster
            .metrics()
            .add_network_bytes(counters.shuffle_remote_bytes);
        counters.max_reducer_input_bytes = reducer_in_bytes.iter().copied().max().unwrap_or(0);
        let shuffle_time = (0..num_reducers)
            .map(|r| {
                let kvs = groups[r].values().map(Vec::len).sum::<usize>() as u64;
                cost.transfer_time(reducer_remote_bytes[r])
                    + kvs as f64 * cost.mr_cpu_per_record * 2.0
            })
            .fold(0.0f64, f64::max);
        job_time += shuffle_time;
        drop(map_outputs);

        // ----------------------------------------------------- reduce phase
        let reducer_factory = reducer_factory.expect("validated above");
        let reduce_results = self.run_reduce_phase(spec, groups, reducer_factory, &cost)?;
        let reduce_time = phase_makespan(
            reduce_results
                .iter()
                .map(|(out, seconds)| (out.node, *seconds)),
            num_nodes,
            cost.reduce_slots_per_node,
            cost.mr_task_startup,
        );
        job_time += reduce_time;
        for (out, _) in &reduce_results {
            counters.reduce_input_groups += out.input_records; // groups
            counters.reduce_input_records += out.combine_input_records; // values
            counters.output_records += out.pairs.len() as u64;
            counters.store_puts += out.puts;
        }
        counters.max_reducer_state_bytes = reduce_results
            .iter()
            .map(|(out, _)| out.task_seconds_bits)
            .fold(0, u64::max);

        // Sink handling for reduce output.
        let outs: Vec<MapTaskOutput> = reduce_results
            .into_iter()
            .map(|(out, seconds)| MapTaskOutput {
                pairs: out.pairs,
                node: out.node,
                task_seconds: seconds,
                input_records: 0,
                combine_input_records: 0,
                puts: 0,
            })
            .collect();
        match &spec.sink {
            OutputSink::Discard => {}
            OutputSink::Collect => {
                for t in &outs {
                    let bytes: u64 = t.pairs.iter().map(|(k, v)| record_weight(k, v)).sum();
                    self.cluster.metrics().add_network_bytes(bytes);
                    job_time += cost.transfer_time(bytes);
                }
                for t in outs {
                    collected.extend(t.pairs);
                }
            }
            OutputSink::File(name) => {
                let (write_time, file) = self.build_dfs_file(&outs, &cost);
                job_time += write_time;
                self.dfs.write(name, file);
            }
        }

        counters.job_seconds = job_time;
        self.cluster.metrics().add_sim_seconds(job_time);
        Ok(JobResult {
            counters,
            collected,
        })
    }

    /// Runs map tasks in parallel; returns outputs in split order.
    fn run_map_phase(
        &self,
        spec: &JobSpec,
        mapper_factory: MapperFactory<'_>,
        combiner_factory: Option<ReducerFactory<'_>>,
    ) -> Result<Vec<MapTaskOutput>, EngineError> {
        enum Split {
            Region {
                table: String,
                families: Option<Vec<String>>,
                start: Vec<u8>,
                end: Option<Vec<u8>>,
                node: usize,
            },
            Part(usize, usize), // (part index, node)
        }
        let (splits, file): (Vec<Split>, Option<DfsFile>) = match &spec.input {
            JobInput::Tables(inputs) => {
                let mut splits = Vec::new();
                for input in inputs {
                    let t = self.cluster.table(&input.table)?;
                    splits.extend(t.region_infos().into_iter().map(|r| Split::Region {
                        table: input.table.clone(),
                        families: input.families.clone(),
                        start: r.start,
                        end: r.end,
                        node: r.node,
                    }));
                }
                (splits, None)
            }
            JobInput::File(name) => {
                let f = self
                    .dfs
                    .read(name)
                    .ok_or_else(|| EngineError::NoSuchFile(name.clone()))?;
                let splits = f
                    .parts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| Split::Part(i, p.node))
                    .collect();
                (splits, Some(f))
            }
        };

        let cost = self.cluster.cost_model().clone();

        // One pool task per split; the shared work-stealing pool balances
        // them across workers. Batch jobs run at `Background` priority so
        // offline index builds yield to interactive query rounds.
        let cost_ref = &cost;
        let file_ref = &file;
        let tasks: Vec<Box<dyn FnOnce() -> Result<MapTaskOutput, EngineError> + Send + '_>> =
            splits
                .iter()
                .map(|split| {
                    let task = move || -> Result<MapTaskOutput, EngineError> {
                        let mut mapper = mapper_factory();
                        let mut emitter = Emitter::default();
                        let mut input_records = 0u64;
                        let node;
                        let mut io_seconds = 0.0f64;
                        match split {
                            Split::Region {
                                table,
                                families,
                                start,
                                end,
                                node: n,
                            } => {
                                node = *n;
                                let client = self.cluster.task_client(node);
                                let mut scan = Scan::new()
                                    .start(start.clone())
                                    .caching(spec.scan_caching.unwrap_or(MAP_SCAN_CACHING));
                                if let Some(end) = end {
                                    scan = scan.stop(end.clone());
                                }
                                if let Some(fams) = families {
                                    let refs: Vec<&str> = fams.iter().map(String::as_str).collect();
                                    scan = scan.families(&refs);
                                }
                                if let Some(f) = &spec.scan_filter {
                                    scan = scan.filter(f.clone());
                                }
                                for row in client.scan(table, scan)? {
                                    if !mapper.wants_more() {
                                        break;
                                    }
                                    input_records += 1;
                                    mapper.map(InputRecord::Row { table, row: &row }, &mut emitter);
                                }
                                io_seconds += client.elapsed_seconds();
                            }
                            Split::Part(idx, n) => {
                                node = *n;
                                let part = &file_ref.as_ref().expect("file input").parts[*idx];
                                for (k, v) in &part.records {
                                    if !mapper.wants_more() {
                                        break;
                                    }
                                    input_records += 1;
                                    mapper
                                        .map(InputRecord::Pair { key: k, value: v }, &mut emitter);
                                }
                                io_seconds += part.bytes as f64 / cost_ref.disk_bandwidth;
                            }
                        }
                        mapper.finish(&mut emitter);

                        let combine_input = emitter.pair_count() as u64;
                        if let Some(cf) = combiner_factory {
                            emitter = run_combiner(cf, emitter);
                        }

                        // Apply direct puts.
                        let puts = emitter.puts.len() as u64;
                        if puts > 0 {
                            let put_table = spec
                                .put_table
                                .as_deref()
                                .ok_or(EngineError::BadSpec("puts emitted without put_table"))?;
                            let client = self.cluster.task_client(node);
                            for (row, m) in emitter.puts.drain(..) {
                                client.put(put_table, &row, m)?;
                            }
                            io_seconds += client.elapsed_seconds();
                        }

                        let cpu = (input_records + emitter.pair_count() as u64) as f64
                            * cost_ref.mr_cpu_per_record;
                        Ok(MapTaskOutput {
                            pairs: emitter.pairs,
                            node,
                            task_seconds: io_seconds + cpu,
                            input_records,
                            combine_input_records: combine_input,
                            puts,
                        })
                    };
                    Box::new(task)
                        as Box<dyn FnOnce() -> Result<MapTaskOutput, EngineError> + Send + '_>
                })
                .collect();
        WorkStealingPool::global()
            .run_batch_at(PoolPriority::Background, tasks)
            .into_iter()
            .collect()
    }

    /// Runs reduce tasks in parallel; returns `(output, task_seconds)` in
    /// reducer order. `task_seconds_bits` on the output carries the max
    /// observed reducer state bytes (reusing the struct to avoid another
    /// type).
    fn run_reduce_phase(
        &self,
        spec: &JobSpec,
        groups: Vec<ReducerGroups>,
        reducer_factory: ReducerFactory<'_>,
        cost: &rj_store::costmodel::CostModel,
    ) -> Result<Vec<(ReduceTaskOutput, f64)>, EngineError> {
        let num_nodes = self.cluster.num_nodes();

        // One pool task per reducer, scheduled like the map phase: on the
        // shared pool at `Background` priority, results in reducer order.
        let tasks: Vec<ReduceTask<'_>> = groups
            .iter()
            .enumerate()
            .map(|(r, group)| {
                let node = r % num_nodes;
                let task = move || -> Result<(ReduceTaskOutput, f64), EngineError> {
                    let mut reducer = reducer_factory();
                    let mut emitter = Emitter::default();
                    let mut n_groups = 0u64;
                    let mut n_values = 0u64;
                    let mut max_state = 0u64;
                    for (key, values) in group {
                        n_groups += 1;
                        n_values += values.len() as u64;
                        reducer.reduce(key, values, &mut emitter);
                        max_state = max_state.max(reducer.state_bytes());
                    }
                    reducer.finish(&mut emitter);
                    max_state = max_state.max(reducer.state_bytes());

                    let mut io_seconds = n_values as f64 * cost.mr_cpu_per_record;
                    let puts = emitter.puts.len() as u64;
                    if puts > 0 {
                        let put_table = spec
                            .put_table
                            .as_deref()
                            .ok_or(EngineError::BadSpec("puts emitted without put_table"))?;
                        let client = self.cluster.task_client(node);
                        for (row, m) in emitter.puts.drain(..) {
                            client.put(put_table, &row, m)?;
                        }
                        io_seconds += client.elapsed_seconds();
                    }
                    Ok((
                        ReduceTaskOutput {
                            pairs: emitter.pairs,
                            node,
                            input_records: n_groups,
                            combine_input_records: n_values,
                            puts,
                            task_seconds_bits: max_state,
                        },
                        io_seconds,
                    ))
                };
                Box::new(task)
                    as Box<dyn FnOnce() -> Result<(ReduceTaskOutput, f64), EngineError> + Send + '_>
            })
            .collect();
        WorkStealingPool::global()
            .run_batch_at(PoolPriority::Background, tasks)
            .into_iter()
            .collect()
    }

    /// Builds a DFS file from task outputs (one part per task) and returns
    /// the modelled write time (disk + replication network, max over nodes).
    fn build_dfs_file(
        &self,
        outs: &[MapTaskOutput],
        cost: &rj_store::costmodel::CostModel,
    ) -> (f64, DfsFile) {
        let replicas = DFS_REPLICATION.min(self.cluster.num_nodes());
        let mut parts = Vec::with_capacity(outs.len());
        let mut per_node_bytes = vec![0u64; self.cluster.num_nodes()];
        let mut replication_bytes = 0u64;
        for t in outs {
            let bytes: u64 = t.pairs.iter().map(|(k, v)| record_weight(k, v)).sum();
            per_node_bytes[t.node] += bytes;
            replication_bytes += bytes * (replicas as u64 - 1);
            parts.push(DfsPart {
                node: t.node,
                records: t.pairs.clone(),
                bytes,
            });
        }
        self.cluster.metrics().add_network_bytes(replication_bytes);
        let disk_time = per_node_bytes
            .iter()
            .map(|&b| b as f64 / cost.disk_bandwidth)
            .fold(0.0f64, f64::max);
        let net_time = cost.transfer_time(replication_bytes);
        (disk_time + net_time, DfsFile { parts })
    }

    /// Driver-side fetch of the first `limit` records of a DFS file —
    /// Hive's final "fetch the k highest-ranked results" stage (§3.1).
    /// Charged as a remote read of the needed part prefixes.
    pub fn fetch_file_prefix(&self, name: &str, limit: usize) -> Result<Records, EngineError> {
        let file = self
            .dfs
            .read(name)
            .ok_or_else(|| EngineError::NoSuchFile(name.to_owned()))?;
        let cost = self.cluster.cost_model();
        let mut out = Vec::with_capacity(limit);
        let mut bytes = 0u64;
        for rec in file.iter_records() {
            if out.len() == limit {
                break;
            }
            bytes += record_weight(&rec.0, &rec.1);
            out.push(rec.clone());
        }
        self.cluster.metrics().add_network_bytes(bytes);
        self.cluster
            .metrics()
            .add_sim_seconds(cost.rpc_latency + cost.transfer_time(bytes));
        Ok(out)
    }
}

struct ReduceTaskOutput {
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
    node: usize,
    input_records: u64,         // groups
    combine_input_records: u64, // values
    puts: u64,
    /// Max observed reducer state bytes (name reused from MapTaskOutput).
    task_seconds_bits: u64,
}

/// Applies a combiner to one map task's output.
fn run_combiner(factory: ReducerFactory<'_>, emitter: Emitter) -> Emitter {
    let mut grouped: ReducerGroups = BTreeMap::new();
    for (k, v) in emitter.pairs {
        grouped.entry(k).or_default().push(v);
    }
    let mut combiner = factory();
    let mut out = Emitter {
        pairs: Vec::new(),
        puts: emitter.puts,
    };
    for (k, vs) in &grouped {
        combiner.reduce(k, vs, &mut out);
    }
    combiner.finish(&mut out);
    out
}

/// Makespan of a set of tasks over nodes with `slots` parallel slots each:
/// per node, `waves * task_startup + total_work / slots`.
fn phase_makespan(
    tasks: impl Iterator<Item = (usize, f64)>,
    num_nodes: usize,
    slots: usize,
    task_startup: f64,
) -> f64 {
    let mut work = vec![0.0f64; num_nodes];
    let mut count = vec![0usize; num_nodes];
    for (node, seconds) in tasks {
        work[node] += seconds;
        count[node] += 1;
    }
    (0..num_nodes)
        .map(|n| {
            if count[n] == 0 {
                0.0
            } else {
                let waves = count[n].div_ceil(slots);
                waves as f64 * task_startup + work[n] / slots as f64
            }
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartitioner;
    use crate::task::{FnMapper, FnReducer};
    use rj_store::cell::Mutation;
    use rj_store::costmodel::CostModel;
    use rj_store::keys;
    use std::sync::Arc;

    fn cluster_with_data(rows: u64) -> Cluster {
        let c = Cluster::new(3, CostModel::test());
        c.create_table_with_splits(
            "in",
            &["cf"],
            &[
                keys::encode_u64(rows / 3).to_vec(),
                keys::encode_u64(2 * rows / 3).to_vec(),
            ],
        )
        .unwrap();
        let client = c.client();
        for i in 0..rows {
            client
                .put(
                    "in",
                    &keys::encode_u64(i),
                    Mutation::put("cf", b"v", (i % 10).to_string().into_bytes()),
                )
                .unwrap();
        }
        c
    }

    #[test]
    fn word_count_end_to_end() {
        let c = cluster_with_data(100);
        let engine = MapReduceEngine::new(c);
        let spec = JobSpec::new("wc", JobInput::table("in"), 2).sink(OutputSink::Collect);
        let result = engine
            .run(
                &spec,
                &|| {
                    Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                        let row = input.row().unwrap();
                        let v = row.value("cf", b"v").unwrap().to_vec();
                        out.emit(v, b"1".to_vec());
                    }))
                },
                Some(&|| {
                    Box::new(FnReducer(
                        |key: &[u8], values: &[Vec<u8>], out: &mut Emitter| {
                            out.emit(key.to_vec(), values.len().to_string().into_bytes());
                        },
                    ))
                }),
                None,
            )
            .unwrap();
        // 100 rows, values 0..9 each appearing 10 times.
        assert_eq!(result.counters.map_input_records, 100);
        assert_eq!(result.collected.len(), 10);
        for (_k, v) in &result.collected {
            assert_eq!(v, b"10");
        }
    }

    #[test]
    fn combiner_shrinks_shuffle() {
        let c = cluster_with_data(100);
        let engine = MapReduceEngine::new(c);
        let mapper = || -> Box<dyn Mapper> {
            Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                let row = input.row().unwrap();
                let v = row.value("cf", b"v").unwrap().to_vec();
                out.emit(v, b"1".to_vec());
            }))
        };
        let count_reducer = || -> Box<dyn Reducer> {
            Box::new(FnReducer(
                |key: &[u8], values: &[Vec<u8>], out: &mut Emitter| {
                    let total: u64 = values
                        .iter()
                        .map(|v| String::from_utf8_lossy(v).parse::<u64>().unwrap_or(1))
                        .sum();
                    out.emit(key.to_vec(), total.to_string().into_bytes());
                },
            ))
        };
        let spec = JobSpec::new("wc", JobInput::table("in"), 1).sink(OutputSink::Collect);
        let plain = engine
            .run(&spec, &mapper, Some(&count_reducer), None)
            .unwrap();
        let combined = engine
            .run(&spec, &mapper, Some(&count_reducer), Some(&count_reducer))
            .unwrap();
        assert!(combined.counters.shuffle_bytes < plain.counters.shuffle_bytes);
        // Same answers either way.
        let mut a = plain.collected;
        let mut b = combined.collected;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn map_only_job_puts_to_store() {
        let c = cluster_with_data(30);
        c.create_table("out", &["x"]).unwrap();
        let engine = MapReduceEngine::new(c.clone());
        let spec = JobSpec::new("index", JobInput::table("in"), 0).put_table("out");
        let result = engine
            .run(
                &spec,
                &|| {
                    Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                        let row = input.row().unwrap();
                        let v = row.value("cf", b"v").unwrap().to_vec();
                        // Inverted index: value -> row key.
                        out.put(v, Mutation::put("x", input.key(), b"".to_vec()));
                    }))
                },
                None,
                None,
            )
            .unwrap();
        assert_eq!(result.counters.store_puts, 30);
        assert_eq!(c.table("out").unwrap().kv_count(), 30);
        // 10 distinct values → 10 rows.
        assert_eq!(c.table("out").unwrap().row_count(), 10);
    }

    #[test]
    fn file_roundtrip_between_jobs() {
        let c = cluster_with_data(50);
        let engine = MapReduceEngine::new(c);
        // Job 1: write identity records to a file.
        let spec1 = JobSpec::new("j1", JobInput::table("in"), 1)
            .sink(OutputSink::File("tmp/stage1".into()));
        engine
            .run(
                &spec1,
                &|| {
                    Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                        out.emit(input.key().to_vec(), b"x".to_vec());
                    }))
                },
                Some(&|| {
                    Box::new(FnReducer(
                        |key: &[u8], _values: &[Vec<u8>], out: &mut Emitter| {
                            out.emit(key.to_vec(), b"y".to_vec());
                        },
                    ))
                }),
                None,
            )
            .unwrap();
        assert!(engine.dfs().exists("tmp/stage1"));
        // Job 2: count records of the file.
        let spec2 = JobSpec::new("j2", JobInput::file("tmp/stage1"), 1).sink(OutputSink::Collect);
        let result = engine
            .run(
                &spec2,
                &|| {
                    Box::new(FnMapper(|_input: InputRecord<'_>, out: &mut Emitter| {
                        out.emit(b"n".to_vec(), b"1".to_vec());
                    }))
                },
                Some(&|| {
                    Box::new(FnReducer(
                        |_key: &[u8], values: &[Vec<u8>], out: &mut Emitter| {
                            out.emit(b"n".to_vec(), values.len().to_string().into_bytes());
                        },
                    ))
                }),
                None,
            )
            .unwrap();
        assert_eq!(result.collected[0].1, b"50".to_vec());
    }

    #[test]
    fn range_partitioner_orders_reducer_output() {
        let c = cluster_with_data(90);
        let engine = MapReduceEngine::new(c);
        let boundaries = vec![keys::encode_u64(30).to_vec(), keys::encode_u64(60).to_vec()];
        let spec = JobSpec::new("sorted", JobInput::table("in"), 3)
            .sink(OutputSink::Collect)
            .partitioner(Arc::new(RangePartitioner::new(boundaries)));
        let result = engine
            .run(
                &spec,
                &|| {
                    Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                        out.emit(input.key().to_vec(), b"".to_vec());
                    }))
                },
                Some(&|| {
                    Box::new(FnReducer(
                        |key: &[u8], _values: &[Vec<u8>], out: &mut Emitter| {
                            out.emit(key.to_vec(), b"".to_vec());
                        },
                    ))
                }),
                None,
            )
            .unwrap();
        // Reducer-major, key-minor order = globally sorted with a range
        // partitioner: this is Pig's total-order trick.
        let keys_out: Vec<u64> = result
            .collected
            .iter()
            .map(|(k, _)| keys::decode_u64(k).unwrap())
            .collect();
        let mut sorted = keys_out.clone();
        sorted.sort();
        assert_eq!(keys_out, sorted);
        assert_eq!(keys_out.len(), 90);
    }

    #[test]
    fn job_time_includes_startup() {
        let c = cluster_with_data(10);
        let mut cost = CostModel::test();
        cost.mr_job_startup = 5.0;
        let c2 = Cluster::new(2, cost);
        c2.create_table("in", &["cf"]).unwrap();
        let cl = c2.client();
        for i in 0..10u64 {
            cl.put(
                "in",
                &keys::encode_u64(i),
                Mutation::put("cf", b"v", b"x".to_vec()),
            )
            .unwrap();
        }
        drop(c);
        let engine = MapReduceEngine::new(c2.clone());
        let before = c2.metrics().snapshot();
        let result = engine
            .run(
                &JobSpec::new("j", JobInput::table("in"), 0),
                &|| Box::new(FnMapper(|_i: InputRecord<'_>, _o: &mut Emitter| {})),
                None,
                None,
            )
            .unwrap();
        assert!(result.counters.job_seconds >= 5.0);
        let d = c2.metrics().snapshot().delta_since(&before);
        assert!(d.sim_seconds >= 5.0, "job time charged to global clock");
    }

    #[test]
    fn mapper_billed_for_every_kv_scanned() {
        let c = cluster_with_data(40);
        let engine = MapReduceEngine::new(c.clone());
        let before = c.metrics().snapshot();
        engine
            .run(
                &JobSpec::new("j", JobInput::table("in"), 0),
                &|| Box::new(FnMapper(|_i: InputRecord<'_>, _o: &mut Emitter| {})),
                None,
                None,
            )
            .unwrap();
        let d = c.metrics().snapshot().delta_since(&before);
        assert_eq!(d.kv_reads, 40, "dollar cost counts all mapper reads");
        assert_eq!(d.network_bytes, 0, "local mappers ship nothing");
    }

    #[test]
    fn missing_file_input_errors() {
        let c = cluster_with_data(1);
        let engine = MapReduceEngine::new(c);
        let err = engine
            .run(
                &JobSpec::new("j", JobInput::file("nope"), 0),
                &|| Box::new(FnMapper(|_i: InputRecord<'_>, _o: &mut Emitter| {})),
                None,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::NoSuchFile(_)));
    }

    #[test]
    fn reducer_state_bytes_tracked() {
        struct Hungry {
            buf: Vec<u8>,
        }
        impl Reducer for Hungry {
            fn reduce(&mut self, _k: &[u8], values: &[Vec<u8>], _out: &mut Emitter) {
                for v in values {
                    self.buf.extend_from_slice(v);
                }
            }
            fn state_bytes(&self) -> u64 {
                self.buf.len() as u64
            }
        }
        let c = cluster_with_data(20);
        let engine = MapReduceEngine::new(c);
        let spec = JobSpec::new("j", JobInput::table("in"), 1);
        let result = engine
            .run(
                &spec,
                &|| {
                    Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                        out.emit(b"k".to_vec(), input.key().to_vec());
                    }))
                },
                Some(&|| Box::new(Hungry { buf: Vec::new() }) as Box<dyn Reducer>),
                None,
            )
            .unwrap();
        assert_eq!(result.counters.max_reducer_state_bytes, 20 * 8);
    }
}
