//! A Hadoop-model MapReduce engine over the [`rj_store`] simulator.
//!
//! The paper's baselines (Hive, Pig — §3) and index builders (Algorithms 1,
//! 3, 5) are MapReduce programs over HBase tables and HDFS files. This crate
//! provides the engine they run on:
//!
//! * **jobs** read either a store table (one map task per region, placed on
//!   the region's node — Hadoop/HBase locality) or a simulated DFS file
//!   (one map task per part, placed on the part's node),
//! * map output is optionally **combined**, then partitioned
//!   (hash or sampled-range partitioners — Pig's balanced `ORDER BY` uses
//!   the latter), shuffled (cross-node bytes billed), and sorted by key,
//! * reducers consume sorted groups and write to a DFS file, to a store
//!   table (via real `put`s), or back to the driver,
//! * **map-only jobs** (no reducers) write directly into the store — the
//!   paper's index-creation jobs,
//! * job cost is charged to the cluster's simulated clock as
//!   `startup + map waves + shuffle + reduce waves`, with per-node task
//!   makespans computed from the tasks' modelled I/O work. Every KV a
//!   mapper touches is billed as a read unit — which is why the paper's
//!   MapReduce approaches dominate the dollar-cost charts (§7.2).
//!
//! The engine executes the user's map/reduce closures for real, in
//! parallel threads, while keeping results deterministic: map outputs are
//! merged in task order, groups iterate in key order, and value order
//! within a group is (task index, emit order).

#![warn(missing_docs)]

pub mod counters;
pub mod dfs;
pub mod engine;
pub mod job;
pub mod partition;
pub mod task;

pub use counters::Counters;
pub use dfs::{Dfs, DfsFile};
pub use engine::MapReduceEngine;
pub use job::{JobInput, JobResult, JobSpec, OutputSink};
pub use partition::{HashPartitioner, Partitioner, RangePartitioner};
pub use task::{Emitter, InputRecord, Mapper, Reducer};
