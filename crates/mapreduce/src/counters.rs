//! Job counters, in the spirit of Hadoop's.

/// Aggregate statistics of one job execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Counters {
    /// Records fed to mappers.
    pub map_input_records: u64,
    /// Key-value pairs emitted by mappers (after combining).
    pub map_output_records: u64,
    /// Pairs emitted by mappers before the combiner ran.
    pub combine_input_records: u64,
    /// Bytes handed to the shuffle.
    pub shuffle_bytes: u64,
    /// Shuffle bytes that crossed a node boundary.
    pub shuffle_remote_bytes: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Values seen by reducers.
    pub reduce_input_records: u64,
    /// Records emitted by reducers (or by map-only jobs to the sink).
    pub output_records: u64,
    /// Store puts issued by tasks.
    pub store_puts: u64,
    /// Largest shuffle input volume any reducer received, bytes.
    pub max_reducer_input_bytes: u64,
    /// Largest self-reported reducer state, bytes (the §7.2 memory
    /// footprint experiment reads this).
    pub max_reducer_state_bytes: u64,
    /// Modelled job duration, seconds.
    pub job_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let c = Counters::default();
        assert_eq!(c.map_input_records, 0);
        assert_eq!(c.job_seconds, 0.0);
    }
}
