//! Job specifications and results.

use std::sync::Arc;

use crate::counters::Counters;
use crate::partition::{HashPartitioner, Partitioner};

/// One table feeding a job.
#[derive(Clone, Debug)]
pub struct TableInput {
    /// Table name.
    pub table: String,
    /// Optional column-family projection (early projection, à la Pig).
    pub families: Option<Vec<String>>,
}

/// Where a job reads its input.
#[derive(Clone, Debug)]
pub enum JobInput {
    /// Scan one or more store tables; one map task per region, run on the
    /// region's node (Hadoop/HBase locality: "each mapper is executed on
    /// the NoSQL store node storing its input region data", §4.1.2).
    /// Multiple tables give Hive/Pig-style tagged join input — mappers see
    /// which table each row came from.
    Tables(Vec<TableInput>),
    /// Read a DFS file; one map task per part, run on the part's node.
    File(String),
}

impl JobInput {
    /// Convenience: full-table input.
    pub fn table(name: &str) -> Self {
        JobInput::Tables(vec![TableInput {
            table: name.to_owned(),
            families: None,
        }])
    }

    /// Convenience: table input restricted to families.
    pub fn table_families(name: &str, families: &[&str]) -> Self {
        JobInput::Tables(vec![TableInput {
            table: name.to_owned(),
            families: Some(families.iter().map(|f| (*f).to_owned()).collect()),
        }])
    }

    /// Convenience: two-table join input.
    pub fn two_tables(left: TableInput, right: TableInput) -> Self {
        JobInput::Tables(vec![left, right])
    }

    /// Convenience: DFS file input.
    pub fn file(name: &str) -> Self {
        JobInput::File(name.to_owned())
    }
}

impl TableInput {
    /// Full-table input.
    pub fn all(table: &str) -> Self {
        TableInput {
            table: table.to_owned(),
            families: None,
        }
    }

    /// Projected input.
    pub fn projected(table: &str, families: &[&str]) -> Self {
        TableInput {
            table: table.to_owned(),
            families: Some(families.iter().map(|f| (*f).to_owned()).collect()),
        }
    }
}

/// Where reduce output (or map output, for map-only jobs) goes.
#[derive(Clone, Debug)]
pub enum OutputSink {
    /// Write records to a DFS file (one part per task).
    File(String),
    /// Discard emitted records (jobs whose effect is store puts only).
    Discard,
    /// Ship records back to the driver (billed as network traffic).
    Collect,
}

/// A MapReduce job description.
#[derive(Clone)]
pub struct JobSpec {
    /// Job name (diagnostics).
    pub name: String,
    /// Input source.
    pub input: JobInput,
    /// Reducer count; 0 = map-only job whose mappers write straight to the
    /// store ("a special type of MapReduce job where there are no reducers
    /// and the output of mappers is written directly into the NoSQL store",
    /// §4.1.1).
    pub num_reducers: usize,
    /// Record sink.
    pub sink: OutputSink,
    /// Target table for `Emitter::put` calls, if any.
    pub put_table: Option<String>,
    /// Shuffle partitioner.
    pub partitioner: Arc<dyn Partitioner>,
    /// Rows fetched per scan RPC by table-input map tasks (default 10_000).
    pub scan_caching: Option<usize>,
    /// Server-side filter pushed into table-input map scans — the paper's
    /// DRJN pull phase ("custom server-side filters", §7.1): filtered rows
    /// are billed but never reach the mapper.
    pub scan_filter: Option<Arc<dyn rj_store::filter::ServerFilter>>,
}

impl JobSpec {
    /// A job with the default hash partitioner and discard sink.
    pub fn new(name: &str, input: JobInput, num_reducers: usize) -> Self {
        JobSpec {
            name: name.to_owned(),
            input,
            num_reducers,
            sink: OutputSink::Discard,
            put_table: None,
            partitioner: Arc::new(HashPartitioner),
            scan_caching: None,
            scan_filter: None,
        }
    }

    /// Sets the map-scan row cache size.
    pub fn scan_caching(mut self, rows: usize) -> Self {
        self.scan_caching = Some(rows);
        self
    }

    /// Pushes a server-side filter into the map scans.
    pub fn scan_filter(mut self, f: Arc<dyn rj_store::filter::ServerFilter>) -> Self {
        self.scan_filter = Some(f);
        self
    }

    /// Sets the sink.
    pub fn sink(mut self, sink: OutputSink) -> Self {
        self.sink = sink;
        self
    }

    /// Sets the put target table.
    pub fn put_table(mut self, table: &str) -> Self {
        self.put_table = Some(table.to_owned());
        self
    }

    /// Sets the partitioner.
    pub fn partitioner(mut self, p: Arc<dyn Partitioner>) -> Self {
        self.partitioner = p;
        self
    }
}

/// The outcome of one job run.
#[derive(Debug, Default)]
pub struct JobResult {
    /// Aggregate counters (including the modelled job duration).
    pub counters: Counters,
    /// Records collected back at the driver (empty unless the sink is
    /// [`OutputSink::Collect`]). Sorted by reducer, then key order.
    pub collected: Vec<(Vec<u8>, Vec<u8>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder() {
        let s = JobSpec::new("j", JobInput::table("t"), 2)
            .sink(OutputSink::Collect)
            .put_table("out");
        assert_eq!(s.name, "j");
        assert_eq!(s.num_reducers, 2);
        assert!(matches!(s.sink, OutputSink::Collect));
        assert_eq!(s.put_table.as_deref(), Some("out"));
    }

    #[test]
    fn input_helpers() {
        assert!(matches!(JobInput::table("x"), JobInput::Tables(_)));
        assert!(matches!(JobInput::file("f"), JobInput::File(_)));
        if let JobInput::Tables(ts) = JobInput::table_families("x", &["a", "b"]) {
            assert_eq!(ts[0].families.as_ref().unwrap().len(), 2);
        } else {
            panic!("expected table input");
        }
        if let JobInput::Tables(ts) =
            JobInput::two_tables(TableInput::all("l"), TableInput::projected("r", &["cf"]))
        {
            assert_eq!(ts.len(), 2);
            assert_eq!(ts[1].families.as_ref().unwrap(), &["cf".to_string()]);
        } else {
            panic!("expected two-table input");
        }
    }
}
