//! Mapper and reducer traits plus the emitter they write through.

use rj_store::cell::Mutation;
use rj_store::row::RowResult;

/// One input record handed to a mapper.
#[derive(Debug)]
pub enum InputRecord<'a> {
    /// A row scanned from a store table (table-input jobs). `table` tags
    /// the source, so join jobs over multiple tables can tell sides apart.
    Row {
        /// Source table name.
        table: &'a str,
        /// The scanned row.
        row: &'a RowResult,
    },
    /// A key/value record read from a DFS file (file-input jobs).
    Pair {
        /// Record key.
        key: &'a [u8],
        /// Record value.
        value: &'a [u8],
    },
}

impl<'a> InputRecord<'a> {
    /// The record's key (row key or pair key).
    pub fn key(&self) -> &'a [u8] {
        match self {
            InputRecord::Row { row, .. } => &row.key,
            InputRecord::Pair { key, .. } => key,
        }
    }

    /// The row, if this is table input.
    pub fn row(&self) -> Option<&'a RowResult> {
        match self {
            InputRecord::Row { row, .. } => Some(row),
            InputRecord::Pair { .. } => None,
        }
    }

    /// The source table, if this is table input.
    pub fn table(&self) -> Option<&'a str> {
        match self {
            InputRecord::Row { table, .. } => Some(table),
            InputRecord::Pair { .. } => None,
        }
    }
}

/// Collects task output: shuffle pairs and/or direct store puts.
#[derive(Default)]
pub struct Emitter {
    pub(crate) pairs: Vec<(Vec<u8>, Vec<u8>)>,
    pub(crate) puts: Vec<(Vec<u8>, Mutation)>,
}

impl Emitter {
    /// Emits a key/value pair into the shuffle (map phase) or the job sink
    /// (reduce phase).
    pub fn emit(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) {
        self.pairs.push((key.into(), value.into()));
    }

    /// Issues a put against the job's output table (map-only index builds,
    /// Algorithm 1/3; BFHM reducers, Algorithm 5).
    pub fn put(&mut self, row_key: impl Into<Vec<u8>>, mutation: Mutation) {
        self.puts.push((row_key.into(), mutation));
    }

    /// Number of pairs emitted so far.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }
}

/// A map task. One instance is created per input split (region or DFS
/// part) via the job's mapper factory.
pub trait Mapper: Send {
    /// Processes one input record.
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter);

    /// Called once after the split is exhausted — where, e.g., the IJLMR
    /// query mappers emit their buffered local top-k lists (§4.1.2).
    fn finish(&mut self, _out: &mut Emitter) {}

    /// Polled between records; returning `false` stops the split early
    /// (sampling mappers use this so unread scan batches are never fetched
    /// or billed).
    fn wants_more(&self) -> bool {
        true
    }
}

/// A reduce task (also used as a combiner).
pub trait Reducer: Send {
    /// Processes one key group. `values` are in deterministic
    /// (map-task-index, emit-order) order.
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter);

    /// Called once after the reducer's last group.
    fn finish(&mut self, _out: &mut Emitter) {}

    /// Self-reported resident state size, sampled by the engine after each
    /// group to drive the §7.2 memory-footprint experiment.
    fn state_bytes(&self) -> u64 {
        0
    }
}

/// Blanket helper: build a mapper from a closure (tests, simple jobs).
pub struct FnMapper<F>(pub F);

impl<F> Mapper for FnMapper<F>
where
    F: FnMut(InputRecord<'_>, &mut Emitter) + Send,
{
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        (self.0)(input, out);
    }
}

/// Blanket helper: build a reducer from a closure.
pub struct FnReducer<F>(pub F);

impl<F> Reducer for FnReducer<F>
where
    F: FnMut(&[u8], &[Vec<u8>], &mut Emitter) + Send,
{
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        (self.0)(key, values, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_both_channels() {
        let mut e = Emitter::default();
        e.emit(b"k".to_vec(), b"v".to_vec());
        e.put(b"row".to_vec(), Mutation::put("cf", b"q", b"x".to_vec()));
        assert_eq!(e.pair_count(), 1);
        assert_eq!(e.puts.len(), 1);
    }

    #[test]
    fn fn_mapper_adapts_closures() {
        let mut m = FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
            out.emit(input.key().to_vec(), b"seen".to_vec());
        });
        let mut e = Emitter::default();
        m.map(
            InputRecord::Pair {
                key: b"a",
                value: b"1",
            },
            &mut e,
        );
        assert_eq!(e.pairs[0].0, b"a".to_vec());
    }

    #[test]
    fn input_record_accessors() {
        let pair = InputRecord::Pair {
            key: b"k",
            value: b"v",
        };
        assert_eq!(pair.key(), b"k");
        assert!(pair.row().is_none());
    }
}
