//! A simulated distributed filesystem for MapReduce intermediates.
//!
//! Hive materializes the full join result into HDFS between its two jobs
//! (§3.1) — the dominant cost in the paper's Hive numbers — so the
//! simulation needs a DFS with byte-accurate accounting. Files are ordered
//! lists of `(key, value)` records grouped into **parts**; each part lives
//! on the node of the task that wrote it (HDFS writes the first replica
//! locally). Replication traffic for the remaining replicas is billed by
//! the engine when parts are written.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// One record: an opaque key/value pair.
pub type Record = (Vec<u8>, Vec<u8>);

/// A contiguous part of a file, resident on one node.
#[derive(Clone, Debug, Default)]
pub struct DfsPart {
    /// Node holding the primary replica.
    pub node: usize,
    /// Records in write order.
    pub records: Vec<Record>,
    /// Total bytes.
    pub bytes: u64,
}

/// A file: ordered parts.
#[derive(Clone, Debug, Default)]
pub struct DfsFile {
    /// Parts in part-number order (reducer 0's output first, etc.).
    pub parts: Vec<DfsPart>,
}

impl DfsFile {
    /// Total records across parts.
    pub fn record_count(&self) -> usize {
        self.parts.iter().map(|p| p.records.len()).sum()
    }

    /// Total bytes across parts.
    pub fn byte_size(&self) -> u64 {
        self.parts.iter().map(|p| p.bytes).sum()
    }

    /// Iterates records in (part, offset) order.
    pub fn iter_records(&self) -> impl Iterator<Item = &Record> {
        self.parts.iter().flat_map(|p| p.records.iter())
    }
}

/// The namespace: file name → file.
#[derive(Clone, Default)]
pub struct Dfs {
    files: Arc<RwLock<HashMap<String, DfsFile>>>,
}

impl Dfs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Writes (or replaces) a file.
    pub fn write(&self, name: &str, file: DfsFile) {
        self.files.write().insert(name.to_owned(), file);
    }

    /// Reads a file (cheap clone of `Arc`-less data — used by map tasks,
    /// which are billed by the engine).
    pub fn read(&self, name: &str) -> Option<DfsFile> {
        self.files.read().get(name).cloned()
    }

    /// Deletes a file, returning whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Total bytes stored (all files).
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(DfsFile::byte_size).sum()
    }
}

/// Computes the byte size of a record as stored/shipped.
pub fn record_weight(key: &[u8], value: &[u8]) -> u64 {
    (key.len() + value.len() + 8) as u64 // 8 bytes framing overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(node: usize, n: usize) -> DfsPart {
        let records: Vec<Record> = (0..n).map(|i| (vec![i as u8], vec![i as u8; 2])).collect();
        let bytes = records.iter().map(|(k, v)| record_weight(k, v)).sum();
        DfsPart {
            node,
            records,
            bytes,
        }
    }

    #[test]
    fn write_read_remove() {
        let dfs = Dfs::new();
        dfs.write(
            "f",
            DfsFile {
                parts: vec![part(0, 3), part(1, 2)],
            },
        );
        let f = dfs.read("f").unwrap();
        assert_eq!(f.record_count(), 5);
        assert!(f.byte_size() > 0);
        assert!(dfs.exists("f"));
        assert!(dfs.remove("f"));
        assert!(!dfs.exists("f"));
        assert!(!dfs.remove("f"));
    }

    #[test]
    fn iter_records_preserves_part_order() {
        let f = DfsFile {
            parts: vec![part(0, 2), part(1, 1)],
        };
        let keys: Vec<u8> = f.iter_records().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![0, 1, 0]);
    }

    #[test]
    fn total_bytes_sums_files() {
        let dfs = Dfs::new();
        dfs.write(
            "a",
            DfsFile {
                parts: vec![part(0, 1)],
            },
        );
        dfs.write(
            "b",
            DfsFile {
                parts: vec![part(0, 2)],
            },
        );
        assert_eq!(
            dfs.total_bytes(),
            dfs.read("a").unwrap().byte_size() + dfs.read("b").unwrap().byte_size()
        );
    }
}
