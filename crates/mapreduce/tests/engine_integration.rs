//! Engine integration tests: multi-table tagged input, DFS replication
//! accounting, collect-sink billing, and sampling early-stop.

use rj_mapreduce::job::{JobInput, JobSpec, OutputSink, TableInput};
use rj_mapreduce::task::{Emitter, FnMapper, FnReducer, InputRecord, Mapper};
use rj_mapreduce::MapReduceEngine;
use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::costmodel::CostModel;
use rj_store::keys;

fn cluster_two_tables(rows: u64) -> Cluster {
    let c = Cluster::new(3, CostModel::test());
    for t in ["a", "b"] {
        c.create_table(t, &["cf"]).unwrap();
        let client = c.client();
        for i in 0..rows {
            client
                .put(
                    t,
                    &keys::encode_u64(i),
                    Mutation::put("cf", b"v", t.as_bytes().to_vec()),
                )
                .unwrap();
        }
    }
    c
}

#[test]
fn two_table_input_tags_rows_by_source() {
    let c = cluster_two_tables(10);
    let engine = MapReduceEngine::new(c);
    let spec = JobSpec::new(
        "tagged",
        JobInput::two_tables(TableInput::all("a"), TableInput::all("b")),
        1,
    )
    .sink(OutputSink::Collect);
    let result = engine
        .run(
            &spec,
            &|| {
                Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                    out.emit(input.table().unwrap().as_bytes().to_vec(), b"1".to_vec());
                }))
            },
            Some(&|| {
                Box::new(FnReducer(
                    |key: &[u8], values: &[Vec<u8>], out: &mut Emitter| {
                        out.emit(key.to_vec(), values.len().to_string().into_bytes());
                    },
                ))
            }),
            None,
        )
        .unwrap();
    let mut counts: Vec<(String, String)> = result
        .collected
        .iter()
        .map(|(k, v)| {
            (
                String::from_utf8_lossy(k).into_owned(),
                String::from_utf8_lossy(v).into_owned(),
            )
        })
        .collect();
    counts.sort();
    assert_eq!(
        counts,
        vec![
            ("a".to_owned(), "10".to_owned()),
            ("b".to_owned(), "10".to_owned())
        ]
    );
    assert_eq!(result.counters.map_input_records, 20);
}

#[test]
fn dfs_file_sink_charges_replication_traffic() {
    let c = cluster_two_tables(50);
    let engine = MapReduceEngine::new(c.clone());
    let before = c.metrics().snapshot();
    let spec =
        JobSpec::new("tofile", JobInput::table("a"), 0).sink(OutputSink::File("out/f".into()));
    engine
        .run(
            &spec,
            &|| {
                Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                    out.emit(input.key().to_vec(), vec![0u8; 100]);
                }))
            },
            None,
            None,
        )
        .unwrap();
    let d = c.metrics().snapshot().delta_since(&before);
    let file = engine.dfs().read("out/f").unwrap();
    assert_eq!(file.record_count(), 50);
    // Replication factor 2 ⇒ one extra copy of every byte crosses the net.
    assert!(
        d.network_bytes >= file.byte_size(),
        "replication traffic missing: {} < {}",
        d.network_bytes,
        file.byte_size()
    );
}

#[test]
fn collect_sink_bills_driver_transfer() {
    let c = cluster_two_tables(20);
    let engine = MapReduceEngine::new(c.clone());
    let before = c.metrics().snapshot();
    let spec = JobSpec::new("collect", JobInput::table("a"), 0).sink(OutputSink::Collect);
    let result = engine
        .run(
            &spec,
            &|| {
                Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                    out.emit(input.key().to_vec(), vec![0u8; 64]);
                }))
            },
            None,
            None,
        )
        .unwrap();
    assert_eq!(result.collected.len(), 20);
    let d = c.metrics().snapshot().delta_since(&before);
    assert!(d.network_bytes >= 20 * 64, "driver shipping not billed");
}

#[test]
fn wants_more_stops_scans_early_and_cheaply() {
    struct TakeThree {
        taken: usize,
    }
    impl Mapper for TakeThree {
        fn map(&mut self, _input: InputRecord<'_>, out: &mut Emitter) {
            self.taken += 1;
            out.emit(b"k".to_vec(), b"v".to_vec());
        }
        fn wants_more(&self) -> bool {
            self.taken < 3
        }
    }
    let c = Cluster::new(1, CostModel::test());
    c.create_table("t", &["cf"]).unwrap();
    let client = c.client();
    for i in 0..1000u64 {
        client
            .put(
                "t",
                &keys::encode_u64(i),
                Mutation::put("cf", b"v", b"x".to_vec()),
            )
            .unwrap();
    }
    let engine = MapReduceEngine::new(c.clone());
    let before = c.metrics().snapshot();
    let spec = JobSpec::new("sample", JobInput::table("t"), 0)
        .sink(OutputSink::Collect)
        .scan_caching(4);
    let result = engine
        .run(&spec, &|| Box::new(TakeThree { taken: 0 }), None, None)
        .unwrap();
    assert_eq!(result.collected.len(), 3);
    let d = c.metrics().snapshot().delta_since(&before);
    assert!(
        d.kv_reads <= 8,
        "early stop should avoid scanning the full table (read {})",
        d.kv_reads
    );
}

#[test]
fn deterministic_across_runs() {
    // Parallel map tasks must not leak scheduling nondeterminism.
    let run_once = || {
        let c = cluster_two_tables(200);
        let engine = MapReduceEngine::new(c);
        let spec = JobSpec::new("det", JobInput::table("a"), 3).sink(OutputSink::Collect);
        let result = engine
            .run(
                &spec,
                &|| {
                    Box::new(FnMapper(|input: InputRecord<'_>, out: &mut Emitter| {
                        out.emit(input.key().to_vec(), b"x".to_vec());
                    }))
                },
                Some(&|| {
                    Box::new(FnReducer(
                        |key: &[u8], values: &[Vec<u8>], out: &mut Emitter| {
                            out.emit(key.to_vec(), values.len().to_string().into_bytes());
                        },
                    ))
                }),
                None,
            )
            .unwrap();
        (result.collected, result.counters.shuffle_bytes)
    };
    let (a, sa) = run_once();
    let (b, sb) = run_once();
    assert_eq!(a, b);
    assert_eq!(sa, sb);
}
