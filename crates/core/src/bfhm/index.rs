//! BFHM index creation (paper Algorithm 5).
//!
//! One MapReduce job per relation: mappers partition tuples into score
//! buckets; each reducer builds the bucket's hybrid filter, emits one
//! reverse-mapping put per tuple (`bucket|bitpos → {rowkey: join value,
//! score}`) and finally the bucket blob row. When no filter size is
//! pinned, a counting pre-pass sizes `m` for the most heavily populated
//! bucket across **both** relations at the target false-positive rate
//! (§7.1's configuration rule) — both sides must share `m` for bitmaps to
//! be AND-able.

use rj_mapreduce::job::{JobInput, JobSpec, OutputSink, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper, Reducer};
use rj_mapreduce::MapReduceEngine;
use rj_sketch::blob::{BfhmBlob, BlobCodec};
use rj_sketch::histogram::ScoreHistogram;
use rj_sketch::hybrid::HybridFilter;
use rj_store::cell::Mutation;
use rj_store::keys;

use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::indexutil::BuildStats;
use crate::query::{JoinSide, RankJoinQuery};

use super::BfhmConfig;

/// Build statistics for the BFHM index.
pub type BfhmBuildStats = BuildStats;

/// Canonical index-table name for a query pair.
pub fn index_table_name(query: &RankJoinQuery) -> String {
    format!("bfhm__{}__{}", query.left.label, query.right.label)
}

/// Row key of a bucket blob row.
pub(crate) fn blob_row_key(bucket: u32) -> Vec<u8> {
    keys::encode_u32(bucket).to_vec()
}

/// Row key of a reverse-mapping row (`bucket|bitpos`, §5.1).
pub(crate) fn reverse_row_key(bucket: u32, pos: u32) -> Vec<u8> {
    keys::composite(&[&keys::encode_u32(bucket), &keys::encode_u32(pos)])
}

/// Qualifier of the blob cell inside a bucket row.
pub(crate) const BLOB_QUALIFIER: &[u8] = b"blob";

/// Row key of the index metadata row (sorts after all bucket rows).
pub(crate) const META_ROW: &[u8] = b"\xff\xff\xffmeta";
/// Metadata qualifier: filter size `m` (u64 BE).
pub(crate) const META_M: &[u8] = b"m";
/// Metadata qualifier: bucket count (u32 BE).
pub(crate) const META_BUCKETS: &[u8] = b"buckets";

struct BucketPartitionMapper {
    side: JoinSide,
    hist: ScoreHistogram,
}

impl Mapper for BucketPartitionMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((join_value, score)) = self.side.extract(row) else {
            return;
        };
        let bucket = self.hist.bucket_of(score);
        let mut value = Vec::with_capacity(row.key.len() + join_value.len() + 16);
        codec::put_f64(&mut value, score);
        codec::put_field(&mut value, &row.key);
        codec::put_field(&mut value, &join_value);
        out.emit(keys::encode_u32(bucket).to_vec(), value);
    }
}

struct SumReducer;

impl Reducer for SumReducer {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let total: u64 = values
            .iter()
            .filter_map(|v| v.as_slice().try_into().ok().map(u64::from_be_bytes))
            .sum();
        out.emit(key.to_vec(), total.to_be_bytes().to_vec());
    }
}

struct BucketBuildReducer {
    label: String,
    m: usize,
    codec: BlobCodec,
}

impl Reducer for BucketBuildReducer {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let Some(bucket) = keys::decode_u32(key) else {
            return;
        };
        let mut filter = HybridFilter::new(self.m);
        let mut min_score = f64::INFINITY;
        let mut max_score = f64::NEG_INFINITY;
        for v in values {
            let mut r = codec::Reader::new(v);
            let (Ok(score), Ok(row_key), Ok(join_value)) = (r.f64(), r.field(), r.field()) else {
                continue;
            };
            let pos = filter.insert(join_value);
            min_score = min_score.min(score);
            max_score = max_score.max(score);
            // Reverse-mapping row (Algorithm 5 line 17).
            out.put(
                reverse_row_key(bucket, pos),
                Mutation::put(
                    &self.label,
                    row_key,
                    codec::encode_value_score(join_value, score),
                ),
            );
        }
        // Bucket blob row (Algorithm 5 line 19).
        let blob = BfhmBlob::new(filter, min_score, max_score);
        out.put(
            blob_row_key(bucket),
            Mutation::put(&self.label, BLOB_QUALIFIER, blob.encode(self.codec)),
        );
    }

    fn state_bytes(&self) -> u64 {
        // Uncompressed hybrid-filter footprint: bitmap + counter table —
        // the §7.2 reducer memory metric.
        (self.m / 8) as u64
    }
}

/// Sizes `m` via a counting job: the most heavily populated bucket of
/// either relation, at `target_fpp` (single-hash filter: `m = n / fpp`).
fn auto_filter_bits(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    config: &BfhmConfig,
    stats: &mut BuildStats,
) -> Result<usize> {
    let hist = ScoreHistogram::new(config.num_buckets);
    let spec = JobSpec::new(
        "bfhm-count",
        JobInput::two_tables(
            TableInput::projected(
                &query.left.table,
                &[&query.left.join_col.0, &query.left.score_col.0],
            ),
            TableInput::projected(
                &query.right.table,
                &[&query.right.join_col.0, &query.right.score_col.0],
            ),
        ),
        engine.cluster().num_nodes(),
    )
    .sink(OutputSink::Collect);
    let left = query.left.clone();
    let right = query.right.clone();
    let left_table = query.left.table.clone();
    let result = engine.run(
        &spec,
        &move || {
            // The mapper tags by side; it must handle rows of either
            // table, so pick the matching descriptor lazily.
            Box::new(DualCountMapper {
                left: left.clone(),
                right: right.clone(),
                left_table: left_table.clone(),
                hist,
            })
        },
        Some(&|| Box::new(SumReducer)),
        Some(&|| Box::new(SumReducer)),
    )?;
    stats.absorb(result.counters);
    let max_bucket = result
        .collected
        .iter()
        .filter_map(|(_k, v)| v.as_slice().try_into().ok().map(u64::from_be_bytes))
        .max()
        .unwrap_or(0);
    Ok((((max_bucket.max(1) as f64) / config.target_fpp).ceil() as usize).max(64))
}

struct DualCountMapper {
    left: JoinSide,
    right: JoinSide,
    left_table: String,
    hist: ScoreHistogram,
}

impl Mapper for DualCountMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let (Some(table), Some(row)) = (input.table(), input.row()) else {
            return;
        };
        let (tag, side) = if table == self.left_table {
            (0u8, &self.left)
        } else {
            (1u8, &self.right)
        };
        let Some((_join, score)) = side.extract(row) else {
            return;
        };
        let bucket = self.hist.bucket_of(score);
        let mut key = Vec::with_capacity(5);
        key.push(tag);
        key.extend_from_slice(&keys::encode_u32(bucket));
        out.emit(key, 1u64.to_be_bytes().to_vec());
    }
}

/// Builds the BFHM index for both sides of `query` into `table`.
///
/// Returns the build statistics and the filter size `m` actually used.
pub fn build_pair(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    table: &str,
    config: &BfhmConfig,
) -> Result<(BuildStats, usize)> {
    if config.num_buckets == 0 {
        return Err(RankJoinError::Internal("BFHM needs >= 1 bucket"));
    }
    let cluster = engine.cluster();
    let mut stats = BuildStats::default();
    let m = match config.filter_bits {
        Some(m) => m.max(8),
        None => auto_filter_bits(engine, query, config, &mut stats)?,
    };

    // Pre-split on bucket-number boundaries (the key domain is known).
    let pieces = cluster.num_nodes() * 2;
    let splits: Vec<Vec<u8>> = (1..pieces)
        .map(|i| blob_row_key(config.num_buckets * i as u32 / pieces as u32))
        .filter(|k| k != &blob_row_key(0))
        .collect();
    cluster.create_table_with_splits(
        table,
        &[query.left.label.as_str(), query.right.label.as_str()],
        &splits,
    )?;

    let hist = ScoreHistogram::new(config.num_buckets);
    for side in [&query.left, &query.right] {
        let spec = JobSpec::new(
            &format!("bfhm-build-{}", side.label),
            JobInput::Tables(vec![TableInput::projected(
                &side.table,
                &[&side.join_col.0, &side.score_col.0],
            )]),
            cluster.num_nodes(),
        )
        .put_table(table);
        let side_cl = side.clone();
        let label = side.label.clone();
        let codec_sel = config.codec;
        let result = engine.run(
            &spec,
            &move || {
                Box::new(BucketPartitionMapper {
                    side: side_cl.clone(),
                    hist,
                })
            },
            Some(&move || {
                Box::new(BucketBuildReducer {
                    label: label.clone(),
                    m,
                    codec: codec_sel,
                })
            }),
            None,
        )?;
        stats.absorb(result.counters);
    }

    // Metadata row (under both families so either side's maintainer can
    // read it): the query processor and the §6 maintainer need m and the
    // bucket count.
    let client = cluster.client();
    let mut meta_muts = Vec::new();
    for label in [&query.left.label, &query.right.label] {
        meta_muts.push(Mutation::put(
            label,
            META_M,
            (m as u64).to_be_bytes().to_vec(),
        ));
        meta_muts.push(Mutation::put(
            label,
            META_BUCKETS,
            keys::encode_u32(config.num_buckets).to_vec(),
        ));
    }
    client.mutate_row(table, META_ROW, meta_muts)?;

    stats.index_bytes = cluster.table(table)?.disk_size();
    Ok((stats, m))
}

/// Reads `(m, num_buckets)` from the index metadata row.
pub(crate) fn read_meta(
    cluster: &rj_store::cluster::Cluster,
    table: &str,
    left_label: &str,
) -> Result<(usize, u32)> {
    let client = cluster.client();
    let row = client
        .get(table, META_ROW)?
        .ok_or(RankJoinError::Internal("BFHM meta row missing"))?;
    let m = row
        .value(left_label, META_M)
        .and_then(|v| v.as_ref().try_into().ok().map(u64::from_be_bytes))
        .ok_or(RankJoinError::Internal("BFHM meta m missing"))?;
    let buckets = row
        .value(left_label, META_BUCKETS)
        .and_then(|v| keys::decode_u32(v.as_ref()))
        .ok_or(RankJoinError::Internal("BFHM meta buckets missing"))?;
    Ok((m as usize, buckets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;

    #[test]
    fn build_writes_blobs_reverse_rows_and_meta() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        let config = BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 12),
            ..Default::default()
        };
        let (stats, m) = build_pair(&engine, &q, "bfhm_idx", &config).unwrap();
        assert_eq!(m, 1 << 12);
        assert!(stats.index_bytes > 0);
        assert_eq!(stats.jobs.len(), 2, "no counting job when m is pinned");

        let (meta_m, meta_buckets) = read_meta(&c, "bfhm_idx", "R1").unwrap();
        assert_eq!(meta_m, m);
        assert_eq!(meta_buckets, 10);

        // Fig. 5: R1 bucket 0 holds r1_02 (c, 0.93) and r1_10 (a, 1.00).
        let client = c.client();
        let row = client.get("bfhm_idx", &blob_row_key(0)).unwrap().unwrap();
        let blob_bytes = row.value("R1", BLOB_QUALIFIER).expect("R1 blob");
        let blob = BfhmBlob::decode(blob_bytes).unwrap();
        assert_eq!(blob.min_score, 0.93);
        assert_eq!(blob.max_score, 1.00);
        assert_eq!(blob.filter.n_inserted(), 2);
        assert_eq!(blob.filter.set_bit_count(), 2, "a and c: distinct bits");

        // R2 bucket 0 holds r2_02 (b, 0.91), r2_11 (b, 0.92): one bit,
        // counter 2.
        let blob2 = BfhmBlob::decode(row.value("R2", BLOB_QUALIFIER).expect("R2 blob")).unwrap();
        assert_eq!(blob2.min_score, 0.91);
        assert_eq!(blob2.max_score, 0.92);
        let pos = blob2.filter.position(b"b");
        assert_eq!(blob2.filter.counter(pos), 2);

        // Reverse row for that bit: two cells (both b tuples).
        let rev = client
            .get("bfhm_idx", &reverse_row_key(0, pos))
            .unwrap()
            .expect("reverse row");
        assert_eq!(rev.family_cells("R2").count(), 2);
        let cell = rev.family_cells("R2").next().unwrap();
        let (join, score) = codec::decode_value_score(&cell.value).unwrap();
        assert_eq!(join, b"b".to_vec());
        assert!(score == 0.91 || score == 0.92);
    }

    #[test]
    fn auto_sizing_runs_count_job() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c);
        let config = BfhmConfig {
            num_buckets: 10,
            filter_bits: None,
            target_fpp: 0.05,
            ..Default::default()
        };
        let (stats, m) = build_pair(&engine, &q, "bfhm_idx", &config).unwrap();
        assert_eq!(stats.jobs.len(), 3, "count job + two build jobs");
        // Most populated bucket: R2 bucket 6 has 4 tuples → m >= 4/0.05.
        assert!(m >= 80, "m = {m}");
    }

    #[test]
    fn bucket_rows_sort_before_their_reverse_rows() {
        // Key-layout invariant: blob(b) < reverse(b, pos) < blob(b+1),
        // and META_ROW after everything.
        let blob1 = blob_row_key(1);
        let rev1 = reverse_row_key(1, 999);
        let blob2 = blob_row_key(2);
        assert!(blob1 < rev1);
        assert!(rev1 < blob2);
        // META_ROW sorts after any realistic bucket (buckets are far below
        // 2^24, so their keys start with a 0x00 byte).
        assert!(META_ROW.to_vec() > reverse_row_key(1 << 20, u32::MAX));
    }
}
