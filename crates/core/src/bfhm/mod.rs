//! BFHM — the Bloom Filter Histogram Matrix rank join (paper §5).
//!
//! The BFHM is a two-level statistical structure: an equi-width histogram
//! on the score axis whose buckets each hold a **hybrid single-hash Bloom
//! filter with counters** over the join values of the bucket's tuples,
//! Golomb-compressed into a "blob", plus **reverse-mapping rows** keyed
//! `bucket|bitpos` that map set bits back to actual tuples.
//!
//! Query processing (§5.2) runs in two phases:
//!
//! 1. **estimation** — fetch blob rows for the two relations alternately
//!    in descending score order, "join" bucket pairs by ANDing their
//!    bitmaps and multiplying counters (scaled by the §5.3 α factor that
//!    compensates for false positives), until no unexamined bucket
//!    combination can beat the estimated k-th result;
//! 2. **reverse mapping** — fetch the `bucket|bitpos` rows of the
//!    surviving bucket pairs, join the *actual* tuples (re-checking join
//!    values, so Bloom collisions cost fetches but never wrong results),
//!    and assemble the final top-k.
//!
//! A guarantee loop (§5.3) then re-examines purged/unfetched buckets whose
//! maximum attainable score could still displace the k-th actual result —
//! this is what makes the algorithm's recall provably 100% (Theorem 1)
//! despite its probabilistic core.
//!
//! Set the `RJ_BFHM_DEBUG` environment variable to trace the guarantee
//! loop's per-round state (fetched buckets, cursors, estimate counts) on
//! stderr.

mod index;
pub mod maintenance;
mod query;

pub use index::{build_pair, index_table_name, BfhmBuildStats};
pub use query::{run, run_seeded, run_with_mode};
pub(crate) use query::{BfhmCore, BfhmCursor};

use rj_sketch::blob::BlobCodec;
use rj_sketch::hybrid::AlphaMode;

/// How the estimation phase bounds the k-th estimated result (see
/// DESIGN.md §5: the paper's prose says "minimum score of the k'th
/// estimated result" but its §5.2 walk-through terminates with the k-th
/// estimate's *maximum* score and bucket-boundary bounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Reproduces the §5.2 walk-through: k-th estimate's **max** score;
    /// unexamined combinations bounded by bucket boundaries. Terminates
    /// earlier; the §5.3 guarantee loop restores 100% recall.
    #[default]
    PaperFigure,
    /// k-th estimate's **min** score; fetched sides bounded by actual
    /// blob maxima. Never terminates estimation earlier than the paper's
    /// rule.
    Conservative,
}

/// BFHM configuration.
#[derive(Clone, Debug)]
pub struct BfhmConfig {
    /// Histogram buckets (the paper runs 100, 500, and 1000).
    pub num_buckets: u32,
    /// Target false-positive probability used to size filters for the
    /// most-populated bucket (the paper's 5%).
    pub target_fpp: f64,
    /// Explicit filter size `m` in bits; `None` auto-sizes with a counting
    /// pre-pass over both relations.
    pub filter_bits: Option<usize>,
    /// Blob wire format (Golomb per the paper; Raw for the ablation).
    pub codec: BlobCodec,
    /// α false-positive compensation (§5.3); `Off` for the ablation.
    pub alpha: AlphaMode,
    /// Estimation-termination bound mode.
    pub bound_mode: BoundMode,
}

impl Default for BfhmConfig {
    fn default() -> Self {
        BfhmConfig {
            num_buckets: 100,
            target_fpp: 0.05,
            filter_bits: None,
            codec: BlobCodec::Golomb,
            alpha: AlphaMode::Compensated,
            bound_mode: BoundMode::PaperFigure,
        }
    }
}

impl BfhmConfig {
    /// Config with a given bucket count, defaults elsewhere.
    pub fn with_buckets(num_buckets: u32) -> Self {
        BfhmConfig {
            num_buckets,
            ..Default::default()
        }
    }
}
