//! Online updates to the BFHM (paper §6).
//!
//! Blob rows cannot be rewritten on every base-table mutation, so updates
//! append **insertion/tombstone records** to the bucket row — key-value
//! pairs carrying the tuple's full BFHM information (row key, join value,
//! score) under the original mutation's timestamp — while reverse-mapping
//! rows are maintained directly with vanilla puts/deletes. "This
//! information allows anyone retrieving a bucket row to replay all row
//! mutations in timestamp order and reconstruct the up-to-date blob from
//! the original blob", after which the blob is written back and consumed
//! records are purged **in a single row-level-atomic operation**.
//!
//! Write-back can run eagerly (when query processing fetches the bucket),
//! lazily (after results are returned), or offline ([`refresh_bucket`] /
//! [`compact_if_pending`], the "thread periodically probing bucket rows"
//! variant, optionally gated by a mutation-count threshold).
//!
//! One conservative deviation, documented in DESIGN.md: replayed deletes
//! do not shrink the bucket's min/max score range (the true extrema of
//! the survivors are unknown without a recount). Stale extrema only ever
//! widen bounds — termination tests stay sound, at worst fetching more.

use rj_sketch::blob::{BfhmBlob, BlobCodec};
use rj_sketch::bloom::SingleHashBloom;
use rj_sketch::histogram::ScoreHistogram;
use rj_store::cell::Mutation;
use rj_store::cluster::Cluster;
use rj_store::row::RowResult;

use crate::codec;
use crate::error::Result;

use super::index::{blob_row_key, read_meta, reverse_row_key, BLOB_QUALIFIER};

/// When reconstructed blobs get written back during query processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WriteBackPolicy {
    /// At the beginning of query processing, as buckets are fetched — the
    /// paper's worst case for query-time overhead (§7.2 measures < 10%).
    Eager,
    /// After the query results are returned.
    Lazy,
    /// Never during queries (an offline process owns compaction).
    #[default]
    Off,
}

/// Mutation-record op tags.
const OP_INSERT: u8 = b'i';
const OP_DELETE: u8 = b'd';

/// Qualifier of a mutation record: `op ‖ ts(u64 BE) ‖ base row key`.
fn record_qualifier(op: u8, ts: u64, row_key: &[u8]) -> Vec<u8> {
    let mut q = Vec::with_capacity(9 + row_key.len());
    q.push(op);
    q.extend_from_slice(&ts.to_be_bytes());
    q.extend_from_slice(row_key);
    q
}

fn parse_record_qualifier(q: &[u8]) -> Option<(u8, u64, &[u8])> {
    if q.len() < 9 || (q[0] != OP_INSERT && q[0] != OP_DELETE) {
        return None;
    }
    let ts = u64::from_be_bytes(q[1..9].try_into().ok()?);
    Some((q[0], ts, &q[9..]))
}

/// Outcome of replaying a bucket row.
pub(crate) struct ResolvedBucket {
    /// The up-to-date blob; `None` when the bucket is empty.
    pub blob: Option<BfhmBlob>,
    /// Whether any pending mutation records were replayed.
    pub had_mutations: bool,
    /// Timestamp of the latest replayed mutation (0 when none).
    pub latest_ts: u64,
    /// Qualifiers of the consumed records (for write-back purging).
    pub consumed_qualifiers: Vec<Vec<u8>>,
}

/// Replays a fetched bucket row: decodes the stored blob (if any) and
/// applies pending insertion/tombstone records in timestamp order.
/// `m` sizes the filter when the bucket had no blob yet.
pub(crate) fn resolve_bucket_row(row: &RowResult, label: &str, m: usize) -> Result<ResolvedBucket> {
    let mut blob: Option<BfhmBlob> = match row.value(label, BLOB_QUALIFIER) {
        Some(bytes) => Some(BfhmBlob::decode(bytes)?),
        None => None,
    };

    // Collect pending records.
    let mut records: Vec<(u64, u8, Vec<u8>, f64)> = Vec::new(); // (ts, op, join, score)
    let mut consumed = Vec::new();
    for cell in row.family_cells(label) {
        let Some((op, ts, _key)) = parse_record_qualifier(&cell.qualifier) else {
            continue;
        };
        let Ok((join, score)) = codec::decode_value_score(&cell.value) else {
            continue;
        };
        records.push((ts, op, join, score));
        consumed.push(cell.qualifier.clone());
    }
    if records.is_empty() {
        return Ok(ResolvedBucket {
            blob,
            had_mutations: false,
            latest_ts: 0,
            consumed_qualifiers: Vec::new(),
        });
    }
    // Timestamp order; inserts before deletes at equal timestamps so a
    // same-instant insert+delete cancels.
    records.sort_by_key(|(ts, op, _, _)| (*ts, u8::from(*op == OP_DELETE)));
    let latest_ts = records.last().map(|(ts, ..)| *ts).unwrap_or(0);

    let mut b = blob.take().unwrap_or_else(|| {
        BfhmBlob::new(
            rj_sketch::hybrid::HybridFilter::new(m),
            f64::INFINITY,
            f64::NEG_INFINITY,
        )
    });
    for (_ts, op, join, score) in &records {
        if *op == OP_INSERT {
            b.filter.insert(join);
            b.min_score = b.min_score.min(*score);
            b.max_score = b.max_score.max(*score);
        } else {
            // Deletes shrink the filter but, conservatively, not the
            // score extrema (see module docs).
            let _ = b.filter.remove(join);
        }
    }
    let blob = if b.filter.n_inserted() == 0 {
        None
    } else {
        Some(b)
    };
    Ok(ResolvedBucket {
        blob,
        had_mutations: true,
        latest_ts,
        consumed_qualifiers: consumed,
    })
}

/// Writes a reconstructed blob back and purges the consumed records, in
/// one atomic row mutation stamped with the latest replayed timestamp.
#[allow(clippy::too_many_arguments)] // one call site, mirrors the row layout
pub(crate) fn write_back_bucket(
    cluster: &Cluster,
    table: &str,
    label: &str,
    bucket: u32,
    blob: &BfhmBlob,
    codec_sel: BlobCodec,
    latest_ts: u64,
    consumed_qualifiers: &[Vec<u8>],
) -> Result<()> {
    let client = cluster.client();
    let mut muts = vec![Mutation::put_at(
        label,
        BLOB_QUALIFIER,
        blob.encode(codec_sel),
        latest_ts,
    )];
    for q in consumed_qualifiers {
        muts.push(Mutation::delete_at(label, q, latest_ts));
    }
    client.mutate_row(table, &blob_row_key(bucket), muts)?;
    Ok(())
}

/// Reads one bucket row and compacts it if mutation records are pending
/// (the lazy/offline write-back path). Returns the number of records
/// compacted.
pub fn refresh_bucket(
    cluster: &Cluster,
    table: &str,
    label: &str,
    bucket: u32,
    codec_sel: BlobCodec,
) -> Result<usize> {
    let (m, _buckets) = read_meta(cluster, table, label)?;
    let client = cluster.client();
    let fams = [label.to_owned()];
    let Some(row) = client.get_with_families(table, &blob_row_key(bucket), Some(&fams))? else {
        return Ok(0);
    };
    let resolved = resolve_bucket_row(&row, label, m)?;
    if !resolved.had_mutations {
        return Ok(0);
    }
    let n = resolved.consumed_qualifiers.len();
    match resolved.blob {
        Some(blob) => write_back_bucket(
            cluster,
            table,
            label,
            bucket,
            &blob,
            codec_sel,
            resolved.latest_ts,
            &resolved.consumed_qualifiers,
        )?,
        None => {
            // Bucket emptied entirely: drop the blob and the records.
            let mut muts = vec![Mutation::delete_at(
                label,
                BLOB_QUALIFIER,
                resolved.latest_ts,
            )];
            for q in &resolved.consumed_qualifiers {
                muts.push(Mutation::delete_at(label, q, resolved.latest_ts));
            }
            cluster
                .client()
                .mutate_row(table, &blob_row_key(bucket), muts)?;
        }
    }
    Ok(n)
}

/// Offline compaction sweep: refreshes every bucket whose pending-record
/// count is at least `threshold` ("one can choose to perform the
/// write-back only if the number of replayed mutations is above some
/// predefined threshold", §6). Returns total records compacted.
pub fn compact_if_pending(
    cluster: &Cluster,
    table: &str,
    label: &str,
    codec_sel: BlobCodec,
    threshold: usize,
) -> Result<usize> {
    let (m, buckets) = read_meta(cluster, table, label)?;
    let client = cluster.client();
    let mut compacted = 0;
    for bucket in 0..buckets {
        let fams = [label.to_owned()];
        let Some(row) = client.get_with_families(table, &blob_row_key(bucket), Some(&fams))? else {
            continue;
        };
        let pending = row
            .family_cells(label)
            .filter(|c| parse_record_qualifier(&c.qualifier).is_some())
            .count();
        if pending >= threshold.max(1) {
            let resolved = resolve_bucket_row(&row, label, m)?;
            if let Some(blob) = resolved.blob {
                write_back_bucket(
                    cluster,
                    table,
                    label,
                    bucket,
                    &blob,
                    codec_sel,
                    resolved.latest_ts,
                    &resolved.consumed_qualifiers,
                )?;
                compacted += resolved.consumed_qualifiers.len();
            }
        }
    }
    Ok(compacted)
}

/// Intercepted write path for one side's BFHM index (§6).
pub struct BfhmMaintainer {
    cluster: Cluster,
    table: String,
    label: String,
    hist: ScoreHistogram,
    m: usize,
}

impl BfhmMaintainer {
    /// Attaches to a built index (reads `m` and the bucket count from the
    /// metadata row).
    pub fn attach(cluster: &Cluster, table: &str, label: &str) -> Result<Self> {
        let (m, buckets) = read_meta(cluster, table, label)?;
        Ok(BfhmMaintainer {
            cluster: cluster.clone(),
            table: table.to_owned(),
            label: label.to_owned(),
            hist: ScoreHistogram::new(buckets),
            m,
        })
    }

    /// The filter size in force.
    pub fn filter_bits(&self) -> usize {
        self.m
    }

    /// Records the insertion of a base tuple: an insertion record on the
    /// bucket row plus a direct reverse-mapping put, both at `ts`.
    pub fn record_insert(
        &self,
        row_key: &[u8],
        join_value: &[u8],
        score: f64,
        ts: u64,
    ) -> Result<()> {
        let bucket = self.hist.bucket_of(score);
        let pos = SingleHashBloom::position_in(self.m, join_value) as u32;
        let client = self.cluster.client();
        client.mutate_row(
            &self.table,
            &blob_row_key(bucket),
            vec![Mutation::put_at(
                &self.label,
                &record_qualifier(OP_INSERT, ts, row_key),
                codec::encode_value_score(join_value, score),
                ts,
            )],
        )?;
        client.mutate_row(
            &self.table,
            &reverse_row_key(bucket, pos),
            vec![Mutation::put_at(
                &self.label,
                row_key,
                codec::encode_value_score(join_value, score),
                ts,
            )],
        )?;
        Ok(())
    }

    /// Records the deletion of a base tuple: a tombstone record on the
    /// bucket row plus a vanilla reverse-mapping delete, both at `ts`.
    pub fn record_delete(
        &self,
        row_key: &[u8],
        join_value: &[u8],
        score: f64,
        ts: u64,
    ) -> Result<()> {
        let bucket = self.hist.bucket_of(score);
        let pos = SingleHashBloom::position_in(self.m, join_value) as u32;
        let client = self.cluster.client();
        client.mutate_row(
            &self.table,
            &blob_row_key(bucket),
            vec![Mutation::put_at(
                &self.label,
                &record_qualifier(OP_DELETE, ts, row_key),
                codec::encode_value_score(join_value, score),
                ts,
            )],
        )?;
        client.mutate_row(
            &self.table,
            &reverse_row_key(bucket, pos),
            vec![Mutation::delete_at(&self.label, row_key, ts)],
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfhm::{self, BfhmConfig};
    use crate::oracle;
    use crate::testsupport::running_example_cluster;
    use rj_mapreduce::MapReduceEngine;

    fn build(c: &Cluster, q: &crate::query::RankJoinQuery) -> BfhmConfig {
        let config = BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14),
            ..Default::default()
        };
        let engine = MapReduceEngine::new(c.clone());
        bfhm::build_pair(&engine, q, "bfhm_idx", &config).unwrap();
        config
    }

    #[test]
    fn record_qualifier_roundtrip() {
        let q = record_qualifier(OP_INSERT, 42, b"rk");
        let (op, ts, key) = parse_record_qualifier(&q).unwrap();
        assert_eq!(op, OP_INSERT);
        assert_eq!(ts, 42);
        assert_eq!(key, b"rk");
        assert!(parse_record_qualifier(b"blob").is_none());
        assert!(parse_record_qualifier(b"x").is_none());
    }

    #[test]
    fn insert_then_query_sees_new_tuple() {
        let (c, q) = running_example_cluster();
        let config = build(&c, &q);
        // New R2 tuple joining b with a huge score → displaces the top-1.
        let base = c.client();
        let ts = c.next_ts();
        base.mutate_row(
            "r2",
            b"r2_99",
            vec![
                Mutation::put_at("d", b"jk", b"b".to_vec(), ts),
                Mutation::put_at("d", b"score", 0.99f64.to_be_bytes().to_vec(), ts),
            ],
        )
        .unwrap();
        let maintainer = BfhmMaintainer::attach(&c, "bfhm_idx", "R2").unwrap();
        maintainer.record_insert(b"r2_99", b"b", 0.99, ts).unwrap();

        let got = bfhm::run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
        assert!((got.results[0].score - 1.81).abs() < 1e-9, "0.82 + 0.99");
    }

    #[test]
    fn delete_then_query_drops_tuple() {
        let (c, q) = running_example_cluster();
        let config = build(&c, &q);
        // Delete r2_11 (b, 0.92) — the top result's right tuple.
        let base = c.client();
        let ts = c.next_ts();
        base.mutate_row(
            "r2",
            b"r2_11",
            vec![
                Mutation::delete_at("d", b"jk", ts),
                Mutation::delete_at("d", b"score", ts),
            ],
        )
        .unwrap();
        let maintainer = BfhmMaintainer::attach(&c, "bfhm_idx", "R2").unwrap();
        maintainer.record_delete(b"r2_11", b"b", 0.92, ts).unwrap();

        let got = bfhm::run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
        assert!((got.results[0].score - 1.73).abs() < 1e-9, "0.82 + 0.91");
    }

    #[test]
    fn eager_write_back_compacts_records() {
        let (c, q) = running_example_cluster();
        let config = build(&c, &q);
        let ts = c.next_ts();
        c.client()
            .mutate_row(
                "r2",
                b"r2_99",
                vec![
                    Mutation::put_at("d", b"jk", b"b".to_vec(), ts),
                    Mutation::put_at("d", b"score", 0.99f64.to_be_bytes().to_vec(), ts),
                ],
            )
            .unwrap();
        let maintainer = BfhmMaintainer::attach(&c, "bfhm_idx", "R2").unwrap();
        maintainer.record_insert(b"r2_99", b"b", 0.99, ts).unwrap();

        // Eager query: reconstructs + writes back bucket 0 of R2.
        let got = bfhm::run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Eager).unwrap();
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());

        // Record purged; blob reflects the insert.
        let row = c
            .client()
            .get("bfhm_idx", &blob_row_key(0))
            .unwrap()
            .unwrap();
        let pending = row
            .family_cells("R2")
            .filter(|cell| parse_record_qualifier(&cell.qualifier).is_some())
            .count();
        assert_eq!(pending, 0, "eager write-back purges records");
        let blob = BfhmBlob::decode(row.value("R2", BLOB_QUALIFIER).unwrap()).unwrap();
        assert_eq!(blob.max_score, 0.99);
        assert_eq!(blob.filter.n_inserted(), 3);
    }

    #[test]
    fn offline_compaction_with_threshold() {
        let (c, q) = running_example_cluster();
        let _config = build(&c, &q);
        let maintainer = BfhmMaintainer::attach(&c, "bfhm_idx", "R1").unwrap();
        // Two inserts into bucket 0 (scores >= 0.9).
        for (key, score) in [(b"x1", 0.95), (b"x2", 0.96)] {
            let ts = c.next_ts();
            maintainer.record_insert(key, b"a", score, ts).unwrap();
        }
        // Threshold 3: nothing compacts.
        let n = compact_if_pending(&c, "bfhm_idx", "R1", BlobCodec::Golomb, 3).unwrap();
        assert_eq!(n, 0);
        // Threshold 2: bucket 0 compacts.
        let n = compact_if_pending(&c, "bfhm_idx", "R1", BlobCodec::Golomb, 2).unwrap();
        assert_eq!(n, 2);
        let n_again = compact_if_pending(&c, "bfhm_idx", "R1", BlobCodec::Golomb, 1).unwrap();
        assert_eq!(n_again, 0, "records were purged");
    }

    #[test]
    fn insert_into_empty_bucket_materializes_blob() {
        let (c, q) = running_example_cluster();
        let config = build(&c, &q);
        // R2 has no bucket 1 (no scores in [0.8, 0.9)); insert one.
        let ts = c.next_ts();
        c.client()
            .mutate_row(
                "r2",
                b"r2_88",
                vec![
                    Mutation::put_at("d", b"jk", b"a".to_vec(), ts),
                    Mutation::put_at("d", b"score", 0.85f64.to_be_bytes().to_vec(), ts),
                ],
            )
            .unwrap();
        let maintainer = BfhmMaintainer::attach(&c, "bfhm_idx", "R2").unwrap();
        maintainer.record_insert(b"r2_88", b"a", 0.85, ts).unwrap();
        let got = bfhm::run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Eager).unwrap();
        // a-join: r1_10 (1.00) × r2_88 (0.85) = 1.85 is the new top.
        assert!((got.results[0].score - 1.85).abs() < 1e-9);
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
    }
}
