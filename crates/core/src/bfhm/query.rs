//! BFHM query processing (paper §5.2, Algorithms 6–7) with the §5.3
//! recall-guarantee loop.
//!
//! The driver is structured as an owned *step machine* ([`BfhmRun`]):
//! every [`BfhmRun::advance`] call performs one bounded unit of work —
//! one bucket probe + estimate join, one materialization sweep, one
//! re-examination iteration — and the machine's whole position lives in
//! a plain-data [`BfhmCore`]. The one-shot entry points
//! ([`run`]/[`run_with_mode`]/[`run_seeded`]) simply drain the machine,
//! and [`BfhmCursor`] pumps the *same* machine on demand, which is what
//! makes any pause/resume schedule result- and metric-equivalent to the
//! one-shot run by construction.

use std::collections::HashSet;

use rj_sketch::blob::BfhmBlob;
use rj_sketch::histogram::ScoreHistogram;
use rj_sketch::FlatMultiMap;
use rj_store::cluster::Cluster;
use rj_store::metrics::{MetricsSnapshot, QueryMeter};
use rj_store::parallel::{run_lanes, ExecutionMode, LaneTask};

use crate::cancel::StopPolicy;
use crate::codec;
use crate::cursor::{
    policy_stop, snap_add, CursorBatch, CursorMeta, CursorState, RankedCursor, StateInner,
};
use crate::error::{RankJoinError, Result};
use crate::query::RankJoinQuery;
use crate::result::{JoinTuple, TopK};
use crate::stats::QueryOutcome;

use super::index::{read_meta, reverse_row_key};
use super::maintenance::{resolve_bucket_row, WriteBackPolicy};
use super::{BfhmConfig, BoundMode};

/// Flat reverse-row cache, replacing the old
/// `HashMap<(usize, u32, u32), Vec<(Vec<u8>, Vec<u8>, f64)>>`: cell keys
/// pack to 9 bytes (`side ‖ bucket ‖ pos`, big-endian) interned in a
/// [`FlatMultiMap`], and the cached tuples live in **columnar** flat
/// arrays — base keys and join values back to back in byte arenas, scores
/// one contiguous `f64` column — so the materialization cross-product
/// walks sequential memory instead of cloning `Vec`s of `Vec`s. A cell
/// interned with an empty group means "fetched, no tuples".
#[derive(Clone, Default)]
struct ReverseStore {
    /// Packed cell key → group of tuple ids.
    index: FlatMultiMap<u32>,
    /// Tuple base keys, back to back, spanned by `key_spans`.
    key_arena: Vec<u8>,
    key_spans: Vec<(u32, u32)>,
    /// Tuple join values, back to back, spanned by `join_spans`.
    join_arena: Vec<u8>,
    join_spans: Vec<(u32, u32)>,
    /// Per-tuple scores, one flat column.
    scores: Vec<f64>,
}

/// The 9-byte packed cache key of one reverse-mapping cell.
fn packed_cell(side: usize, bucket: u32, pos: u32) -> [u8; 9] {
    let mut k = [0u8; 9];
    k[0] = side as u8;
    k[1..5].copy_from_slice(&bucket.to_be_bytes());
    k[5..9].copy_from_slice(&pos.to_be_bytes());
    k
}

impl ReverseStore {
    /// Whether this cell has been fetched (possibly empty).
    fn contains(&self, side: usize, bucket: u32, pos: u32) -> bool {
        self.index.contains_key(&packed_cell(side, bucket, pos))
    }

    /// Interns a cell, marking it fetched; returns its entry id for
    /// [`ReverseStore::push_tuple`].
    fn begin_cell(&mut self, side: usize, bucket: u32, pos: u32) -> u32 {
        self.index.ensure(&packed_cell(side, bucket, pos))
    }

    /// Appends one decoded `(base key, join value, score)` tuple to a cell.
    fn push_tuple(&mut self, entry: u32, key: &[u8], join: &[u8], score: f64) {
        // Checked narrowing: a cache past 2^32 tuples or 4 GiB of arena
        // bytes must panic, not silently alias spans.
        let id = u32::try_from(self.scores.len()).expect("ReverseStore tuple count overflows u32");
        self.key_spans.push((
            u32::try_from(self.key_arena.len()).expect("ReverseStore key arena overflows u32"),
            u32::try_from(key.len()).expect("ReverseStore key length overflows u32"),
        ));
        self.key_arena.extend_from_slice(key);
        self.join_spans.push((
            u32::try_from(self.join_arena.len()).expect("ReverseStore join arena overflows u32"),
            u32::try_from(join.len()).expect("ReverseStore join length overflows u32"),
        ));
        self.join_arena.extend_from_slice(join);
        self.scores.push(score);
        self.index.push_to_entry(entry, id);
    }

    /// The cached tuples of one cell: `(base key, join value, score)`,
    /// in decode order. Empty for unfetched cells.
    fn tuples<'a>(
        &'a self,
        side: usize,
        bucket: u32,
        pos: u32,
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8], f64)> + 'a {
        self.index
            .get(&packed_cell(side, bucket, pos))
            .map(move |&id| {
                let i = id as usize;
                let (ko, kl) = self.key_spans[i];
                let (jo, jl) = self.join_spans[i];
                (
                    &self.key_arena[ko as usize..(ko + kl) as usize],
                    &self.join_arena[jo as usize..(jo + jl) as usize],
                    self.scores[i],
                )
            })
    }
}

/// One estimated bucket-join result (a row of Fig. 6(c)).
#[derive(Clone, Debug)]
pub(crate) struct Estimate {
    pub left_bucket: u32,
    pub right_bucket: u32,
    /// Common set-bit positions of the two bucket filters.
    pub positions: Vec<u32>,
    /// α-compensated cardinality estimate.
    pub cardinality: f64,
    /// Lower bound on any represented join tuple's score.
    pub min_score: f64,
    /// Upper bound on any represented join tuple's score.
    pub max_score: f64,
}

/// Per-side estimation cursor state.
#[derive(Clone)]
struct SideState {
    /// Fetched non-empty buckets, in fetch (descending-score) order.
    fetched: Vec<(u32, BfhmBlob)>,
    /// Next bucket number to probe.
    cursor: u32,
    exhausted: bool,
    /// Gets issued while probing buckets.
    bucket_gets: u64,
}

impl SideState {
    fn new() -> Self {
        SideState {
            fetched: Vec::new(),
            cursor: 0,
            exhausted: false,
            bucket_gets: 0,
        }
    }

    fn actual_max(&self) -> f64 {
        self.fetched
            .iter()
            .map(|(_, b)| b.max_score)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Upper bound (bucket boundary) of the best fetched bucket.
    fn best_fetched_boundary(&self, hist: &ScoreHistogram) -> f64 {
        self.fetched
            .first()
            .map(|(b, _)| hist.upper_bound(*b))
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// Where the §5.3 guarantee loop's machine currently stands. Transitions
/// mirror the original nested loops exactly: every `RoundStart →
/// Estimation* → Cutoff → (Reexamine* | FillInit → Fill*)` trace performs
/// the same fetches in the same order the run-to-completion code did.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Top of a guarantee round (bumps the round counter).
    RoundStart,
    /// Algorithm 6 estimation: one bucket probe + estimate join per step.
    Estimation,
    /// Estimation converged: materialize down to the k-th estimate bound,
    /// then branch on whether k results exist.
    Cutoff,
    /// ≥ k results: one re-examination iteration per step (materialize
    /// above the actual k-th score, extend the frontier).
    Reexamine,
    /// < k results: set the widened fill target (paper: "top-k + (k-k')").
    FillInit,
    /// One best-first fill iteration per step; back to `RoundStart` once
    /// k results exist.
    Fill,
    /// Terminated: `results` is the exact top-k.
    Done,
}

/// The full position of a BFHM execution between two
/// [`BfhmRun::advance`] steps — plain owned data (blobs, estimates, the
/// reverse-row cache, the running top-k, phase + counters), detachable
/// into a [`crate::cursor::CursorState`] and resumable on any cluster
/// handle over the same index.
#[derive(Clone)]
pub(crate) struct BfhmCore {
    /// Cursor bookkeeping (target k, emitted count, cumulative charge).
    pub(crate) meta: CursorMeta,
    query: RankJoinQuery,
    table: String,
    config: BfhmConfig,
    hist: ScoreHistogram,
    /// Filter size, from the index metadata (needed to replay mutation
    /// records into buckets that have no blob yet).
    m: usize,
    sides: [SideState; 2],
    pub(crate) estimates: Vec<Estimate>,
    total_estimated: f64,
    /// Bucket pairs already materialized in phase 2.
    materialized: HashSet<(u32, u32)>,
    /// Reverse-row cache in flat columnar storage.
    reverse: ReverseStore,
    results: TopK,
    reverse_rows_fetched: u64,
    rounds: u64,
    write_back: WriteBackPolicy,
    pending_write_backs: Vec<u32>,
    mode: ExecutionMode,
    phase: Phase,
    /// The guarantee loop's (monotone) estimation target.
    target: usize,
    /// Machine steps taken (the cursor's stop-policy boundary counter).
    steps: u64,
}

impl BfhmCore {
    /// Monotone progress measure: every store fetch the machine has made.
    pub(crate) fn consumed_depth(&self) -> u64 {
        self.sides[0].bucket_gets + self.sides[1].bucket_gets + self.reverse_rows_fetched
    }
}

/// An owned, stepping BFHM execution over `cluster` (see the module
/// docs). `core` holds every byte of position; `advance()` moves it.
pub(crate) struct BfhmRun {
    cluster: Cluster,
    pub(crate) core: BfhmCore,
}

impl BfhmRun {
    pub(crate) fn new(
        cluster: &Cluster,
        query: &RankJoinQuery,
        table: &str,
        config: &BfhmConfig,
        write_back: WriteBackPolicy,
        mode: ExecutionMode,
    ) -> Result<Self> {
        cluster
            .table(table)
            .map_err(|_| RankJoinError::MissingIndex(table.to_owned()))?;
        let (m, num_buckets) = read_meta(cluster, table, &query.left.label)?;
        if num_buckets != config.num_buckets {
            return Err(RankJoinError::Internal(
                "config bucket count disagrees with the built index",
            ));
        }
        Ok(BfhmRun {
            cluster: cluster.clone(),
            core: BfhmCore {
                meta: CursorMeta::new(query.k, None),
                query: query.clone(),
                table: table.to_owned(),
                config: config.clone(),
                hist: ScoreHistogram::new(num_buckets),
                m,
                sides: [SideState::new(), SideState::new()],
                estimates: Vec::new(),
                total_estimated: 0.0,
                materialized: HashSet::new(),
                reverse: ReverseStore::default(),
                results: TopK::new(query.k),
                reverse_rows_fetched: 0,
                rounds: 0,
                write_back,
                pending_write_backs: Vec::new(),
                mode,
                phase: Phase::RoundStart,
                target: query.k,
                steps: 0,
            },
        })
    }

    /// Reattaches a detached machine to `cluster`.
    pub(crate) fn resume(cluster: &Cluster, core: BfhmCore) -> Self {
        BfhmRun {
            cluster: cluster.clone(),
            core,
        }
    }

    fn label(&self, side: usize) -> &str {
        // rjlint: allow(no-unwrap) — `side` is 0 or 1 and a validated binary
        // query always has both sides.
        &self.core.query.try_side(side).expect("binary side").label
    }

    /// Fetches the next non-empty bucket of `side`, resolving pending §6
    /// mutation records into the blob. Returns `false` when exhausted.
    fn fetch_next_bucket(&mut self, side: usize) -> Result<bool> {
        let client = self.cluster.client();
        let label = self.label(side).to_owned();
        loop {
            let state = &mut self.core.sides[side];
            if state.cursor >= self.core.hist.num_buckets() {
                state.exhausted = true;
                return Ok(false);
            }
            let bucket = state.cursor;
            state.cursor += 1;
            state.bucket_gets += 1;
            let fams = [label.clone()];
            let row = client.get_with_families(
                &self.core.table,
                &super::index::blob_row_key(bucket),
                Some(&fams),
            )?;
            let Some(row) = row else { continue };
            let resolved = resolve_bucket_row(&row, &label, self.core.m)?;
            let Some(blob) = resolved.blob else { continue };
            if resolved.had_mutations && self.core.write_back == WriteBackPolicy::Eager {
                super::maintenance::write_back_bucket(
                    &self.cluster,
                    &self.core.table,
                    &label,
                    bucket,
                    &blob,
                    self.core.config.codec,
                    resolved.latest_ts,
                    &resolved.consumed_qualifiers,
                )?;
            } else if resolved.had_mutations && self.core.write_back == WriteBackPolicy::Lazy {
                self.core.pending_write_backs.push(bucket);
            }
            self.core.sides[side].fetched.push((bucket, blob));
            return Ok(true);
        }
    }

    /// Algorithm 7: joins the newly fetched bucket of `side` against every
    /// fetched bucket of the other side, appending estimates.
    fn join_new_bucket(&mut self, side: usize) {
        let (new_bucket, new_blob) = self.core.sides[side]
            .fetched
            .last()
            .map(|(b, blob)| (*b, blob.clone()))
            // rjlint: allow(no-unwrap) — only reached from the Fetched arm,
            // where the driver just pushed the fetched bucket.
            .expect("called right after a successful fetch");
        let other = 1 - side;
        let mut new_estimates = Vec::new();
        for (other_bucket, other_blob) in &self.core.sides[other].fetched {
            let (lb, lblob, rb, rblob) = if side == 0 {
                (new_bucket, &new_blob, *other_bucket, other_blob)
            } else {
                (*other_bucket, other_blob, new_bucket, &new_blob)
            };
            let positions = lblob.filter.common_positions(&rblob.filter);
            if positions.is_empty() {
                continue; // Algorithm 7 line 5: empty AND → null
            }
            let cardinality = lblob
                .filter
                .estimate_join_cardinality(&rblob.filter, self.core.config.alpha);
            new_estimates.push(Estimate {
                left_bucket: lb,
                right_bucket: rb,
                positions,
                cardinality,
                min_score: self
                    .core
                    .query
                    .score_fn
                    .combine(lblob.min_score, rblob.min_score),
                max_score: self
                    .core
                    .query
                    .score_fn
                    .combine(lblob.max_score, rblob.max_score),
            });
        }
        for e in new_estimates {
            self.core.total_estimated += e.cardinality;
            self.core.estimates.push(e);
        }
    }

    /// The k-th estimated result's score bound (walks estimates in
    /// descending max-score order, accumulating cardinalities).
    fn kth_estimate_bound(&self, target: usize) -> Option<f64> {
        if self.core.total_estimated < target as f64 {
            return None;
        }
        let mut order: Vec<&Estimate> = self.core.estimates.iter().collect();
        order.sort_by(|a, b| b.max_score.total_cmp(&a.max_score));
        let mut cum = 0.0;
        for e in order {
            cum += e.cardinality;
            if cum >= target as f64 {
                return Some(match self.core.config.bound_mode {
                    BoundMode::PaperFigure => e.max_score,
                    BoundMode::Conservative => e.min_score,
                });
            }
        }
        None
    }

    /// Upper bound on the score of any join tuple from bucket pairs not
    /// yet *examined* (at least one side unfetched).
    fn unexamined_bound(&self, conservative: bool) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for s in 0..2 {
            let state = &self.core.sides[s];
            if state.exhausted || state.cursor >= self.core.hist.num_buckets() {
                continue;
            }
            let my_upper = self.core.hist.upper_bound(state.cursor);
            let other = &self.core.sides[1 - s];
            let other_unfetched = if !other.exhausted && other.cursor < self.core.hist.num_buckets()
            {
                self.core.hist.upper_bound(other.cursor)
            } else {
                f64::NEG_INFINITY
            };
            let other_fetched = if conservative {
                other.actual_max()
            } else {
                other.best_fetched_boundary(&self.core.hist)
            };
            let other_best = other_fetched.max(other_unfetched);
            if other_best == f64::NEG_INFINITY {
                continue;
            }
            let bound = if s == 0 {
                self.core.query.score_fn.combine(my_upper, other_best)
            } else {
                self.core.query.score_fn.combine(other_best, my_upper)
            };
            best = best.max(bound);
        }
        best
    }

    /// One iteration of the phase-1 (Algorithm 6) estimation loop: checks
    /// the exit conditions, then probes one bucket and joins it. Returns
    /// `false` when estimation for `target` has converged.
    fn estimation_step(&mut self, target: usize) -> Result<bool> {
        if self.core.sides[0].exhausted && self.core.sides[1].exhausted {
            return Ok(false);
        }
        if self.core.total_estimated >= target as f64 {
            if let Some(bound) = self.kth_estimate_bound(target) {
                let unexamined =
                    self.unexamined_bound(self.core.config.bound_mode == BoundMode::Conservative);
                if unexamined < bound {
                    return Ok(false);
                }
            }
        }
        // Resume alternation from whichever side has fetched fewer buckets.
        let side = match (
            self.core.sides[0].exhausted,
            self.core.sides[1].exhausted,
            self.core.sides[0].fetched.len() + (self.core.sides[0].cursor as usize),
            self.core.sides[1].fetched.len() + (self.core.sides[1].cursor as usize),
        ) {
            (true, false, _, _) => 1,
            (false, true, _, _) => 0,
            (_, _, a, b) if a <= b => 0,
            _ => 1,
        };
        if self.fetch_next_bucket(side)? {
            self.join_new_bucket(side);
        }
        Ok(true)
    }

    /// Phase 1 (Algorithm 6): fetch and join buckets until no unexamined
    /// combination can beat the estimated `target`-th result — the
    /// estimation-accuracy harness (Fig. 6c) drives phase 1 in isolation
    /// through this.
    #[cfg(test)]
    pub(crate) fn run_estimation(&mut self, target: usize) -> Result<()> {
        while self.estimation_step(target)? {}
        Ok(())
    }

    /// Decodes one fetched reverse row and records it in the cache —
    /// shared by the serial demand path and the parallel prefetch so the
    /// two stay byte-identical in decoding and accounting.
    fn cache_reverse_row(
        &mut self,
        side: usize,
        bucket: u32,
        pos: u32,
        row: Option<rj_store::row::RowResult>,
    ) {
        self.core.reverse_rows_fetched += 1;
        let label = self
            .core
            .query
            .try_side(side)
            // rjlint: allow(no-unwrap) — `side` is 0 or 1 and a validated
            // binary query always has both sides.
            .expect("binary side")
            .label
            .clone();
        let entry = self.core.reverse.begin_cell(side, bucket, pos);
        if let Some(row) = row {
            for cell in row.family_cells(&label) {
                if let Ok((join, score)) = codec::decode_value_score(&cell.value) {
                    self.core
                        .reverse
                        .push_tuple(entry, &cell.qualifier, &join, score);
                }
            }
        }
    }

    /// Ensures one `(side, bucket, position)` reverse-mapping cell is in
    /// the cache, fetching it on demand.
    fn ensure_reverse_row(&mut self, side: usize, bucket: u32, pos: u32) -> Result<()> {
        if !self.core.reverse.contains(side, bucket, pos) {
            let client = self.cluster.client();
            let fams = [self.label(side).to_owned()];
            let row = client.get_with_families(
                &self.core.table,
                &reverse_row_key(bucket, pos),
                Some(&fams),
            )?;
            self.cache_reverse_row(side, bucket, pos, row);
        }
        Ok(())
    }

    /// Fans the reverse-row gets an upcoming materialization needs out in
    /// one parallel round (lane = serving node), filling the cache the
    /// serial join loop then hits. Fetches exactly the set of rows the
    /// serial loop would fetch — the loop walks every estimate in `todo`
    /// unconditionally — so the counted metrics are unchanged.
    fn prefetch_reverse_rows(&mut self, todo: &[Estimate]) -> Result<()> {
        let mut needed: Vec<(usize, u32, u32)> = Vec::new();
        let mut queued: HashSet<(usize, u32, u32)> = HashSet::new();
        for e in todo {
            for &pos in &e.positions {
                for (side, bucket) in [(0usize, e.left_bucket), (1usize, e.right_bucket)] {
                    let key = (side, bucket, pos);
                    if !self.core.reverse.contains(side, bucket, pos) && queued.insert(key) {
                        needed.push(key);
                    }
                }
            }
        }
        if needed.len() < 2 {
            return Ok(()); // nothing to overlap
        }
        let table = self.cluster.table(&self.core.table)?;
        let tasks = needed
            .iter()
            .map(|&(side, bucket, pos)| {
                let row_key = reverse_row_key(bucket, pos);
                let label = self.label(side).to_owned();
                let table_name = self.core.table.clone();
                LaneTask::new(
                    table.serving_node(&row_key),
                    move |worker: &rj_store::client::Client| {
                        let fams = [label];
                        worker.get_with_families(&table_name, &row_key, Some(&fams))
                    },
                )
            })
            .collect();
        let rows = run_lanes(&self.cluster, self.core.mode.workers(), tasks)?;
        for ((side, bucket, pos), row) in needed.into_iter().zip(rows) {
            self.cache_reverse_row(side, bucket, pos, row);
        }
        Ok(())
    }

    /// Phase 2: materializes every estimate with `max_score >= cutoff`
    /// not yet materialized — fetch reverse rows, join actual tuples
    /// (re-checking join values), offer into the running top-k.
    fn materialize(&mut self, cutoff: f64) -> Result<bool> {
        let todo: Vec<Estimate> = self
            .core
            .estimates
            .iter()
            .filter(|e| {
                e.max_score >= cutoff
                    && !self
                        .core
                        .materialized
                        .contains(&(e.left_bucket, e.right_bucket))
            })
            .cloned()
            .collect();
        let progressed = !todo.is_empty();
        if self.core.mode.is_parallel() {
            self.prefetch_reverse_rows(&todo)?;
        }
        for e in todo {
            self.core
                .materialized
                .insert((e.left_bucket, e.right_bucket));
            for &pos in &e.positions {
                // Demand-fetch both cells first (mutating), then join over
                // two shared borrows of the flat store — no `Vec` clones.
                self.ensure_reverse_row(0, e.left_bucket, pos)?;
                self.ensure_reverse_row(1, e.right_bucket, pos)?;
                let score_fn = self.core.query.score_fn;
                let core = &mut self.core;
                for (lk, lj, ls) in core.reverse.tuples(0, e.left_bucket, pos) {
                    for (rk, rj, rs) in core.reverse.tuples(1, e.right_bucket, pos) {
                        if lj != rj {
                            continue; // Bloom collision on this bit
                        }
                        core.results.offer(JoinTuple {
                            left_key: lk.to_vec(),
                            right_key: rk.to_vec(),
                            join_value: lj.to_vec(),
                            left_score: ls,
                            right_score: rs,
                            inner: Vec::new(),
                            score: score_fn.combine(ls, rs),
                        });
                    }
                }
            }
        }
        Ok(progressed)
    }

    /// Conservative bound on anything not yet in `results`: the best
    /// non-materialized estimate and any unexamined bucket combination.
    /// Non-increasing across [`BfhmRun::advance`] steps — new estimates
    /// are bounded by the prior unexamined bound — which is what lets a
    /// cursor emit everything strictly above it as final.
    fn threat_bound(&self) -> f64 {
        let est = self
            .core
            .estimates
            .iter()
            .filter(|e| {
                !self
                    .core
                    .materialized
                    .contains(&(e.left_bucket, e.right_bucket))
            })
            .map(|e| e.max_score)
            .fold(f64::NEG_INFINITY, f64::max);
        est.max(self.unexamined_bound(true))
    }

    /// Whether the guarantee loop has terminated.
    fn done(&self) -> bool {
        self.core.phase == Phase::Done
    }

    /// Performs one bounded step of the §5.3 guarantee loop and returns
    /// whether the machine still has work. Stringing `advance` calls
    /// together performs exactly the fetches of the old run-to-completion
    /// loop, in the same order — the phases are its loop structure made
    /// explicit.
    fn advance(&mut self) -> Result<bool> {
        let k = self.core.query.k;
        self.core.steps += 1;
        match self.core.phase {
            Phase::RoundStart => {
                self.core.rounds += 1;
                if std::env::var_os("RJ_BFHM_DEBUG").is_some() {
                    eprintln!(
                        "[bfhm] round={} target={} results={} est={} total_est={:.1} \
                         fetched=({},{}) cursors=({},{}) exhausted=({},{})",
                        self.core.rounds,
                        self.core.target,
                        self.core.results.len(),
                        self.core.estimates.len(),
                        self.core.total_estimated,
                        self.core.sides[0].fetched.len(),
                        self.core.sides[1].fetched.len(),
                        self.core.sides[0].cursor,
                        self.core.sides[1].cursor,
                        self.core.sides[0].exhausted,
                        self.core.sides[1].exhausted,
                    );
                }
                self.core.phase = Phase::Estimation;
            }
            Phase::Estimation => {
                let target = self.core.target;
                if !self.estimation_step(target)? {
                    self.core.phase = Phase::Cutoff;
                }
            }
            Phase::Cutoff => {
                let cutoff = self
                    .kth_estimate_bound(self.core.target)
                    .unwrap_or(f64::NEG_INFINITY);
                self.materialize(cutoff)?;
                self.core.phase = if self.core.results.len() >= k {
                    Phase::Reexamine
                } else {
                    Phase::FillInit
                };
            }
            Phase::Reexamine => {
                // Re-examine: anything (purged estimate or unexamined
                // combination) that could still reach the top-k? The k-th
                // score is recomputed every step — materialization can
                // only raise it, tightening the loop.
                // rjlint: allow(no-unwrap) — guarded by the enclosing
                // `results.is_full()` branch: the k-th score exists.
                let kth = self.core.results.kth_score().expect("full");
                if self.threat_bound() < kth {
                    self.core.phase = Phase::Done;
                } else {
                    let mut stepped = false;
                    // Materialize estimates above the actual kth score.
                    if self.materialize(kth)? {
                        stepped = true;
                    }
                    // Extend the frontier one bucket on the side bounding
                    // the threat.
                    for s in 0..2 {
                        if self.unexamined_bound(true) >= kth
                            && !self.core.sides[s].exhausted
                            && self.fetch_next_bucket(s)?
                        {
                            self.join_new_bucket(s);
                            stepped = true;
                        }
                    }
                    if !stepped {
                        // Nothing left to examine: the threat is only
                        // tied estimates that cannot materialize further.
                        self.core.phase = Phase::Done;
                    }
                }
            }
            Phase::FillInit => {
                // Fewer than k results (k' < k): "resume the query
                // processing algorithm ... looking for the top-k + (k -
                // k') results".
                let missing = k - self.core.results.len();
                self.core.target = self.core.target.max(k + missing);
                self.core.phase = Phase::Fill;
            }
            Phase::Fill => {
                if self.core.results.len() >= k {
                    self.core.phase = Phase::RoundStart;
                } else {
                    // Estimated cardinalities overcount (Bloom collisions,
                    // bucket pairs without true joins), so drive the fill
                    // by *actual* results: convert the highest-potential
                    // remaining bucket pair into real tuples, best-first,
                    // fetching new buckets only when unexamined
                    // combinations could outscore every known estimate.
                    let best_estimate = self
                        .core
                        .estimates
                        .iter()
                        .filter(|e| {
                            !self
                                .core
                                .materialized
                                .contains(&(e.left_bucket, e.right_bucket))
                        })
                        .map(|e| e.max_score)
                        .fold(f64::NEG_INFINITY, f64::max);
                    let unexamined = self.unexamined_bound(true);
                    if best_estimate == f64::NEG_INFINITY && unexamined == f64::NEG_INFINITY {
                        self.core.phase = Phase::Done; // the whole join has < k results
                    } else if best_estimate >= unexamined {
                        self.materialize(best_estimate)?;
                    } else {
                        for s in 0..2 {
                            if !self.core.sides[s].exhausted && self.fetch_next_bucket(s)? {
                                self.join_new_bucket(s);
                            }
                        }
                    }
                }
            }
            Phase::Done => {}
        }
        if self.done() {
            // Lazy write-backs happen once the result is ready (§6),
            // whether the machine was drained in one call or paged.
            self.flush_lazy_write_backs()?;
        }
        Ok(!self.done())
    }

    /// The §5.3 guarantee loop: the machine drained in one call.
    fn run_to_completion(&mut self) -> Result<()> {
        while self.advance()? {}
        Ok(())
    }

    /// Flushes pending lazy write-backs (idempotent).
    fn flush_lazy_write_backs(&mut self) -> Result<()> {
        if self.core.write_back != WriteBackPolicy::Lazy {
            return Ok(());
        }
        let buckets = std::mem::take(&mut self.core.pending_write_backs);
        for bucket in buckets {
            for s in 0..2 {
                let label = self.label(s).to_owned();
                super::maintenance::refresh_bucket(
                    &self.cluster,
                    &self.core.table,
                    &label,
                    bucket,
                    self.core.config.codec,
                )?;
            }
        }
        Ok(())
    }

    fn finish(mut self, meter: QueryMeter) -> Result<QueryOutcome> {
        self.flush_lazy_write_backs()?;
        let buckets_fetched =
            (self.core.sides[0].fetched.len() + self.core.sides[1].fetched.len()) as f64;
        let estimates = self.core.estimates.len() as f64;
        let rounds = self.core.rounds as f64;
        let reverse_rows = self.core.reverse_rows_fetched as f64;
        let bucket_gets = (self.core.sides[0].bucket_gets + self.core.sides[1].bucket_gets) as f64;
        let results = std::mem::replace(&mut self.core.results, TopK::new(1)).into_sorted_vec();
        Ok(QueryOutcome::new("BFHM", results, meter.finish())
            .with_extra("buckets_fetched", buckets_fetched)
            .with_extra("bucket_gets", bucket_gets)
            .with_extra("estimates", estimates)
            .with_extra("reverse_rows_fetched", reverse_rows)
            .with_extra("rounds", rounds))
    }
}

/// The BFHM guarantee loop as a [`RankedCursor`]: pumps the same
/// [`BfhmRun`] step machine the one-shot entry points drain, stopping as
/// soon as enough results are *certified* — strictly above the machine's
/// threat bound, which is non-increasing across steps, so an emitted
/// result can never be displaced or preceded by later work.
pub(crate) struct BfhmCursor {
    run: BfhmRun,
}

impl BfhmCursor {
    /// Opens a cursor over a previously built BFHM index pair. The index
    /// metadata read is charged to the cursor (it is part of the one-shot
    /// run's metered cost).
    pub(crate) fn open(
        cluster: &Cluster,
        query: &RankJoinQuery,
        index_table: &str,
        config: &BfhmConfig,
        write_back: WriteBackPolicy,
        mode: ExecutionMode,
        pinned_version: Option<u64>,
    ) -> Result<Self> {
        let ledger = cluster.metrics();
        let before = ledger.snapshot();
        let mut run = BfhmRun::new(cluster, query, index_table, config, write_back, mode)?;
        run.core.meta = CursorMeta::new(query.k, pinned_version);
        run.core.meta.charged = ledger.snapshot().delta_since(&before);
        Ok(BfhmCursor { run })
    }

    /// Seeds the top-k accumulator with *genuine* join results of the
    /// current data and fast-forwards emission past `already_emitted` of
    /// them — the adaptive cursor's ISL → BFHM switch handoff (see
    /// [`super::run_seeded`] for why seeding is result-transparent).
    pub(crate) fn seed(&mut self, seed: &[JoinTuple], already_emitted: usize) {
        for t in seed {
            self.run.core.results.offer(t.clone());
        }
        self.run.core.meta.emitted = already_emitted;
    }

    /// Folds a predecessor's metric charge into this cursor's cumulative
    /// charge (the adaptive switch bills the aborted ISL prefix here).
    pub(crate) fn add_charge(&mut self, prior: MetricsSnapshot) {
        self.run.core.meta.charged = snap_add(self.run.core.meta.charged, prior);
    }

    /// Reattaches a detached state to `cluster`.
    pub(crate) fn resume(cluster: &Cluster, core: BfhmCore) -> Self {
        BfhmCursor {
            run: BfhmRun::resume(cluster, core),
        }
    }

    fn drained(&self) -> bool {
        self.run.core.meta.k == 0 || self.run.done()
    }

    /// Results certain to be final (strictly above the threat bound;
    /// everything once the guarantee loop terminates).
    fn certified(&self) -> usize {
        if self.drained() {
            return self.run.core.results.len();
        }
        let threat = self.run.threat_bound();
        self.run
            .core
            .results
            .iter()
            .take_while(|t| t.score > threat)
            .count()
    }
}

impl RankedCursor for BfhmCursor {
    fn next_batch(&mut self, n: usize, policy: &StopPolicy) -> Result<CursorBatch> {
        let meta_k = self.run.core.meta.k;
        let want = self.run.core.meta.emitted.saturating_add(n).min(meta_k);
        let ledger = self.run.cluster.metrics();
        let before = ledger.snapshot();
        let mut stopped = None;
        while !self.drained() && self.certified() < want {
            self.run.advance()?;
            if self.drained() {
                break;
            }
            let sim_so_far = self.run.core.meta.charged.sim_seconds
                + ledger.snapshot().delta_since(&before).sim_seconds;
            if let Some(reason) = policy_stop(policy, self.run.core.steps, sim_so_far) {
                stopped = Some(reason);
                break;
            }
        }
        let delta = ledger.snapshot().delta_since(&before);
        self.run.core.meta.charged = snap_add(self.run.core.meta.charged, delta);
        let emit_to = self.certified().min(want).max(self.run.core.meta.emitted);
        let results: Vec<JoinTuple> = self
            .run
            .core
            .results
            .iter()
            .skip(self.run.core.meta.emitted)
            .take(emit_to - self.run.core.meta.emitted)
            .cloned()
            .collect();
        self.run.core.meta.emitted = emit_to;
        Ok(CursorBatch {
            results,
            done: self.is_done(),
            stopped,
            metrics: delta,
        })
    }

    fn pause(self: Box<Self>) -> CursorState {
        CursorState {
            inner: StateInner::Bfhm(Box::new(self.run.core)),
        }
    }

    fn emitted(&self) -> usize {
        self.run.core.meta.emitted
    }

    fn consumed_depth(&self) -> u64 {
        self.run.core.consumed_depth()
    }

    fn charged(&self) -> MetricsSnapshot {
        self.run.core.meta.charged
    }

    fn is_done(&self) -> bool {
        self.drained() && self.run.core.meta.emitted == self.run.core.results.len()
    }

    fn algorithm(&self) -> &'static str {
        "BFHM"
    }
}

/// Executes the BFHM rank join over a previously built index (serial
/// execution; see [`run_with_mode`]).
pub fn run(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: &BfhmConfig,
    write_back: WriteBackPolicy,
) -> Result<QueryOutcome> {
    run_with_mode(
        cluster,
        query,
        index_table,
        config,
        write_back,
        ExecutionMode::Serial,
    )
}

/// Executes the BFHM rank join under an explicit [`ExecutionMode`].
///
/// The parallel mode fans each materialization round's reverse-row gets
/// out across region servers (the bulk of BFHM's reads); bucket probing
/// stays demand-driven because each probe depends on the estimates
/// accumulated so far. Results and counted metrics (KV reads, bytes,
/// RPCs) are identical to serial execution.
pub fn run_with_mode(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: &BfhmConfig,
    write_back: WriteBackPolicy,
    mode: ExecutionMode,
) -> Result<QueryOutcome> {
    run_seeded(cluster, query, index_table, config, write_back, mode, &[])
}

/// [`run_with_mode`] with the top-k accumulator pre-seeded.
///
/// `seed` must contain only *genuine* join results of the current data —
/// e.g. the buffered results of an aborted ISL prefix over the same query
/// (the adaptive driver's reuse path, [`crate::adaptive`]). Seeding is
/// result-transparent: the accumulator deduplicates, every seed is a real
/// join tuple, and the §5.3 guarantee loop's termination test only ever
/// compares against the k-th *genuine* buffered score — so the returned
/// top-k is identical to an unseeded run, while a seed that already
/// covers part of the top-k can only raise the k-th bound earlier and
/// *prune* bucket fetches and materializations.
pub fn run_seeded(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: &BfhmConfig,
    write_back: WriteBackPolicy,
    mode: ExecutionMode,
    seed: &[JoinTuple],
) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "BFHM",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    let meter = QueryMeter::start(cluster.metrics());
    let mut run = BfhmRun::new(cluster, query, index_table, config, write_back, mode)?;
    for t in seed {
        run.core.results.offer(t.clone());
    }
    run.run_to_completion()?;
    run.finish(meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfhm;
    use crate::oracle;
    use crate::testsupport::running_example_cluster;
    use rj_mapreduce::MapReduceEngine;
    use rj_sketch::hybrid::AlphaMode;

    fn build(c: &Cluster, q: &RankJoinQuery, config: &BfhmConfig) {
        let engine = MapReduceEngine::new(c.clone());
        bfhm::build_pair(&engine, q, "bfhm_idx", config).unwrap();
    }

    fn example_config() -> BfhmConfig {
        BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14), // collision-free at this scale
            ..Default::default()
        }
    }

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        let got = run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
    }

    #[test]
    fn matches_oracle_for_all_k_and_modes() {
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        for bound_mode in [BoundMode::PaperFigure, BoundMode::Conservative] {
            for alpha in [AlphaMode::Compensated, AlphaMode::Off] {
                for k in [1, 2, 3, 5, 10, 38, 50] {
                    let cfg = BfhmConfig {
                        bound_mode,
                        alpha,
                        ..example_config()
                    };
                    let qk = q.with_k(k);
                    let got = run(&c, &qk, "bfhm_idx", &cfg, WriteBackPolicy::Off).unwrap();
                    assert_eq!(
                        got.results,
                        oracle::topk(&c, &qk).unwrap(),
                        "k={k} {bound_mode:?} {alpha:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hundred_percent_recall_with_tiny_filters() {
        // Adversarial: 16-bit filters force heavy Bloom collisions; the
        // guarantee loop must still deliver the exact answer (Theorem 1).
        let (c, q) = running_example_cluster();
        let config = BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(16),
            ..Default::default()
        };
        build(&c, &q, &config);
        for k in [1, 3, 8, 38] {
            let qk = q.with_k(k);
            let got = run(&c, &qk, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
            assert_eq!(got.results, oracle::topk(&c, &qk).unwrap(), "k={k}");
        }
    }

    #[test]
    fn estimation_is_surgical() {
        // For k=3 the walk-through fetches 3 R1 buckets and 2 R2 buckets
        // and reads only the reverse rows of the surviving pairs — far
        // fewer KV reads than the 22-tuple full scan.
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        let got = run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
        assert!(got.extra("buckets_fetched").unwrap() <= 8.0);
        assert!(
            got.metrics.kv_reads <= 22,
            "read {} KVs — should be surgical",
            got.metrics.kv_reads
        );
    }

    /// Reproduces Fig. 6(c): running estimation to exhaustion must produce
    /// exactly the paper's 17 estimated results.
    #[test]
    fn figure_6c_estimated_results() {
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        let q_all = q.with_k(1000); // force exhaustion
        let mut run_state = BfhmRun::new(
            &c,
            &q_all,
            "bfhm_idx",
            &config,
            WriteBackPolicy::Off,
            ExecutionMode::Serial,
        )
        .unwrap();
        run_state.run_estimation(1000).unwrap();
        let mut got: Vec<(u32, u32, u64, f64, f64)> = run_state
            .core
            .estimates
            .iter()
            .map(|e| {
                (
                    e.left_bucket,
                    e.right_bucket,
                    e.cardinality.round() as u64,
                    (e.min_score * 100.0).round() / 100.0,
                    (e.max_score * 100.0).round() / 100.0,
                )
            })
            .collect();
        // Fig. 6(c) lists estimates in descending *min*-score order.
        got.sort_by(|a, b| {
            b.3.total_cmp(&a.3)
                .then(b.4.total_cmp(&a.4))
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        // Fig. 6(c), columns: R1 bucket, R2 bucket, cardinality, min, max.
        // Bucket numbers: score range (1-10b/10, 1-b/10).
        let want: Vec<(u32, u32, u64, f64, f64)> = vec![
            (1, 0, 2, 1.73, 1.74), // row 1: h(b)
            (2, 0, 2, 1.61, 1.71), // row 2: h(b)
            (0, 3, 1, 1.57, 1.64), // row 3: h(c)
            (3, 0, 2, 1.55, 1.60), // row 4: h(b)
            (0, 4, 1, 1.43, 1.53), // row 5: h(a)
            (2, 3, 1, 1.34, 1.43), // row 6: h(c)
            (1, 4, 4, 1.32, 1.35), // row 7: h(d)
            (3, 3, 1, 1.28, 1.32), // row 8: h(c)
            (0, 6, 4, 1.24, 1.38), // rows 9+10: h(a) card 3 + h(c) card 1
            (1, 5, 2, 1.23, 1.23), // row 11: h(d)
            (2, 4, 1, 1.20, 1.32), // row 12: h(a)
            (3, 4, 2, 1.14, 1.21), // row 13: h(d)
            (3, 5, 1, 1.05, 1.09), // row 14: h(d)
            (2, 6, 4, 1.01, 1.17), // rows 15+16: h(a) card 3 + h(c) card 1
            (3, 6, 1, 0.95, 1.06), // row 17: h(c)
        ];
        // Note: the paper's Fig. 6(c) lists bucket-pair joins *per bit
        // position* (rows 9/10 and 15/16 share a bucket pair); our
        // Estimate is per bucket pair, so those rows merge with summed
        // cardinalities.
        assert_eq!(got, want);
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        assert!(matches!(
            run(&c, &q, "absent", &example_config(), WriteBackPolicy::Off).unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }
}
