//! BFHM query processing (paper §5.2, Algorithms 6–7) with the §5.3
//! recall-guarantee loop.

use std::collections::HashSet;

use rj_sketch::blob::BfhmBlob;
use rj_sketch::histogram::ScoreHistogram;
use rj_sketch::FlatMultiMap;
use rj_store::cluster::Cluster;
use rj_store::metrics::QueryMeter;
use rj_store::parallel::{run_lanes, ExecutionMode, LaneTask};

use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::query::RankJoinQuery;
use crate::result::{JoinTuple, TopK};
use crate::stats::QueryOutcome;

use super::index::{read_meta, reverse_row_key};
use super::maintenance::{resolve_bucket_row, WriteBackPolicy};
use super::{BfhmConfig, BoundMode};

/// Flat reverse-row cache, replacing the old
/// `HashMap<(usize, u32, u32), Vec<(Vec<u8>, Vec<u8>, f64)>>`: cell keys
/// pack to 9 bytes (`side ‖ bucket ‖ pos`, big-endian) interned in a
/// [`FlatMultiMap`], and the cached tuples live in **columnar** flat
/// arrays — base keys and join values back to back in byte arenas, scores
/// one contiguous `f64` column — so the materialization cross-product
/// walks sequential memory instead of cloning `Vec`s of `Vec`s. A cell
/// interned with an empty group means "fetched, no tuples".
#[derive(Default)]
struct ReverseStore {
    /// Packed cell key → group of tuple ids.
    index: FlatMultiMap<u32>,
    /// Tuple base keys, back to back, spanned by `key_spans`.
    key_arena: Vec<u8>,
    key_spans: Vec<(u32, u32)>,
    /// Tuple join values, back to back, spanned by `join_spans`.
    join_arena: Vec<u8>,
    join_spans: Vec<(u32, u32)>,
    /// Per-tuple scores, one flat column.
    scores: Vec<f64>,
}

/// The 9-byte packed cache key of one reverse-mapping cell.
fn packed_cell(side: usize, bucket: u32, pos: u32) -> [u8; 9] {
    let mut k = [0u8; 9];
    k[0] = side as u8;
    k[1..5].copy_from_slice(&bucket.to_be_bytes());
    k[5..9].copy_from_slice(&pos.to_be_bytes());
    k
}

impl ReverseStore {
    /// Whether this cell has been fetched (possibly empty).
    fn contains(&self, side: usize, bucket: u32, pos: u32) -> bool {
        self.index.contains_key(&packed_cell(side, bucket, pos))
    }

    /// Interns a cell, marking it fetched; returns its entry id for
    /// [`ReverseStore::push_tuple`].
    fn begin_cell(&mut self, side: usize, bucket: u32, pos: u32) -> u32 {
        self.index.ensure(&packed_cell(side, bucket, pos))
    }

    /// Appends one decoded `(base key, join value, score)` tuple to a cell.
    fn push_tuple(&mut self, entry: u32, key: &[u8], join: &[u8], score: f64) {
        // Checked narrowing: a cache past 2^32 tuples or 4 GiB of arena
        // bytes must panic, not silently alias spans.
        let id = u32::try_from(self.scores.len()).expect("ReverseStore tuple count overflows u32");
        self.key_spans.push((
            u32::try_from(self.key_arena.len()).expect("ReverseStore key arena overflows u32"),
            u32::try_from(key.len()).expect("ReverseStore key length overflows u32"),
        ));
        self.key_arena.extend_from_slice(key);
        self.join_spans.push((
            u32::try_from(self.join_arena.len()).expect("ReverseStore join arena overflows u32"),
            u32::try_from(join.len()).expect("ReverseStore join length overflows u32"),
        ));
        self.join_arena.extend_from_slice(join);
        self.scores.push(score);
        self.index.push_to_entry(entry, id);
    }

    /// The cached tuples of one cell: `(base key, join value, score)`,
    /// in decode order. Empty for unfetched cells.
    fn tuples<'a>(
        &'a self,
        side: usize,
        bucket: u32,
        pos: u32,
    ) -> impl Iterator<Item = (&'a [u8], &'a [u8], f64)> + 'a {
        self.index
            .get(&packed_cell(side, bucket, pos))
            .map(move |&id| {
                let i = id as usize;
                let (ko, kl) = self.key_spans[i];
                let (jo, jl) = self.join_spans[i];
                (
                    &self.key_arena[ko as usize..(ko + kl) as usize],
                    &self.join_arena[jo as usize..(jo + jl) as usize],
                    self.scores[i],
                )
            })
    }
}

/// One estimated bucket-join result (a row of Fig. 6(c)).
#[derive(Clone, Debug)]
pub(crate) struct Estimate {
    pub left_bucket: u32,
    pub right_bucket: u32,
    /// Common set-bit positions of the two bucket filters.
    pub positions: Vec<u32>,
    /// α-compensated cardinality estimate.
    pub cardinality: f64,
    /// Lower bound on any represented join tuple's score.
    pub min_score: f64,
    /// Upper bound on any represented join tuple's score.
    pub max_score: f64,
}

/// Per-side estimation cursor state.
struct SideState {
    /// Fetched non-empty buckets, in fetch (descending-score) order.
    fetched: Vec<(u32, BfhmBlob)>,
    /// Next bucket number to probe.
    cursor: u32,
    exhausted: bool,
    /// Gets issued while probing buckets.
    bucket_gets: u64,
}

impl SideState {
    fn new() -> Self {
        SideState {
            fetched: Vec::new(),
            cursor: 0,
            exhausted: false,
            bucket_gets: 0,
        }
    }

    fn actual_max(&self) -> f64 {
        self.fetched
            .iter()
            .map(|(_, b)| b.max_score)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Upper bound (bucket boundary) of the best fetched bucket.
    fn best_fetched_boundary(&self, hist: &ScoreHistogram) -> f64 {
        self.fetched
            .first()
            .map(|(b, _)| hist.upper_bound(*b))
            .unwrap_or(f64::NEG_INFINITY)
    }
}

pub(crate) struct BfhmRun<'a> {
    cluster: &'a Cluster,
    query: &'a RankJoinQuery,
    table: &'a str,
    config: &'a BfhmConfig,
    hist: ScoreHistogram,
    /// Filter size, from the index metadata (needed to replay mutation
    /// records into buckets that have no blob yet).
    m: usize,
    sides: [SideState; 2],
    estimates: Vec<Estimate>,
    total_estimated: f64,
    /// Bucket pairs already materialized in phase 2.
    materialized: HashSet<(u32, u32)>,
    /// Reverse-row cache in flat columnar storage.
    reverse: ReverseStore,
    results: TopK,
    reverse_rows_fetched: u64,
    rounds: u64,
    write_back: WriteBackPolicy,
    pending_write_backs: Vec<u32>,
    mode: ExecutionMode,
}

impl<'a> BfhmRun<'a> {
    fn new(
        cluster: &'a Cluster,
        query: &'a RankJoinQuery,
        table: &'a str,
        config: &'a BfhmConfig,
        write_back: WriteBackPolicy,
        mode: ExecutionMode,
    ) -> Result<Self> {
        cluster
            .table(table)
            .map_err(|_| RankJoinError::MissingIndex(table.to_owned()))?;
        let (m, num_buckets) = read_meta(cluster, table, &query.left.label)?;
        if num_buckets != config.num_buckets {
            return Err(RankJoinError::Internal(
                "config bucket count disagrees with the built index",
            ));
        }
        Ok(BfhmRun {
            cluster,
            query,
            table,
            config,
            hist: ScoreHistogram::new(num_buckets),
            m,
            sides: [SideState::new(), SideState::new()],
            estimates: Vec::new(),
            total_estimated: 0.0,
            materialized: HashSet::new(),
            reverse: ReverseStore::default(),
            results: TopK::new(query.k),
            reverse_rows_fetched: 0,
            rounds: 0,
            write_back,
            pending_write_backs: Vec::new(),
            mode,
        })
    }

    fn label(&self, side: usize) -> &str {
        &self.query.side(side).label
    }

    /// Fetches the next non-empty bucket of `side`, resolving pending §6
    /// mutation records into the blob. Returns `false` when exhausted.
    fn fetch_next_bucket(&mut self, side: usize) -> Result<bool> {
        let client = self.cluster.client();
        let label = self.label(side).to_owned();
        loop {
            let state = &mut self.sides[side];
            if state.cursor >= self.hist.num_buckets() {
                state.exhausted = true;
                return Ok(false);
            }
            let bucket = state.cursor;
            state.cursor += 1;
            state.bucket_gets += 1;
            let fams = [label.clone()];
            let row = client.get_with_families(
                self.table,
                &super::index::blob_row_key(bucket),
                Some(&fams),
            )?;
            let Some(row) = row else { continue };
            let resolved = resolve_bucket_row(&row, &label, self.m)?;
            let Some(blob) = resolved.blob else { continue };
            if resolved.had_mutations && self.write_back == WriteBackPolicy::Eager {
                super::maintenance::write_back_bucket(
                    self.cluster,
                    self.table,
                    &label,
                    bucket,
                    &blob,
                    self.config.codec,
                    resolved.latest_ts,
                    &resolved.consumed_qualifiers,
                )?;
            } else if resolved.had_mutations && self.write_back == WriteBackPolicy::Lazy {
                self.pending_write_backs.push(bucket);
            }
            self.sides[side].fetched.push((bucket, blob));
            return Ok(true);
        }
    }

    /// Algorithm 7: joins the newly fetched bucket of `side` against every
    /// fetched bucket of the other side, appending estimates.
    fn join_new_bucket(&mut self, side: usize) {
        let (new_bucket, new_blob) = self.sides[side]
            .fetched
            .last()
            .map(|(b, blob)| (*b, blob.clone()))
            .expect("called right after a successful fetch");
        let other = 1 - side;
        let mut new_estimates = Vec::new();
        for (other_bucket, other_blob) in &self.sides[other].fetched {
            let (lb, lblob, rb, rblob) = if side == 0 {
                (new_bucket, &new_blob, *other_bucket, other_blob)
            } else {
                (*other_bucket, other_blob, new_bucket, &new_blob)
            };
            let positions = lblob.filter.common_positions(&rblob.filter);
            if positions.is_empty() {
                continue; // Algorithm 7 line 5: empty AND → null
            }
            let cardinality = lblob
                .filter
                .estimate_join_cardinality(&rblob.filter, self.config.alpha);
            new_estimates.push(Estimate {
                left_bucket: lb,
                right_bucket: rb,
                positions,
                cardinality,
                min_score: self
                    .query
                    .score_fn
                    .combine(lblob.min_score, rblob.min_score),
                max_score: self
                    .query
                    .score_fn
                    .combine(lblob.max_score, rblob.max_score),
            });
        }
        for e in new_estimates {
            self.total_estimated += e.cardinality;
            self.estimates.push(e);
        }
    }

    /// The k-th estimated result's score bound (walks estimates in
    /// descending max-score order, accumulating cardinalities).
    fn kth_estimate_bound(&self, target: usize) -> Option<f64> {
        if self.total_estimated < target as f64 {
            return None;
        }
        let mut order: Vec<&Estimate> = self.estimates.iter().collect();
        order.sort_by(|a, b| b.max_score.total_cmp(&a.max_score));
        let mut cum = 0.0;
        for e in order {
            cum += e.cardinality;
            if cum >= target as f64 {
                return Some(match self.config.bound_mode {
                    BoundMode::PaperFigure => e.max_score,
                    BoundMode::Conservative => e.min_score,
                });
            }
        }
        None
    }

    /// Upper bound on the score of any join tuple from bucket pairs not
    /// yet *examined* (at least one side unfetched).
    fn unexamined_bound(&self, conservative: bool) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for s in 0..2 {
            let state = &self.sides[s];
            if state.exhausted || state.cursor >= self.hist.num_buckets() {
                continue;
            }
            let my_upper = self.hist.upper_bound(state.cursor);
            let other = &self.sides[1 - s];
            let other_unfetched = if !other.exhausted && other.cursor < self.hist.num_buckets() {
                self.hist.upper_bound(other.cursor)
            } else {
                f64::NEG_INFINITY
            };
            let other_fetched = if conservative {
                other.actual_max()
            } else {
                other.best_fetched_boundary(&self.hist)
            };
            let other_best = other_fetched.max(other_unfetched);
            if other_best == f64::NEG_INFINITY {
                continue;
            }
            let bound = if s == 0 {
                self.query.score_fn.combine(my_upper, other_best)
            } else {
                self.query.score_fn.combine(other_best, my_upper)
            };
            best = best.max(bound);
        }
        best
    }

    /// Phase 1 (Algorithm 6): fetch and join buckets until no unexamined
    /// combination can beat the estimated `target`-th result.
    fn run_estimation(&mut self, target: usize) -> Result<()> {
        // Resume alternation from whichever side has fetched fewer buckets.
        loop {
            if self.sides[0].exhausted && self.sides[1].exhausted {
                return Ok(());
            }
            if self.total_estimated >= target as f64 {
                if let Some(bound) = self.kth_estimate_bound(target) {
                    let unexamined =
                        self.unexamined_bound(self.config.bound_mode == BoundMode::Conservative);
                    if unexamined < bound {
                        return Ok(());
                    }
                }
            }
            let side = match (
                self.sides[0].exhausted,
                self.sides[1].exhausted,
                self.sides[0].fetched.len() + (self.sides[0].cursor as usize),
                self.sides[1].fetched.len() + (self.sides[1].cursor as usize),
            ) {
                (true, false, _, _) => 1,
                (false, true, _, _) => 0,
                (_, _, a, b) if a <= b => 0,
                _ => 1,
            };
            if self.fetch_next_bucket(side)? {
                self.join_new_bucket(side);
            }
        }
    }

    /// Decodes one fetched reverse row and records it in the cache —
    /// shared by the serial demand path and the parallel prefetch so the
    /// two stay byte-identical in decoding and accounting.
    fn cache_reverse_row(
        &mut self,
        side: usize,
        bucket: u32,
        pos: u32,
        row: Option<rj_store::row::RowResult>,
    ) {
        self.reverse_rows_fetched += 1;
        // `query` is a shared reference field: copying it out borrows the
        // query, not `self`, so the label read and the cache writes don't
        // fight.
        let query = self.query;
        let entry = self.reverse.begin_cell(side, bucket, pos);
        if let Some(row) = row {
            for cell in row.family_cells(&query.side(side).label) {
                if let Ok((join, score)) = codec::decode_value_score(&cell.value) {
                    self.reverse
                        .push_tuple(entry, &cell.qualifier, &join, score);
                }
            }
        }
    }

    /// Ensures one `(side, bucket, position)` reverse-mapping cell is in
    /// the cache, fetching it on demand.
    fn ensure_reverse_row(&mut self, side: usize, bucket: u32, pos: u32) -> Result<()> {
        if !self.reverse.contains(side, bucket, pos) {
            let client = self.cluster.client();
            let fams = [self.label(side).to_owned()];
            let row =
                client.get_with_families(self.table, &reverse_row_key(bucket, pos), Some(&fams))?;
            self.cache_reverse_row(side, bucket, pos, row);
        }
        Ok(())
    }

    /// Fans the reverse-row gets an upcoming materialization needs out in
    /// one parallel round (lane = serving node), filling the cache the
    /// serial join loop then hits. Fetches exactly the set of rows the
    /// serial loop would fetch — the loop walks every estimate in `todo`
    /// unconditionally — so the counted metrics are unchanged.
    fn prefetch_reverse_rows(&mut self, todo: &[Estimate]) -> Result<()> {
        let mut needed: Vec<(usize, u32, u32)> = Vec::new();
        let mut queued: HashSet<(usize, u32, u32)> = HashSet::new();
        for e in todo {
            for &pos in &e.positions {
                for (side, bucket) in [(0usize, e.left_bucket), (1usize, e.right_bucket)] {
                    let key = (side, bucket, pos);
                    if !self.reverse.contains(side, bucket, pos) && queued.insert(key) {
                        needed.push(key);
                    }
                }
            }
        }
        if needed.len() < 2 {
            return Ok(()); // nothing to overlap
        }
        let table = self.cluster.table(self.table)?;
        let tasks = needed
            .iter()
            .map(|&(side, bucket, pos)| {
                let row_key = reverse_row_key(bucket, pos);
                let label = self.label(side).to_owned();
                let table_name = self.table;
                LaneTask::new(
                    table.serving_node(&row_key),
                    move |worker: &rj_store::client::Client| {
                        let fams = [label];
                        worker.get_with_families(table_name, &row_key, Some(&fams))
                    },
                )
            })
            .collect();
        let rows = run_lanes(self.cluster, self.mode.workers(), tasks)?;
        for ((side, bucket, pos), row) in needed.into_iter().zip(rows) {
            self.cache_reverse_row(side, bucket, pos, row);
        }
        Ok(())
    }

    /// Phase 2: materializes every estimate with `max_score >= cutoff`
    /// not yet materialized — fetch reverse rows, join actual tuples
    /// (re-checking join values), offer into the running top-k.
    fn materialize(&mut self, cutoff: f64) -> Result<bool> {
        let todo: Vec<Estimate> = self
            .estimates
            .iter()
            .filter(|e| {
                e.max_score >= cutoff
                    && !self.materialized.contains(&(e.left_bucket, e.right_bucket))
            })
            .cloned()
            .collect();
        let progressed = !todo.is_empty();
        if self.mode.is_parallel() {
            self.prefetch_reverse_rows(&todo)?;
        }
        for e in todo {
            self.materialized.insert((e.left_bucket, e.right_bucket));
            for &pos in &e.positions {
                // Demand-fetch both cells first (mutating), then join over
                // two shared borrows of the flat store — no `Vec` clones.
                self.ensure_reverse_row(0, e.left_bucket, pos)?;
                self.ensure_reverse_row(1, e.right_bucket, pos)?;
                let score_fn = self.query.score_fn;
                for (lk, lj, ls) in self.reverse.tuples(0, e.left_bucket, pos) {
                    for (rk, rj, rs) in self.reverse.tuples(1, e.right_bucket, pos) {
                        if lj != rj {
                            continue; // Bloom collision on this bit
                        }
                        self.results.offer(JoinTuple {
                            left_key: lk.to_vec(),
                            right_key: rk.to_vec(),
                            join_value: lj.to_vec(),
                            left_score: ls,
                            right_score: rs,
                            score: score_fn.combine(ls, rs),
                        });
                    }
                }
            }
        }
        Ok(progressed)
    }

    /// Conservative bound on anything not yet in `results`: the best
    /// non-materialized estimate and any unexamined bucket combination.
    fn threat_bound(&self) -> f64 {
        let est = self
            .estimates
            .iter()
            .filter(|e| !self.materialized.contains(&(e.left_bucket, e.right_bucket)))
            .map(|e| e.max_score)
            .fold(f64::NEG_INFINITY, f64::max);
        est.max(self.unexamined_bound(true))
    }

    /// The §5.3 guarantee loop.
    fn run_to_completion(&mut self) -> Result<()> {
        let debug = std::env::var_os("RJ_BFHM_DEBUG").is_some();
        let k = self.query.k;
        let mut target = k;
        loop {
            self.rounds += 1;
            if debug {
                eprintln!(
                    "[bfhm] round={} target={} results={} est={} total_est={:.1} \
                     fetched=({},{}) cursors=({},{}) exhausted=({},{})",
                    self.rounds,
                    target,
                    self.results.len(),
                    self.estimates.len(),
                    self.total_estimated,
                    self.sides[0].fetched.len(),
                    self.sides[1].fetched.len(),
                    self.sides[0].cursor,
                    self.sides[1].cursor,
                    self.sides[0].exhausted,
                    self.sides[1].exhausted,
                );
            }
            self.run_estimation(target)?;
            let cutoff = self.kth_estimate_bound(target).unwrap_or(f64::NEG_INFINITY);
            self.materialize(cutoff)?;

            if self.results.len() >= k {
                // Re-examine: anything (purged estimate or unexamined
                // combination) that could still reach the top-k? The k-th
                // score is recomputed every step — materialization can
                // only raise it, tightening the loop.
                loop {
                    let kth = self.results.kth_score().expect("full");
                    if self.threat_bound() < kth {
                        return Ok(());
                    }
                    let mut stepped = false;
                    // Materialize estimates above the actual kth score.
                    if self.materialize(kth)? {
                        stepped = true;
                    }
                    // Extend the frontier one bucket on the side bounding
                    // the threat.
                    for s in 0..2 {
                        if self.unexamined_bound(true) >= kth
                            && !self.sides[s].exhausted
                            && self.fetch_next_bucket(s)?
                        {
                            self.join_new_bucket(s);
                            stepped = true;
                        }
                    }
                    if !stepped {
                        // Nothing left to examine: the threat is only
                        // tied estimates that cannot materialize further.
                        return Ok(());
                    }
                }
            }

            // Fewer than k results (k' < k): "resume the query processing
            // algorithm ... looking for the top-k + (k - k') results".
            // Estimated cardinalities overcount (Bloom collisions, bucket
            // pairs without true joins), so drive the fill by *actual*
            // results: convert the highest-potential remaining bucket pair
            // into real tuples, best-first, fetching new buckets only when
            // unexamined combinations could outscore every known estimate.
            let missing = k - self.results.len();
            target = target.max(k + missing);
            while self.results.len() < k {
                let best_estimate = self
                    .estimates
                    .iter()
                    .filter(|e| !self.materialized.contains(&(e.left_bucket, e.right_bucket)))
                    .map(|e| e.max_score)
                    .fold(f64::NEG_INFINITY, f64::max);
                let unexamined = self.unexamined_bound(true);
                if best_estimate == f64::NEG_INFINITY && unexamined == f64::NEG_INFINITY {
                    return Ok(()); // the whole join has < k results
                }
                if best_estimate >= unexamined {
                    self.materialize(best_estimate)?;
                } else {
                    for s in 0..2 {
                        if !self.sides[s].exhausted && self.fetch_next_bucket(s)? {
                            self.join_new_bucket(s);
                        }
                    }
                }
            }
        }
    }

    fn finish(mut self, meter: QueryMeter) -> Result<QueryOutcome> {
        // Lazy write-backs happen after the result is ready (§6).
        if self.write_back == WriteBackPolicy::Lazy {
            let buckets = std::mem::take(&mut self.pending_write_backs);
            for bucket in buckets {
                for s in 0..2 {
                    let label = self.label(s).to_owned();
                    super::maintenance::refresh_bucket(
                        self.cluster,
                        self.table,
                        &label,
                        bucket,
                        self.config.codec,
                    )?;
                }
            }
        }
        let buckets_fetched = (self.sides[0].fetched.len() + self.sides[1].fetched.len()) as f64;
        let estimates = self.estimates.len() as f64;
        let rounds = self.rounds as f64;
        let reverse_rows = self.reverse_rows_fetched as f64;
        let bucket_gets = (self.sides[0].bucket_gets + self.sides[1].bucket_gets) as f64;
        let results = std::mem::replace(&mut self.results, TopK::new(1)).into_sorted_vec();
        Ok(QueryOutcome::new("BFHM", results, meter.finish())
            .with_extra("buckets_fetched", buckets_fetched)
            .with_extra("bucket_gets", bucket_gets)
            .with_extra("estimates", estimates)
            .with_extra("reverse_rows_fetched", reverse_rows)
            .with_extra("rounds", rounds))
    }
}

/// Executes the BFHM rank join over a previously built index (serial
/// execution; see [`run_with_mode`]).
pub fn run(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: &BfhmConfig,
    write_back: WriteBackPolicy,
) -> Result<QueryOutcome> {
    run_with_mode(
        cluster,
        query,
        index_table,
        config,
        write_back,
        ExecutionMode::Serial,
    )
}

/// Executes the BFHM rank join under an explicit [`ExecutionMode`].
///
/// The parallel mode fans each materialization round's reverse-row gets
/// out across region servers (the bulk of BFHM's reads); bucket probing
/// stays demand-driven because each probe depends on the estimates
/// accumulated so far. Results and counted metrics (KV reads, bytes,
/// RPCs) are identical to serial execution.
pub fn run_with_mode(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: &BfhmConfig,
    write_back: WriteBackPolicy,
    mode: ExecutionMode,
) -> Result<QueryOutcome> {
    run_seeded(cluster, query, index_table, config, write_back, mode, &[])
}

/// [`run_with_mode`] with the top-k accumulator pre-seeded.
///
/// `seed` must contain only *genuine* join results of the current data —
/// e.g. the buffered results of an aborted ISL prefix over the same query
/// (the adaptive driver's reuse path, [`crate::adaptive`]). Seeding is
/// result-transparent: the accumulator deduplicates, every seed is a real
/// join tuple, and the §5.3 guarantee loop's termination test only ever
/// compares against the k-th *genuine* buffered score — so the returned
/// top-k is identical to an unseeded run, while a seed that already
/// covers part of the top-k can only raise the k-th bound earlier and
/// *prune* bucket fetches and materializations.
pub fn run_seeded(
    cluster: &Cluster,
    query: &RankJoinQuery,
    index_table: &str,
    config: &BfhmConfig,
    write_back: WriteBackPolicy,
    mode: ExecutionMode,
    seed: &[JoinTuple],
) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "BFHM",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    let meter = QueryMeter::start(cluster.metrics());
    let mut run = BfhmRun::new(cluster, query, index_table, config, write_back, mode)?;
    for t in seed {
        run.results.offer(t.clone());
    }
    run.run_to_completion()?;
    run.finish(meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfhm;
    use crate::oracle;
    use crate::testsupport::running_example_cluster;
    use rj_mapreduce::MapReduceEngine;
    use rj_sketch::hybrid::AlphaMode;

    fn build(c: &Cluster, q: &RankJoinQuery, config: &BfhmConfig) {
        let engine = MapReduceEngine::new(c.clone());
        bfhm::build_pair(&engine, q, "bfhm_idx", config).unwrap();
    }

    fn example_config() -> BfhmConfig {
        BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(1 << 14), // collision-free at this scale
            ..Default::default()
        }
    }

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        let got = run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
    }

    #[test]
    fn matches_oracle_for_all_k_and_modes() {
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        for bound_mode in [BoundMode::PaperFigure, BoundMode::Conservative] {
            for alpha in [AlphaMode::Compensated, AlphaMode::Off] {
                for k in [1, 2, 3, 5, 10, 38, 50] {
                    let cfg = BfhmConfig {
                        bound_mode,
                        alpha,
                        ..example_config()
                    };
                    let qk = q.with_k(k);
                    let got = run(&c, &qk, "bfhm_idx", &cfg, WriteBackPolicy::Off).unwrap();
                    assert_eq!(
                        got.results,
                        oracle::topk(&c, &qk).unwrap(),
                        "k={k} {bound_mode:?} {alpha:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hundred_percent_recall_with_tiny_filters() {
        // Adversarial: 16-bit filters force heavy Bloom collisions; the
        // guarantee loop must still deliver the exact answer (Theorem 1).
        let (c, q) = running_example_cluster();
        let config = BfhmConfig {
            num_buckets: 10,
            filter_bits: Some(16),
            ..Default::default()
        };
        build(&c, &q, &config);
        for k in [1, 3, 8, 38] {
            let qk = q.with_k(k);
            let got = run(&c, &qk, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
            assert_eq!(got.results, oracle::topk(&c, &qk).unwrap(), "k={k}");
        }
    }

    #[test]
    fn estimation_is_surgical() {
        // For k=3 the walk-through fetches 3 R1 buckets and 2 R2 buckets
        // and reads only the reverse rows of the surviving pairs — far
        // fewer KV reads than the 22-tuple full scan.
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        let got = run(&c, &q, "bfhm_idx", &config, WriteBackPolicy::Off).unwrap();
        assert!(got.extra("buckets_fetched").unwrap() <= 8.0);
        assert!(
            got.metrics.kv_reads <= 22,
            "read {} KVs — should be surgical",
            got.metrics.kv_reads
        );
    }

    /// Reproduces Fig. 6(c): running estimation to exhaustion must produce
    /// exactly the paper's 17 estimated results.
    #[test]
    fn figure_6c_estimated_results() {
        let (c, q) = running_example_cluster();
        let config = example_config();
        build(&c, &q, &config);
        let q_all = q.with_k(1000); // force exhaustion
        let mut run_state = BfhmRun::new(
            &c,
            &q_all,
            "bfhm_idx",
            &config,
            WriteBackPolicy::Off,
            ExecutionMode::Serial,
        )
        .unwrap();
        run_state.run_estimation(1000).unwrap();
        let mut got: Vec<(u32, u32, u64, f64, f64)> = run_state
            .estimates
            .iter()
            .map(|e| {
                (
                    e.left_bucket,
                    e.right_bucket,
                    e.cardinality.round() as u64,
                    (e.min_score * 100.0).round() / 100.0,
                    (e.max_score * 100.0).round() / 100.0,
                )
            })
            .collect();
        // Fig. 6(c) lists estimates in descending *min*-score order.
        got.sort_by(|a, b| {
            b.3.total_cmp(&a.3)
                .then(b.4.total_cmp(&a.4))
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        // Fig. 6(c), columns: R1 bucket, R2 bucket, cardinality, min, max.
        // Bucket numbers: score range (1-10b/10, 1-b/10).
        let want: Vec<(u32, u32, u64, f64, f64)> = vec![
            (1, 0, 2, 1.73, 1.74), // row 1: h(b)
            (2, 0, 2, 1.61, 1.71), // row 2: h(b)
            (0, 3, 1, 1.57, 1.64), // row 3: h(c)
            (3, 0, 2, 1.55, 1.60), // row 4: h(b)
            (0, 4, 1, 1.43, 1.53), // row 5: h(a)
            (2, 3, 1, 1.34, 1.43), // row 6: h(c)
            (1, 4, 4, 1.32, 1.35), // row 7: h(d)
            (3, 3, 1, 1.28, 1.32), // row 8: h(c)
            (0, 6, 4, 1.24, 1.38), // rows 9+10: h(a) card 3 + h(c) card 1
            (1, 5, 2, 1.23, 1.23), // row 11: h(d)
            (2, 4, 1, 1.20, 1.32), // row 12: h(a)
            (3, 4, 2, 1.14, 1.21), // row 13: h(d)
            (3, 5, 1, 1.05, 1.09), // row 14: h(d)
            (2, 6, 4, 1.01, 1.17), // rows 15+16: h(a) card 3 + h(c) card 1
            (3, 6, 1, 0.95, 1.06), // row 17: h(c)
        ];
        // Note: the paper's Fig. 6(c) lists bucket-pair joins *per bit
        // position* (rows 9/10 and 15/16 share a bucket pair); our
        // Estimate is per bucket pair, so those rows merge with summed
        // cardinalities.
        assert_eq!(got, want);
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        assert!(matches!(
            run(&c, &q, "absent", &example_config(), WriteBackPolicy::Off).unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }
}
