//! DRJN index creation: the 2-D (score × join-partition) count matrix,
//! stored one row per score bucket with one column per partition.

use rj_mapreduce::job::{JobInput, JobSpec, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper, Reducer};
use rj_mapreduce::MapReduceEngine;
use rj_sketch::hist2d::partition_for;
use rj_sketch::histogram::ScoreHistogram;
use rj_store::cell::Mutation;
use rj_store::keys;

use crate::error::Result;
use crate::indexutil::BuildStats;
use crate::query::{JoinSide, RankJoinQuery};

use super::DrjnConfig;

/// Build statistics for the DRJN index.
pub type DrjnBuildStats = BuildStats;

/// Canonical index-table name for a query pair.
pub fn index_table_name(query: &RankJoinQuery) -> String {
    format!("drjn__{}__{}", query.left.label, query.right.label)
}

/// Row key of one score-bucket row.
pub(crate) fn bucket_row_key(bucket: u32) -> Vec<u8> {
    keys::encode_u32(bucket).to_vec()
}

struct CellCountMapper {
    side: JoinSide,
    hist: ScoreHistogram,
    partitions: u32,
}

impl Mapper for CellCountMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((join_value, score)) = self.side.extract(row) else {
            return;
        };
        let bucket = self.hist.bucket_of(score);
        let partition = partition_for(&join_value, self.partitions);
        let key = keys::composite(&[&keys::encode_u32(bucket), &keys::encode_u32(partition)]);
        out.emit(key, 1u64.to_be_bytes().to_vec());
    }
}

struct CellSumReducer {
    label: String,
}

impl Reducer for CellSumReducer {
    fn reduce(&mut self, key: &[u8], values: &[Vec<u8>], out: &mut Emitter) {
        let total: u64 = values
            .iter()
            .filter_map(|v| v.as_slice().try_into().ok().map(u64::from_be_bytes))
            .sum();
        // key = bucket|partition → row key = bucket, qualifier = partition.
        let Some(bucket) = keys::decode_u32(&key[..4]) else {
            return;
        };
        let partition = &key[5..9];
        out.put(
            bucket_row_key(bucket),
            Mutation::put(&self.label, partition, total.to_be_bytes().to_vec()),
        );
    }
}

/// Builds the DRJN matrices for both sides of `query` into `table` (one
/// MR job per side; the matrix is tiny — a single region suffices).
pub fn build_pair(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    table: &str,
    config: &DrjnConfig,
) -> Result<BuildStats> {
    let cluster = engine.cluster();
    cluster.create_table(
        table,
        &[query.left.label.as_str(), query.right.label.as_str()],
    )?;
    let hist = ScoreHistogram::new(config.num_buckets);
    let mut stats = BuildStats::default();
    for side in [&query.left, &query.right] {
        let spec = JobSpec::new(
            &format!("drjn-build-{}", side.label),
            JobInput::Tables(vec![TableInput::projected(
                &side.table,
                &[&side.join_col.0, &side.score_col.0],
            )]),
            cluster.num_nodes(),
        )
        .put_table(table);
        let side_cl = side.clone();
        let label = side.label.clone();
        let partitions = config.num_partitions;
        let result = engine.run(
            &spec,
            &move || {
                Box::new(CellCountMapper {
                    side: side_cl.clone(),
                    hist,
                    partitions,
                })
            },
            Some(&move || {
                Box::new(CellSumReducer {
                    label: label.clone(),
                })
            }),
            // The combiner collapses per-mapper duplicates — counts, so
            // the same reducer logic works (it puts, which is wrong for a
            // combiner; use a plain summing combiner instead).
            None,
        )?;
        stats.absorb(result.counters);
    }
    stats.index_bytes = cluster.table(table)?.disk_size();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::running_example_cluster;

    #[test]
    fn matrix_counts_match_data() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build_pair(&engine, &q, "drjn_idx", &config).unwrap();

        // R1 bucket 1 (scores [0.8, 0.9)) holds r1_1 (d), r1_4 (d),
        // r1_7 (b): counts 2 in partition(d), 1 in partition(b).
        let client = c.client();
        let row = client.get("drjn_idx", &bucket_row_key(1)).unwrap().unwrap();
        let pd = partition_for(b"d", 64);
        let pb = partition_for(b"b", 64);
        let count = |p: u32| -> u64 {
            row.value("R1", &keys::encode_u32(p))
                .map(|v| u64::from_be_bytes(v.as_ref().try_into().unwrap()))
                .unwrap_or(0)
        };
        if pd != pb {
            assert_eq!(count(pd), 2);
            assert_eq!(count(pb), 1);
        } else {
            assert_eq!(count(pd), 3, "d and b collided into one partition");
        }

        // Total counts across all rows equal the relation sizes.
        let total: u64 = (0..10)
            .filter_map(|b| client.get("drjn_idx", &bucket_row_key(b)).unwrap())
            .flat_map(|r| {
                r.family_cells("R2")
                    .map(|cell| u64::from_be_bytes(cell.value.as_ref().try_into().unwrap()))
                    .collect::<Vec<_>>()
            })
            .sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn index_is_tiny() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c.clone());
        let stats = build_pair(&engine, &q, "drjn_idx", &DrjnConfig::default()).unwrap();
        // The paper reports DRJN indices of hundreds of kB vs GB for the
        // others; here: strictly less than the base data.
        let base = c.table("r1").unwrap().disk_size() + c.table("r2").unwrap().disk_size();
        assert!(stats.index_bytes < base);
    }
}
