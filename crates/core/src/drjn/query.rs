//! DRJN query processing: histogram-driven bound estimation plus
//! map-job tuple pulls through server-side filters (paper §2/§7.1).

use std::sync::Arc;

use rj_mapreduce::job::{JobInput, JobSpec, TableInput};
use rj_mapreduce::task::{Emitter, InputRecord, Mapper};
use rj_mapreduce::MapReduceEngine;
use rj_sketch::histogram::ScoreHistogram;
use rj_store::cell::Mutation;
use rj_store::filter::ScoreInRange;
use rj_store::metrics::QueryMeter;
use rj_store::parallel::{ExecutionMode, ParallelScanner};
use rj_store::scan::Scan;

use crate::codec;
use crate::error::{RankJoinError, Result};
use crate::query::{JoinSide, RankJoinQuery};
use crate::result::{JoinTuple, TopK};
use crate::stats::QueryOutcome;

use super::index::bucket_row_key;
use super::DrjnConfig;

struct PullMapper {
    side: JoinSide,
}

impl Mapper for PullMapper {
    fn map(&mut self, input: InputRecord<'_>, out: &mut Emitter) {
        let Some(row) = input.row() else { return };
        let Some((join_value, score)) = self.side.extract(row) else {
            return;
        };
        // Temp-table row: key = join value ‖ base key (unique), one cell
        // carrying the tuple.
        let key = rj_store::keys::composite(&[&join_value, &row.key]);
        out.put(
            key,
            Mutation::put(
                &self.side.label,
                &row.key,
                codec::encode_value_score(&join_value, score),
            ),
        );
    }
}

/// Pulls tuples of `side` with scores in `[lo, hi)` into `tmp_table` via a
/// map-only job with a server-side score filter.
fn pull_band(
    engine: &MapReduceEngine,
    side: &JoinSide,
    lo: f64,
    hi: f64,
    tmp_table: &str,
) -> Result<()> {
    let spec = JobSpec::new(
        &format!("drjn-pull-{}", side.label),
        JobInput::Tables(vec![TableInput::projected(
            &side.table,
            &[&side.join_col.0, &side.score_col.0],
        )]),
        0,
    )
    .put_table(tmp_table)
    .scan_filter(Arc::new(ScoreInRange {
        family: side.score_col.0.clone(),
        qualifier: side.score_col.1.clone(),
        min: lo,
        max: hi,
    }));
    let side_cl = side.clone();
    engine.run(
        &spec,
        &move || {
            Box::new(PullMapper {
                side: side_cl.clone(),
            })
        },
        None,
        None,
    )?;
    Ok(())
}

/// Process-wide sequence for temp-table names: concurrent DRJN queries on
/// one shared cluster must not collide on their pull-phase scratch tables.
static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Executes the DRJN rank join over previously built matrices (serial
/// execution; see [`run_with_mode`]).
pub fn run(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    index_table: &str,
    config: &DrjnConfig,
) -> Result<QueryOutcome> {
    run_with_mode(engine, query, index_table, config, ExecutionMode::Serial)
}

/// Executes the DRJN rank join under an explicit [`ExecutionMode`].
///
/// The parallel mode fans the coordinator's scan of each round's pulled
/// temp table out across its regions; matrix-row fetches and the MapReduce
/// pull jobs are unchanged. Results and counted metrics are identical to
/// serial execution.
pub fn run_with_mode(
    engine: &MapReduceEngine,
    query: &RankJoinQuery,
    index_table: &str,
    config: &DrjnConfig,
    mode: ExecutionMode,
) -> Result<QueryOutcome> {
    if query.k == 0 {
        return Ok(QueryOutcome::new(
            "DRJN",
            Vec::new(),
            rj_store::metrics::MetricsSnapshot::default(),
        ));
    }
    let cluster = engine.cluster();
    cluster
        .table(index_table)
        .map_err(|_| RankJoinError::MissingIndex(index_table.to_owned()))?;
    let meter = QueryMeter::start(cluster.metrics());
    let client = cluster.client();
    let hist = ScoreHistogram::new(config.num_buckets);

    // Seen tuples per side, keyed by join value (flat columnar store).
    let mut seen: [crate::hrjn::SeenSide; 2] =
        [crate::hrjn::SeenSide::new(), crate::hrjn::SeenSide::new()];
    let mut results = TopK::new(query.k);
    // Per-side fetched matrix rows (bucket → per-partition counts).
    let mut rows: [Vec<Vec<u64>>; 2] = [Vec::new(), Vec::new()];
    let mut cum_estimate = 0.0f64;
    // Score depth already pulled, per side (exclusive lower bound of the
    // next band's upper edge).
    let mut pulled_to: [f64; 2] = [f64::INFINITY, f64::INFINITY];
    let mut rounds = 0u64;
    let mut pull_jobs = 0u64;

    let mut depth = 0u32; // matrix rows fetched (same depth both sides)
    loop {
        rounds += 1;
        // (i) fetch matrix rows until the cumulative estimate reaches k or
        // the histogram is exhausted.
        while cum_estimate < query.k as f64 && depth < config.num_buckets {
            for (s, label) in [&query.left.label, &query.right.label].iter().enumerate() {
                let fams = [(*label).clone()];
                let row =
                    client.get_with_families(index_table, &bucket_row_key(depth), Some(&fams))?;
                let counts: Vec<u64> = match row {
                    Some(r) => {
                        let mut v = vec![0u64; config.num_partitions as usize];
                        for cell in r.family_cells(label) {
                            if let (Some(p), Ok(c)) = (
                                rj_store::keys::decode_u32(&cell.qualifier),
                                cell.value.as_ref().try_into().map(u64::from_be_bytes),
                            ) {
                                if (p as usize) < v.len() {
                                    v[p as usize] = c;
                                }
                            }
                        }
                        v
                    }
                    None => vec![0u64; config.num_partitions as usize],
                };
                rows[s].push(counts);
            }
            // (ii) join the new depth's rows against everything fetched:
            // new pairs are (d, j) for j ≤ d and (i, d) for i < d.
            let d = depth as usize;
            let dot = |a: &[u64], b: &[u64]| -> f64 {
                a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
            };
            for j in 0..=d {
                cum_estimate += dot(&rows[0][d], &rows[1][j]);
            }
            for i in 0..d {
                cum_estimate += dot(&rows[0][i], &rows[1][d]);
            }
            depth += 1;
        }

        // (iii) pull all tuples above the lower boundary of the last
        // fetched bucket and join.
        let bound = if depth == 0 {
            1.0
        } else {
            hist.lower_bound(depth - 1)
        };
        let tmp = format!(
            "drjn_tmp_{}",
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        let tmp_table = cluster.create_table(
            &tmp,
            &[query.left.label.as_str(), query.right.label.as_str()],
        )?;
        // No mid-load auto-splits: MR tasks write concurrently, so an
        // auto-split would land at an order-dependent median and make the
        // layout (hence RPC counts) nondeterministic. The deterministic
        // rebalance below shards instead.
        tmp_table.set_split_threshold(usize::MAX);
        for (s, side) in [&query.left, &query.right].iter().enumerate() {
            if bound < pulled_to[s] {
                pull_band(engine, side, bound, pulled_to[s], &tmp)?;
                pulled_to[s] = bound;
                pull_jobs += 1;
            }
        }
        // The temp table's key domain (join value ‖ base key) is unknown
        // before the pull, so re-shard it afterwards: the layout depends
        // only on the pulled content (not the MR tasks' write order), both
        // modes produce identical regions, and the parallel-mode fetch
        // below gets a genuine multi-region fan-out.
        tmp_table.rebalance(cluster.num_nodes() * 2);
        // Coordinator fetches the temp table and joins; in parallel mode
        // the fetch fans out across the temp table's regions.
        let tmp_scan = Scan::new().caching(1000);
        let pulled_rows: Vec<rj_store::row::RowResult> = if mode.is_parallel() {
            ParallelScanner::new(cluster, mode).scan_collect(&tmp, &tmp_scan)?
        } else {
            client.scan(&tmp, tmp_scan)?.collect()
        };
        for row in pulled_rows {
            for (s, label) in [&query.left.label, &query.right.label].iter().enumerate() {
                for cell in row.family_cells(label) {
                    let Ok((join, score)) = codec::decode_value_score(&cell.value) else {
                        continue;
                    };
                    // Join against the other side's seen tuples.
                    for (other_key, other_score) in seen[1 - s].matches(&join) {
                        let (lk, ls, rk, rs) = if s == 0 {
                            (cell.qualifier.as_slice(), score, other_key, other_score)
                        } else {
                            (other_key, other_score, cell.qualifier.as_slice(), score)
                        };
                        results.offer(JoinTuple {
                            left_key: lk.to_vec(),
                            right_key: rk.to_vec(),
                            join_value: join.clone(),
                            left_score: ls,
                            right_score: rs,
                            score: query.score_fn.combine(ls, rs),
                        });
                    }
                    seen[s].insert(&join, &cell.qualifier, score);
                }
            }
        }
        cluster.drop_table(&tmp)?;

        // (iv) terminate when the k-th real result beats anything still
        // unpulled: a missing pair has one side below `bound`, the other
        // at most the domain max (1.0).
        let unpulled_max = query
            .score_fn
            .combine(bound, 1.0)
            .max(query.score_fn.combine(1.0, bound));
        let done_by_score = results.kth_score().is_some_and(|kth| kth >= unpulled_max);
        let exhausted = depth >= config.num_buckets && bound <= 0.0;
        if done_by_score || exhausted {
            break;
        }
        // Not enough: deepen the estimate and loop.
        cum_estimate = 0.0; // force at least one more histogram row
        if depth >= config.num_buckets {
            // Histogram exhausted but score bound not reached — pull the
            // remainder by lowering the bound to 0 next round.
            if bound <= 0.0 {
                break;
            }
        }
    }

    let consumed: usize = seen.iter().map(crate::hrjn::SeenSide::len).sum();
    Ok(
        QueryOutcome::new("DRJN", results.into_sorted_vec(), meter.finish())
            .with_extra("rounds", rounds as f64)
            .with_extra("histogram_depth", depth as f64)
            .with_extra("pull_jobs", pull_jobs as f64)
            .with_extra("tuples_pulled", consumed as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drjn;
    use crate::oracle;
    use crate::testsupport::running_example_cluster;

    fn build(c: &rj_store::cluster::Cluster, q: &RankJoinQuery, config: &DrjnConfig) {
        let engine = MapReduceEngine::new(c.clone());
        drjn::build_pair(&engine, q, "drjn_idx", config).unwrap();
    }

    #[test]
    fn running_example_top3() {
        let (c, q) = running_example_cluster();
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build(&c, &q, &config);
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q, "drjn_idx", &config).unwrap();
        let scores: Vec<f64> = got.results.iter().map(|t| t.score).collect();
        assert_eq!(scores, vec![1.74, 1.73, 1.62]);
        assert_eq!(got.results, oracle::topk(&c, &q).unwrap());
    }

    #[test]
    fn matches_oracle_for_all_k() {
        let (c, q) = running_example_cluster();
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build(&c, &q, &config);
        let engine = MapReduceEngine::new(c.clone());
        for k in [1, 2, 5, 11, 38, 60] {
            let qk = q.with_k(k);
            let got = run(&engine, &qk, "drjn_idx", &config).unwrap();
            assert_eq!(got.results, oracle::topk(&c, &qk).unwrap(), "k={k}");
        }
    }

    #[test]
    fn pull_jobs_scan_everything() {
        // The DRJN signature: map pulls bill every base KV read even
        // though few tuples ship.
        let (c, q) = running_example_cluster();
        let config = DrjnConfig {
            num_buckets: 10,
            num_partitions: 64,
        };
        build(&c, &q, &config);
        let engine = MapReduceEngine::new(c.clone());
        let got = run(&engine, &q, "drjn_idx", &config).unwrap();
        assert!(got.extra("pull_jobs").unwrap() >= 2.0);
        // Each pull job scans both relations' projected columns fully.
        assert!(
            got.metrics.kv_reads > 40,
            "kv_reads = {}",
            got.metrics.kv_reads
        );
    }

    #[test]
    fn missing_index_is_reported() {
        let (c, q) = running_example_cluster();
        let engine = MapReduceEngine::new(c);
        assert!(matches!(
            run(&engine, &q, "absent", &DrjnConfig::default()).unwrap_err(),
            RankJoinError::MissingIndex(_)
        ));
    }
}
